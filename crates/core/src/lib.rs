//! Range Searchable Symmetric Encryption (RSSE).
//!
//! This crate is the primary contribution of the reproduction of *Practical
//! Private Range Search Revisited* (Demertzis, Papadopoulos, Papapetrou,
//! Deligiannakis, Garofalakis — SIGMOD 2016): a family of schemes that let
//! an untrusted server answer **range queries over encrypted data** by
//! reducing range search to single-keyword Searchable Symmetric Encryption.
//!
//! # The schemes
//!
//! | Scheme | Module | Query size | Search time | Storage | False positives |
//! |---|---|---|---|---|---|
//! | Quadratic            | [`schemes::quadratic`]   | O(1)      | O(r)        | O(n·m²)     | none |
//! | Constant-BRC/URC     | [`schemes::constant`]    | O(log R)  | O(R + r)    | O(n)        | none |
//! | Logarithmic-BRC/URC  | [`schemes::log_brc_urc`] | O(log R)  | O(log R + r)| O(n·log m)  | none |
//! | Logarithmic-SRC      | [`schemes::log_src`]     | O(1)      | O(n)        | O(n·log m)  | O(n) |
//! | Logarithmic-SRC-i    | [`schemes::log_src_i`]   | O(1)      | O(R + r)    | O(n·log m)  | O(R + r) |
//! | PB (Li et al. \[26\])  | [`schemes::pb`]          | O(log R)  | Ω(log n·log R + r) | O(n·log n·log m) | O(r) |
//! | Plain per-value SSE  | [`schemes::plain_sse`]   | O(R)      | O(R + r)    | O(n)        | none |
//!
//! (n = dataset size, m = domain size, R = query range size, r = result
//! size.) Security increases roughly downwards within the paper's family;
//! see the paper's Table 1 and `DESIGN.md` at the repository root.
//!
//! # Quick example
//!
//! ```
//! use rsse_core::{Dataset, Record, RangeScheme, schemes::CoverKind, schemes::log_brc_urc::LogScheme};
//! use rsse_cover::{Domain, Range};
//! use rand::SeedableRng;
//!
//! let domain = Domain::new(1 << 10);
//! let dataset = Dataset::new(
//!     domain,
//!     (0..100).map(|i| Record::new(i, (i * 7) % 1000)).collect(),
//! ).unwrap();
//!
//! let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(1);
//! let (client, server) = LogScheme::build_with(&dataset, CoverKind::Brc, &mut rng);
//! let outcome = client.query(&server, Range::new(100, 200));
//! let mut expected = dataset.matching_ids(Range::new(100, 200));
//! let mut got = outcome.ids.clone();
//! expected.sort(); got.sort();
//! assert_eq!(got, expected);
//! ```

#![deny(missing_docs)]

pub mod dataset;
pub mod leakage;
pub mod metrics;
pub mod schemes;
pub mod server;
pub mod store;
pub mod traits;

pub use dataset::{Dataset, DatasetError, DocId, Record};
pub use metrics::{Evaluation, IndexStats, QueryStats};
pub use server::QueryServer;
pub use traits::{MergeInput, QueryOutcome, RangeScheme};

// Storage-backend selection and errors surface through `RangeScheme::
// build_stored` and the persistence entry points, so re-export them here.
pub use rsse_sse::{BuildBudget, StorageBackend, StorageConfig, StorageError};
