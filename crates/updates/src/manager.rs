//! The owner-side update manager: ingestion, querying across active
//! instances, and hierarchical consolidation.

use crate::batch::{UpdateEntry, UpdateOp};
use crate::persist::{self, OwnerKey, OwnerPayload, SEED_LEN};
use rand::{CryptoRng, RngCore, SeedableRng};
use rand_chacha::ChaCha20Rng;
use rsse_core::{
    BuildBudget, Dataset, DocId, IndexStats, MergeInput, QueryOutcome, QueryStats, RangeScheme,
    Record, StorageConfig, StorageError,
};
use rsse_cover::{Domain, Range};
use rsse_crypto::KeyChain;
use rsse_sse::storage::{
    read_manager_manifest, read_owner_meta, write_manager_manifest, write_owner_meta,
    ManagerManifest, ManifestInstance, OwnerMeta,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::{Path, PathBuf};

/// How the manager realizes a due consolidation (see
/// [`UpdateConfig::consolidation_mode`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConsolidationMode {
    /// The paper's "download, merge, re-encrypt": replay the group's
    /// surviving updates and rebuild one index under a fresh key. Always
    /// available, physically purges superseded versions and met
    /// tombstones, and is the reference implementation the structural
    /// path is differenced against.
    #[default]
    Rebuild,
    /// Re-encryption-free structural merge for schemes that support it
    /// ([`RangeScheme::supports_structural_merge`]): the inputs'
    /// already-encrypted dictionaries are combined by copying ciphertext
    /// verbatim — zero payload decrypt/encrypt operations on the merge
    /// path — and each input's client keeps querying the merged server,
    /// refined by an owner-side authority map. Falls back to
    /// [`Rebuild`](Self::Rebuild) per consolidation whenever the scheme
    /// or the inputs cannot merge structurally. Superseded versions are
    /// hidden by refinement but not physically removed until a rebuild
    /// consolidation meets them.
    Structural,
}

/// Configuration of the update manager.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateConfig {
    /// The consolidation step `s`: once `s` instances accumulate at a level
    /// of the merge hierarchy, they are consolidated into a single instance
    /// at the next level. `s = 0` disables consolidation (every batch stays
    /// a separate index forever).
    pub consolidation_step: usize,
    /// Label-prefix shard bits for every index the manager builds: each
    /// batch index and every consolidation rebuild goes through
    /// [`RangeScheme::build_stored`], so the encrypted dictionaries are
    /// split into `2^shard_bits` shards (0 = single arena). Consolidations
    /// of large levels are exactly where the parallel sharded assembly pays
    /// off, since a rebuild re-encrypts the whole merged level.
    pub shard_bits: u32,
    /// When set, every level of the merge hierarchy **persists**: each
    /// instance's encrypted index is streamed into its own subdirectory of
    /// this root during the build (batch ingests and consolidation rebuilds
    /// alike write through the on-disk backend and are served via paged
    /// reads), and the subdirectories of instances consumed by a
    /// consolidation are removed once the merged instance is durably built.
    /// `None` (the default) keeps every instance in memory, exactly as
    /// before.
    pub storage_root: Option<PathBuf>,
    /// Block-cache budget, in bytes, for every **persisted** instance the
    /// manager builds (see `StorageConfig::cache_budget`): each
    /// instance's file-backed shards share one clock cache bounding their
    /// resident ciphertext blocks. `None` (the default) leaves residency
    /// unbounded; ignored without a [`storage_root`](Self::storage_root).
    pub cache_budget: Option<usize>,
    /// Memory budget for **large index builds** (see
    /// `rsse_sse::BuildBudget`): when set, any batch build or consolidation
    /// rebuild whose estimated in-RAM working set exceeds
    /// `build_budget.memory_bytes` runs through the external-memory
    /// spill/merge pipeline instead — byte-identical index files, peak RSS
    /// bounded by the budget. Small builds keep the in-RAM path (the spill
    /// round-trip would only add I/O). This is a runtime knob like
    /// [`cache_budget`](Self::cache_budget): it is not persisted in the
    /// root manifest, so pass it again when reopening with `open_root`.
    /// `None` (the default) never spills.
    pub build_budget: Option<BuildBudget>,
    /// How due consolidations are realized (see [`ConsolidationMode`]).
    /// A runtime knob like [`build_budget`](Self::build_budget): it is not
    /// persisted in the root manifest, so pass it again when reopening
    /// with `open_root`. Instances that were structurally merged reopen
    /// structurally regardless of this mode — their physical layout is
    /// authoritative — while future consolidations follow the mode.
    pub consolidation_mode: ConsolidationMode,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        Self {
            consolidation_step: 4,
            shard_bits: 0,
            storage_root: None,
            cache_budget: None,
            build_budget: None,
            consolidation_mode: ConsolidationMode::default(),
        }
    }
}

/// One active instance: a static RSSE index over one batch (or one
/// consolidated group of batches), plus the owner-side metadata needed to
/// refine query results (which ids this batch touched, and how).
struct BatchInstance<S: RangeScheme> {
    /// Monotonically increasing sequence number; larger = newer. Used to let
    /// newer batches supersede older ones during result refinement.
    seq: u64,
    /// Monotonic build counter naming the instance directory; also binds
    /// the instance's owner sidecar to its directory.
    build_id: u64,
    /// The owner-side client(s) — one for a built instance, one per
    /// flattened part for a structurally merged one.
    kind: InstanceKind<S>,
    server: S::Server,
    /// The plaintext updates of this instance (owner-side only; persisted
    /// encrypted in the instance's `owner.meta` sidecar, as the paper's
    /// consolidation step needs them back). For a structural instance this
    /// is the **compacted** log: the deduped latest-per-id surviving
    /// entries, not the raw update history.
    entries: Vec<UpdateEntry>,
    /// Latest operation per id inside this instance.
    ops: HashMap<DocId, UpdateOp>,
    /// Directory holding this instance's persisted index, when the manager
    /// runs on an on-disk backend; removed when the instance is consumed by
    /// a consolidation.
    dir: Option<PathBuf>,
}

/// The owner-side query state of an instance.
enum InstanceKind<S: RangeScheme> {
    /// A batch build or rebuild consolidation: one client, whose build
    /// seed replays its whole key material.
    Plain { client: S, seed: [u8; SEED_LEN] },
    /// A structural consolidation: the merged server physically contains
    /// every input part's encrypted entries, and each part's client still
    /// queries it with the part's original trapdoors. The authority map
    /// records, per live id, the flattened part holding its newest
    /// version; hits from any other part are stale copies and are
    /// filtered owner-side.
    Structural {
        /// One `(client, seed)` per flattened part, in merge order.
        parts: Vec<(S, [u8; SEED_LEN])>,
        /// `id → flattened part index` of the authoritative version.
        authority: HashMap<DocId, u32>,
    },
}

impl<S: RangeScheme> InstanceKind<S> {
    /// Whether this is a structurally merged instance.
    fn is_structural(&self) -> bool {
        matches!(self, Self::Structural { .. })
    }
}

/// Dedupes a batch's raw update log into its effective records and ops:
/// within a batch, the latest entry for an id wins.
fn latest_of(entries: &[UpdateEntry]) -> BTreeMap<DocId, UpdateEntry> {
    let mut latest: BTreeMap<DocId, UpdateEntry> = BTreeMap::new();
    for entry in entries {
        latest.insert(entry.record.id, *entry);
    }
    latest
}

impl<S: RangeScheme> BatchInstance<S> {
    /// Builds a fresh instance: dedupes the update log, runs the scheme's
    /// stored build on a dedicated RNG replayed from `seed`, and — for
    /// persisted instances — commits the encrypted owner sidecar as the
    /// instance's durable commit record (written **last**, so a directory
    /// with a readable sidecar always holds a complete index).
    #[allow(clippy::too_many_arguments)]
    fn build(
        domain: Domain,
        build_id: u64,
        seq: u64,
        level: u32,
        entries: Vec<UpdateEntry>,
        config: &StorageConfig,
        chain: &KeyChain,
        seed: [u8; SEED_LEN],
    ) -> Result<Self, StorageError> {
        let latest = latest_of(&entries);
        let records: Vec<Record> = latest.values().map(|e| e.record).collect();
        let ops: HashMap<DocId, UpdateOp> = latest.iter().map(|(id, e)| (*id, e.op)).collect();
        let dataset = Dataset::new(domain, records)
            .expect("update entries validated against the domain before ingestion");
        let mut build_rng = ChaCha20Rng::from_seed(seed);
        let (client, server) = S::build_stored(&dataset, config, &mut build_rng)?;
        let dir = match &config.backend {
            rsse_core::StorageBackend::InMemory => None,
            rsse_core::StorageBackend::OnDisk(dir) => Some(dir.clone()),
        };
        if let Some(dir) = &dir {
            write_owner_meta(
                dir,
                &OwnerMeta {
                    build_id,
                    seq,
                    level,
                    payload: persist::seal_plain_payload(chain, build_id, &seed, &entries),
                },
            )?;
        }
        Ok(Self {
            seq,
            build_id,
            kind: InstanceKind::Plain { client, seed },
            server,
            entries,
            ops,
            dir,
        })
    }

    /// Reopens a persisted instance from its decrypted owner state: the
    /// client re-derives from the replayed seed, the server either
    /// cold-opens from the instance directory (on-disk mode) or rebuilds
    /// in memory from the update log (in-memory restore) — both through
    /// [`RangeScheme::open_stored`], and both byte-identical to the
    /// pre-crash instance.
    fn reopen(
        domain: Domain,
        build_id: u64,
        seq: u64,
        entries: Vec<UpdateEntry>,
        config: &StorageConfig,
        seed: [u8; SEED_LEN],
    ) -> Result<Self, StorageError> {
        let latest = latest_of(&entries);
        let records: Vec<Record> = latest.values().map(|e| e.record).collect();
        let ops: HashMap<DocId, UpdateOp> = latest.iter().map(|(id, e)| (*id, e.op)).collect();
        let dataset = Dataset::new(domain, records)
            .expect("persisted update entries were validated at ingestion");
        let mut build_rng = ChaCha20Rng::from_seed(seed);
        let (client, server) = S::open_stored(&dataset, config, &mut build_rng)?;
        let dir = match &config.backend {
            rsse_core::StorageBackend::InMemory => None,
            rsse_core::StorageBackend::OnDisk(dir) => Some(dir.clone()),
        };
        Ok(Self {
            seq,
            build_id,
            kind: InstanceKind::Plain { client, seed },
            server,
            entries,
            ops,
            dir,
        })
    }

    /// Reopens a structurally merged instance: each part's client
    /// re-derives from its replayed seed, and the merged server — whose
    /// physical layout is not reproducible from any dataset — reopens
    /// from its saved directory via [`RangeScheme::open_merged`]: paged
    /// on an on-disk config, loaded fully resident (byte-identical
    /// arenas) on an in-memory restore.
    fn reopen_structural(
        domain: Domain,
        build_id: u64,
        seq: u64,
        seeds: Vec<[u8; SEED_LEN]>,
        tagged_entries: Vec<(UpdateEntry, u32)>,
        dir: &Path,
        config: &StorageConfig,
    ) -> Result<Self, StorageError> {
        let parts = seeds
            .into_iter()
            .map(|seed| {
                let mut rng = ChaCha20Rng::from_seed(seed);
                S::derive_client(&domain, &mut rng).map(|client| (client, seed))
            })
            .collect::<Result<Vec<(S, [u8; SEED_LEN])>, StorageError>>()?;
        let server = S::open_merged(dir, config)?;
        let entries: Vec<UpdateEntry> = tagged_entries.iter().map(|(entry, _)| *entry).collect();
        let ops: HashMap<DocId, UpdateOp> = entries
            .iter()
            .map(|entry| (entry.record.id, entry.op))
            .collect();
        let authority: HashMap<DocId, u32> = tagged_entries
            .iter()
            .map(|(entry, part)| (entry.record.id, *part))
            .collect();
        let keep_dir = matches!(&config.backend, rsse_core::StorageBackend::OnDisk(_));
        Ok(Self {
            seq,
            build_id,
            kind: InstanceKind::Structural { parts, authority },
            server,
            entries,
            ops,
            dir: keep_dir.then(|| dir.to_path_buf()),
        })
    }

    /// Issues a range query against this instance's server. A plain
    /// instance asks its one client; a structural instance asks every
    /// part's client in part order, keeping only the hits the part is
    /// authoritative for (stale copies of an id in other parts are
    /// refined away) and accumulating the parts' costs.
    fn try_query(&self, range: Range) -> Result<QueryOutcome, StorageError> {
        match &self.kind {
            InstanceKind::Plain { client, .. } => client.try_query(&self.server, range),
            InstanceKind::Structural { parts, authority } => {
                let mut ids: Vec<DocId> = Vec::new();
                let mut stats = QueryStats::default();
                for (index, (client, _)) in parts.iter().enumerate() {
                    let outcome = client.try_query(&self.server, range)?;
                    stats.tokens_sent += outcome.stats.tokens_sent;
                    stats.token_bytes += outcome.stats.token_bytes;
                    stats.rounds = stats.rounds.max(outcome.stats.rounds);
                    stats.entries_touched += outcome.stats.entries_touched;
                    stats.result_groups += outcome.stats.result_groups;
                    for id in outcome.ids {
                        if authority.get(&id) == Some(&(index as u32)) {
                            ids.push(id);
                        }
                    }
                }
                Ok(QueryOutcome { ids, stats })
            }
        }
    }

    /// The manifest record of this instance (public bookkeeping only).
    fn manifest_record(&self) -> ManifestInstance {
        let mut inserts = 0u64;
        let mut modifies = 0u64;
        let mut deletes = 0u64;
        for entry in &self.entries {
            match entry.op {
                UpdateOp::Insert => inserts += 1,
                UpdateOp::Modify => modifies += 1,
                UpdateOp::Delete => deletes += 1,
            }
        }
        ManifestInstance {
            build_id: self.build_id,
            seq: self.seq,
            entry_count: self.entries.len() as u64,
            inserts,
            modifies,
            deletes,
        }
    }

    /// Removes the instance's persisted index directory, if any (called
    /// when a consolidation supersedes it; best effort — a leftover
    /// directory wastes disk but cannot corrupt the merged state).
    fn remove_dir(&self) {
        if let Some(dir) = &self.dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// A stage of `try_ingest_batch` at which the test support can simulate a
/// process kill: all disk writes up to (and including) the named stage
/// have happened, nothing after it has. Used by the crash-recovery tests
/// to pin that [`UpdateManager::open_root`] heals every window between an
/// index commit and the manifest commit.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillPoint {
    /// The batch's instance directory (index + owner sidecar) is durably
    /// committed; no consolidation ran, the root manifest is stale.
    AfterBatchBuild,
    /// The first due consolidation's merged instance is durably committed;
    /// its input directories still exist, the root manifest is stale.
    AfterMergeBuild,
    /// The first due consolidation's merged instance is committed and its
    /// input directories are removed; the root manifest is stale — it
    /// still references the GC'd inputs.
    AfterGc,
    /// The process died **mid-merge-copy**: the first due consolidation's
    /// output directory holds `index.meta`, some merged shard files and a
    /// `.shd.tmp` in flight, but no owner sidecar — the commit record was
    /// never written. The inputs are untouched, the root manifest is
    /// stale. Reopen must sweep the debris and converge on the pre-merge
    /// state.
    MidMergeCopy,
    /// The process died **mid-sidecar-compaction**: the merged index is
    /// fully written and the compacted `owner.meta` was being staged (an
    /// `owner.meta.tmp` is in flight) but never renamed into place. Same
    /// healing obligation as [`MidMergeCopy`](Self::MidMergeCopy): without
    /// an authenticated sidecar the directory is debris.
    MidSidecarCompaction,
}

/// The outcome of one consolidation attempt (see
/// [`UpdateManager::merge_instances`]).
enum Merged<S: RangeScheme> {
    /// The merged instance is durably committed. `structural` names the
    /// strategy that produced it; `killed` is set when a simulated kill
    /// stopped the ingest after the commit (manifest must stay stale).
    Committed {
        instance: BatchInstance<S>,
        structural: bool,
        killed: bool,
    },
    /// A simulated kill struck **before** the merged instance's commit
    /// record was written: the inputs stay the active state and only
    /// debris is left on disk.
    KilledEarly { group: Vec<BatchInstance<S>> },
}

/// Test support: turns a fully committed merged-instance directory into
/// the on-disk state a process kill at `kill` would have left behind —
/// the owner sidecar (the commit record, always written last) is gone,
/// plus the in-flight temporaries of the interrupted stage.
fn simulate_commit_kill(dir: &Path, kill: KillPoint) {
    let _ = std::fs::remove_file(dir.join(rsse_sse::storage::OWNER_META_FILE));
    match kill {
        KillPoint::MidMergeCopy => {
            // One merged shard vanished mid-copy and its temporary is
            // still in flight.
            let shard = dir.join(rsse_sse::storage::shard_file_name(0));
            let _ = std::fs::remove_file(&shard);
            let _ = std::fs::write(
                dir.join(format!("{}.tmp", rsse_sse::storage::shard_file_name(0))),
                b"in-flight merge copy",
            );
        }
        KillPoint::MidSidecarCompaction => {
            let _ = std::fs::write(
                dir.join(format!("{}.tmp", rsse_sse::storage::OWNER_META_FILE)),
                b"in-flight compacted sidecar",
            );
        }
        _ => {}
    }
}

/// Owner-side manager of a dynamically updated, privately searchable
/// dataset.
pub struct UpdateManager<S: RangeScheme> {
    domain: Domain,
    config: UpdateConfig,
    /// Master-key chain sealing the per-instance owner sidecars. Drawn
    /// lazily from the first ingest's RNG unless supplied up front via
    /// [`with_key`](Self::with_key) / [`open_root`](Self::open_root).
    chain: Option<KeyChain>,
    /// `levels[l]` holds the not-yet-consolidated instances at height `l` of
    /// the s-ary merge tree (level 0 = raw batches).
    levels: Vec<Vec<BatchInstance<S>>>,
    next_seq: u64,
    /// Monotonic counter naming persisted instance directories — a merged
    /// instance reuses the newest `seq` of its group, so `seq` alone would
    /// collide.
    next_build: u64,
    batches_ingested: usize,
    /// Consolidations realized as re-encryption-free structural merges.
    structural_consolidations: usize,
    /// Consolidations realized as full rebuilds (including structural-mode
    /// fallbacks).
    rebuild_consolidations: usize,
}

impl<S: RangeScheme> UpdateManager<S> {
    /// Creates an empty manager over `domain`.
    ///
    /// The owner master key — which seals the durable owner state of a
    /// persisted manager — is drawn from the first
    /// [`ingest_batch`](Self::ingest_batch)'s RNG; retrieve it with
    /// [`owner_key`](Self::owner_key) and store it safely if the manager
    /// is ever to be reopened with [`open_root`](Self::open_root).
    /// Managers restarted across processes should prefer
    /// [`with_key`](Self::with_key).
    pub fn new(domain: Domain, config: UpdateConfig) -> Self {
        Self {
            domain,
            config,
            chain: None,
            levels: Vec::new(),
            next_seq: 0,
            next_build: 0,
            batches_ingested: 0,
            structural_consolidations: 0,
            rebuild_consolidations: 0,
        }
    }

    /// Creates an empty manager over `domain` whose durable owner state is
    /// sealed under the given master key — the key
    /// [`open_root`](Self::open_root) will later need to reopen the
    /// manager from its storage root.
    pub fn with_key(key: OwnerKey, domain: Domain, config: UpdateConfig) -> Self {
        let mut manager = Self::new(domain, config);
        manager.chain = Some(KeyChain::new(key));
        manager
    }

    /// The owner master key, if one has been set or drawn yet (`None`
    /// before the first ingest of a [`new`](Self::new)-built manager).
    /// This is the key to persist alongside the storage root: without it
    /// the root cannot be reopened.
    pub fn owner_key(&self) -> Option<&OwnerKey> {
        self.chain.as_ref().map(KeyChain::master)
    }

    /// Ensures the master-key chain exists, drawing a fresh key from `rng`
    /// on the first ingest of a manager built without one.
    fn ensure_chain<R: RngCore + CryptoRng>(&mut self, rng: &mut R) -> &KeyChain {
        if self.chain.is_none() {
            self.chain = Some(KeyChain::generate(rng));
        }
        self.chain.as_ref().expect("chain was just ensured")
    }

    /// The storage configuration for the next index build of `entry_count`
    /// update entries: in-memory, or a fresh uniquely named subdirectory of
    /// the configured storage root. Returns the build number that names
    /// (and is sealed into) the instance.
    ///
    /// When the manager carries a [`build_budget`](UpdateConfig::build_budget)
    /// and this build's estimated in-RAM working set exceeds it — which is
    /// exactly the consolidation-rebuild case once a level has grown large
    /// — the budget is attached to the instance configuration, routing the
    /// scheme's build through the external-memory pipeline.
    fn next_instance_config(&mut self, entry_count: usize) -> (u64, StorageConfig) {
        let build_id = self.next_build;
        self.next_build += 1;
        let mut config = match &self.config.storage_root {
            None => StorageConfig::in_memory(self.config.shard_bits),
            Some(root) => {
                let dir = root.join(ManagerManifest::instance_dir_name(build_id));
                let config = StorageConfig::on_disk(self.config.shard_bits, dir);
                match self.config.cache_budget {
                    Some(budget) => config.with_cache_budget(budget),
                    None => config,
                }
            }
        };
        if let Some(budget) = &self.config.build_budget {
            if self.estimated_build_bytes(entry_count) > budget.memory_bytes {
                config = config.with_build_budget(budget.clone());
            }
        }
        (build_id, config)
    }

    /// Rough upper bound on the in-RAM working set of building an index
    /// over `entry_count` records: each record expands into up to
    /// `domain bits + 2` (keyword, payload) entries (the logarithmic
    /// schemes' covering nodes; Constant's single entry is well below
    /// this), each costing on the order of 64 bytes across the sort, the
    /// encrypted chunks and the scatter. A heuristic, not an accounting —
    /// it only decides when spilling is worth the extra I/O pass.
    fn estimated_build_bytes(&self, entry_count: usize) -> usize {
        let per_record = (self.domain.bits() as usize + 2) * 64;
        entry_count.saturating_mul(per_record)
    }

    /// The root manifest describing the manager's current durable state.
    fn manifest(&self) -> ManagerManifest {
        ManagerManifest {
            scheme: S::NAME.to_string(),
            domain_size: self.domain.size(),
            consolidation_step: self.config.consolidation_step as u64,
            shard_bits: self.config.shard_bits,
            cache_budget: self.config.cache_budget.map(|b| b as u64),
            next_seq: self.next_seq,
            next_build: self.next_build,
            batches_ingested: self.batches_ingested as u64,
            consolidations: (self.structural_consolidations + self.rebuild_consolidations) as u64,
            structural_consolidations: self.structural_consolidations as u64,
            rebuild_consolidations: self.rebuild_consolidations as u64,
            levels: self
                .levels
                .iter()
                .map(|level| level.iter().map(BatchInstance::manifest_record).collect())
                .collect(),
        }
    }

    /// Commits the root manifest (atomic tmp + rename). No-op without a
    /// storage root: an in-memory manager has no durable state to record.
    fn persist_manifest(&self) -> Result<(), StorageError> {
        match &self.config.storage_root {
            None => Ok(()),
            Some(root) => write_manager_manifest(root, &self.manifest()),
        }
    }

    /// The attribute domain shared by all batches.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of currently active (separately queried) index instances.
    pub fn active_instances(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Number of raw batches ingested so far.
    pub fn batches_ingested(&self) -> usize {
        self.batches_ingested
    }

    /// Total number of consolidation operations performed, across both
    /// merge strategies — always
    /// [`structural_consolidations`](Self::structural_consolidations)` + `
    /// [`rebuild_consolidations`](Self::rebuild_consolidations).
    pub fn consolidations(&self) -> usize {
        self.structural_consolidations + self.rebuild_consolidations
    }

    /// Number of consolidations realized as re-encryption-free structural
    /// merges (only ever non-zero under
    /// [`ConsolidationMode::Structural`]).
    pub fn structural_consolidations(&self) -> usize {
        self.structural_consolidations
    }

    /// Number of consolidations realized as full merge-and-re-encrypt
    /// rebuilds — the paper's baseline strategy, including any
    /// structural-mode consolidations that fell back to it.
    pub fn rebuild_consolidations(&self) -> usize {
        self.rebuild_consolidations
    }

    /// Number of currently active instances that are structurally merged
    /// (multi-part). Unlike
    /// [`structural_consolidations`](Self::structural_consolidations) this
    /// counts live state, not history: a structural instance that is later
    /// consolidated away (or rebuilt) stops counting.
    pub fn structural_instances(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .filter(|instance| instance.kind.is_structural())
            .count()
    }

    /// Combined index statistics over all active instances.
    pub fn index_stats(&self) -> IndexStats {
        self.levels
            .iter()
            .flatten()
            .map(|instance| S::index_stats(&instance.server))
            .fold(IndexStats::default(), IndexStats::merged)
    }

    /// Ingests one batch of updates: builds a fresh static index under a
    /// fresh key and triggers any due consolidations.
    ///
    /// # Panics
    /// Panics if an entry's value lies outside the manager's domain, or if
    /// a configured on-disk backend fails (use
    /// [`try_ingest_batch`](Self::try_ingest_batch) to handle storage
    /// errors instead).
    pub fn ingest_batch<R: RngCore + CryptoRng>(&mut self, entries: Vec<UpdateEntry>, rng: &mut R) {
        self.try_ingest_batch(entries, rng)
            .expect("storage backend failed during batch ingestion");
    }

    /// Fallible variant of [`ingest_batch`](Self::ingest_batch): surfaces
    /// storage-backend failures (full disk, permissions, …) as typed
    /// [`StorageError`]s instead of panicking. A failed batch build leaves
    /// the manager unchanged; a failed consolidation rebuild restores its
    /// input instances (the batch itself stays ingested), so active state
    /// never degrades on error.
    ///
    /// # Panics
    /// Panics if an entry's value lies outside the manager's domain (a
    /// caller bug, not an environmental failure).
    pub fn try_ingest_batch<R: RngCore + CryptoRng>(
        &mut self,
        entries: Vec<UpdateEntry>,
        rng: &mut R,
    ) -> Result<(), StorageError> {
        self.try_ingest_batch_inner(entries, rng, None)
    }

    /// Test support: runs [`try_ingest_batch`](Self::try_ingest_batch) but
    /// simulates a process kill at the given [`KillPoint`] — every disk
    /// write up to that stage has happened, nothing after it has (in
    /// particular, the root manifest is left stale). The manager object
    /// must be discarded afterwards, exactly as a killed process would be;
    /// reopen the root with [`open_root`](Self::open_root).
    #[doc(hidden)]
    pub fn try_ingest_batch_kill_at<R: RngCore + CryptoRng>(
        &mut self,
        entries: Vec<UpdateEntry>,
        rng: &mut R,
        kill: KillPoint,
    ) -> Result<(), StorageError> {
        self.try_ingest_batch_inner(entries, rng, Some(kill))
    }

    fn try_ingest_batch_inner<R: RngCore + CryptoRng>(
        &mut self,
        entries: Vec<UpdateEntry>,
        rng: &mut R,
        kill: Option<KillPoint>,
    ) -> Result<(), StorageError> {
        for entry in &entries {
            assert!(
                self.domain.contains(entry.record.value),
                "update value {} outside domain of size {}",
                entry.record.value,
                self.domain.size()
            );
        }
        self.ensure_chain(rng);
        let mut seed = [0u8; SEED_LEN];
        rng.fill_bytes(&mut seed);
        let seq = self.next_seq;
        let (build_id, config) = self.next_instance_config(entries.len());
        let chain = self.chain.as_ref().expect("chain ensured above");
        let instance = match BatchInstance::build(
            self.domain,
            build_id,
            seq,
            0,
            entries,
            &config,
            chain,
            seed,
        ) {
            Ok(instance) => instance,
            Err(error) => {
                // Don't leak a half-written instance directory.
                if let rsse_core::StorageBackend::OnDisk(dir) = &config.backend {
                    let _ = std::fs::remove_dir_all(dir);
                }
                return Err(error);
            }
        };
        self.next_seq += 1;
        self.batches_ingested += 1;
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(instance);
        if kill == Some(KillPoint::AfterBatchBuild) {
            return Ok(());
        }
        if self.consolidate_due_levels(rng, kill)? {
            return Ok(()); // killed mid-consolidation: no manifest commit
        }
        // The manifest is committed last, once every instance directory it
        // references is durable: a crash anywhere above leaves a manifest
        // describing the previous consistent state, which open_root heals
        // (rolling an uncommitted batch back, a committed consolidation
        // forward).
        self.persist_manifest()
    }

    /// Runs every due consolidation. Returns `true` if a simulated kill
    /// stopped the work mid-way (test support; the caller must then skip
    /// the manifest commit, exactly as a killed process would have).
    fn consolidate_due_levels<R: RngCore + CryptoRng>(
        &mut self,
        rng: &mut R,
        kill: Option<KillPoint>,
    ) -> Result<bool, StorageError> {
        let step = self.config.consolidation_step;
        if step == 0 {
            return Ok(false);
        }
        let mut level = 0;
        while level < self.levels.len() {
            if self.levels[level].len() >= step {
                let group: Vec<BatchInstance<S>> = self.levels[level].drain(..).collect();
                match self.merge_instances(group, level, rng, kill) {
                    Ok(Merged::Committed {
                        instance,
                        structural,
                        killed,
                    }) => {
                        if self.levels.len() <= level + 1 {
                            self.levels.push(Vec::new());
                        }
                        self.levels[level + 1].push(instance);
                        if structural {
                            self.structural_consolidations += 1;
                        } else {
                            self.rebuild_consolidations += 1;
                        }
                        if killed {
                            return Ok(true);
                        }
                    }
                    Ok(Merged::KilledEarly { group }) => {
                        // The merged instance never committed: the inputs
                        // stay the active state (exactly what reopen will
                        // reconstruct once the debris is swept).
                        self.levels[level] = group;
                        return Ok(true);
                    }
                    Err((group, error)) => {
                        // Roll back: the inputs stay active, nothing lost.
                        self.levels[level] = group;
                        return Err(error);
                    }
                }
            }
            level += 1;
        }
        Ok(false)
    }

    /// Merges a group of instances into one: replays their updates in
    /// sequence order, drops deleted tuples, and rebuilds a single index
    /// under a fresh key (the "download, merge, re-encrypt" of the paper) —
    /// written through the configured storage backend, like every other
    /// build. On success the consumed instances' persisted directories are
    /// removed; on failure the group is handed back untouched for rollback.
    ///
    /// A deletion tombstone can only be dropped ("physically purged") when
    /// no instance *outside* the merged group still touches the deleted id
    /// — otherwise an older instance holding a stale version of the tuple
    /// would become authoritative again and the tuple would resurrect.
    /// Tombstones that must survive stay in the merged instance's entries
    /// (and are indexed and query-filtered exactly like a level-0 delete)
    /// until a later merge meets the stale version and purges both.
    #[allow(clippy::type_complexity)]
    fn merge_instances<R: RngCore + CryptoRng>(
        &mut self,
        mut group: Vec<BatchInstance<S>>,
        level: usize,
        rng: &mut R,
        kill: Option<KillPoint>,
    ) -> Result<Merged<S>, (Vec<BatchInstance<S>>, StorageError)> {
        group.sort_by_key(|instance| instance.seq);
        let newest_seq = group.last().map(|i| i.seq).unwrap_or(0);
        // The flattened part layout of a prospective structural merge:
        // group member `g`'s parts occupy flat indexes starting at
        // `flat_base[g]` (one part for a plain instance, its own part
        // count for an already-structural one).
        let mut flat_base: Vec<u32> = Vec::with_capacity(group.len());
        let mut part_total = 0u32;
        for instance in &group {
            flat_base.push(part_total);
            part_total += match &instance.kind {
                InstanceKind::Plain { .. } => 1,
                InstanceKind::Structural { parts, .. } => parts.len() as u32,
            };
        }
        // Latest entry per id across the group (instances iterate in seq
        // order, so later inserts win), each tagged with the flattened
        // part whose dictionary holds that authoritative version.
        let mut latest: BTreeMap<DocId, (UpdateEntry, u32)> = BTreeMap::new();
        for (g, instance) in group.iter().enumerate() {
            for entry in &instance.entries {
                let part = match &instance.kind {
                    InstanceKind::Plain { .. } => flat_base[g],
                    InstanceKind::Structural { authority, .. } => {
                        flat_base[g] + authority[&entry.record.id]
                    }
                };
                latest.insert(entry.record.id, (*entry, part));
            }
        }
        // `self.levels` no longer contains the drained group, so every
        // instance seen here is a live instance outside the merge.
        let touched_elsewhere: HashSet<DocId> = self
            .levels
            .iter()
            .flatten()
            .flat_map(|instance| instance.ops.keys().copied())
            .collect();
        let surviving: Vec<(UpdateEntry, u32)> = latest
            .into_values()
            .filter(|(entry, _)| {
                !entry.is_deletion() || touched_elsewhere.contains(&entry.record.id)
            })
            .map(|(entry, part)| {
                (
                    UpdateEntry {
                        record: entry.record,
                        op: if entry.is_deletion() {
                            UpdateOp::Delete
                        } else {
                            UpdateOp::Insert
                        },
                    },
                    part,
                )
            })
            .collect();

        // Structural merge first, when the mode and the scheme allow it.
        // A typed Unsupported — scheme can't merge, incompatible layouts,
        // a label collision — falls back to the rebuild below (burning a
        // build number, which is harmless: directory names only need to
        // be unique, not dense). Anything else is a real failure.
        if self.config.consolidation_mode == ConsolidationMode::Structural
            && S::supports_structural_merge()
        {
            match self.merge_structural(&group, level, newest_seq, &surviving, kill) {
                Ok(Some(instance)) => {
                    if kill == Some(KillPoint::AfterMergeBuild) {
                        return Ok(Merged::Committed {
                            instance,
                            structural: true,
                            killed: true,
                        });
                    }
                    for instance in &group {
                        instance.remove_dir();
                    }
                    return Ok(Merged::Committed {
                        instance,
                        structural: true,
                        killed: kill == Some(KillPoint::AfterGc),
                    });
                }
                Ok(None) => return Ok(Merged::KilledEarly { group }),
                Err(StorageError::Unsupported(_)) => {}
                Err(error) => return Err((group, error)),
            }
        }

        let surviving: Vec<UpdateEntry> = surviving.into_iter().map(|(entry, _)| entry).collect();
        let mut seed = [0u8; SEED_LEN];
        rng.fill_bytes(&mut seed);
        let (build_id, config) = self.next_instance_config(surviving.len());
        let chain = self
            .chain
            .as_ref()
            .expect("consolidation only runs after an ingest ensured the chain");
        match BatchInstance::build(
            self.domain,
            build_id,
            newest_seq,
            (level + 1) as u32,
            surviving,
            &config,
            chain,
            seed,
        ) {
            Ok(merged) => {
                if matches!(
                    kill,
                    Some(KillPoint::MidMergeCopy | KillPoint::MidSidecarCompaction)
                ) {
                    // Simulated kill before the commit record: demote the
                    // fully built directory to the matching debris state
                    // and keep the inputs active.
                    if let Some(dir) = &merged.dir {
                        simulate_commit_kill(dir, kill.expect("matched above"));
                    }
                    return Ok(Merged::KilledEarly { group });
                }
                if kill == Some(KillPoint::AfterMergeBuild) {
                    // Simulated kill between the merged instance's commit
                    // and the GC of its inputs: both generations exist on
                    // disk, the manifest references only the old one.
                    return Ok(Merged::Committed {
                        instance: merged,
                        structural: false,
                        killed: true,
                    });
                }
                // The merged instance is durably built; the inputs' indexes
                // are now superseded and their directories can go.
                for instance in &group {
                    instance.remove_dir();
                }
                Ok(Merged::Committed {
                    instance: merged,
                    structural: false,
                    killed: kill == Some(KillPoint::AfterGc),
                })
            }
            Err(error) => {
                // Clean up the half-written merged index, keep the inputs.
                if let rsse_core::StorageBackend::OnDisk(dir) = &config.backend {
                    let _ = std::fs::remove_dir_all(dir);
                }
                Err((group, error))
            }
        }
    }

    /// Attempts the re-encryption-free structural merge of `group` into
    /// one instance at `level + 1`: the inputs' committed dictionaries
    /// are combined via [`RangeScheme::merge_stored`] (ciphertext copied
    /// verbatim), the flattened parts' clients re-derive from their
    /// retained seeds, and — for persisted managers — the **compacted**
    /// owner sidecar (deduped latest-per-id log, kind byte `1`) commits
    /// the instance durably, written last like every other commit record.
    ///
    /// Returns `Ok(None)` when a simulated pre-commit kill left debris on
    /// disk instead of a committed instance (test support), and
    /// [`StorageError::Unsupported`] when the merge cannot proceed
    /// structurally — the caller falls back to a rebuild.
    fn merge_structural(
        &mut self,
        group: &[BatchInstance<S>],
        level: usize,
        newest_seq: u64,
        surviving: &[(UpdateEntry, u32)],
        kill: Option<KillPoint>,
    ) -> Result<Option<BatchInstance<S>>, StorageError> {
        let mut seeds: Vec<[u8; SEED_LEN]> = Vec::new();
        for instance in group {
            match &instance.kind {
                InstanceKind::Plain { seed, .. } => seeds.push(*seed),
                InstanceKind::Structural { parts, .. } => {
                    seeds.extend(parts.iter().map(|(_, seed)| *seed));
                }
            }
        }
        let parts = seeds
            .iter()
            .map(|&seed| {
                let mut rng = ChaCha20Rng::from_seed(seed);
                S::derive_client(&self.domain, &mut rng).map(|client| (client, seed))
            })
            .collect::<Result<Vec<(S, [u8; SEED_LEN])>, StorageError>>()?;
        let (build_id, config) = self.next_instance_config(surviving.len());
        let chain = self
            .chain
            .as_ref()
            .expect("consolidation only runs after an ingest ensured the chain");
        let inputs: Vec<MergeInput<'_, S::Server>> = group
            .iter()
            .map(|instance| MergeInput {
                server: &instance.server,
                dir: instance.dir.as_deref(),
            })
            .collect();
        let built = (|| -> Result<S::Server, StorageError> {
            let server = S::merge_stored(&inputs, &config)?;
            if let rsse_core::StorageBackend::OnDisk(dir) = &config.backend {
                write_owner_meta(
                    dir,
                    &OwnerMeta {
                        build_id,
                        seq: newest_seq,
                        level: (level + 1) as u32,
                        payload: persist::seal_structural_payload(
                            chain, build_id, &seeds, surviving,
                        ),
                    },
                )?;
            }
            Ok(server)
        })();
        let server = match built {
            Ok(server) => server,
            Err(error) => {
                // Don't leak a half-merged output directory — whether the
                // error falls back to a rebuild or aborts the ingest.
                if let rsse_core::StorageBackend::OnDisk(dir) = &config.backend {
                    let _ = std::fs::remove_dir_all(dir);
                }
                return Err(error);
            }
        };
        let dir = match &config.backend {
            rsse_core::StorageBackend::InMemory => None,
            rsse_core::StorageBackend::OnDisk(dir) => Some(dir.clone()),
        };
        if matches!(
            kill,
            Some(KillPoint::MidMergeCopy | KillPoint::MidSidecarCompaction)
        ) {
            if let Some(dir) = &dir {
                simulate_commit_kill(dir, kill.expect("matched above"));
            }
            return Ok(None);
        }
        let entries: Vec<UpdateEntry> = surviving.iter().map(|(entry, _)| *entry).collect();
        let ops: HashMap<DocId, UpdateOp> = entries
            .iter()
            .map(|entry| (entry.record.id, entry.op))
            .collect();
        let authority: HashMap<DocId, u32> = surviving
            .iter()
            .map(|(entry, part)| (entry.record.id, *part))
            .collect();
        Ok(Some(BatchInstance {
            seq: newest_seq,
            build_id,
            kind: InstanceKind::Structural { parts, authority },
            server,
            entries,
            ops,
            dir,
        }))
    }

    /// Issues a range query against every active instance, merges the
    /// results and refines them at the owner: ids superseded by a newer
    /// batch are dropped, and ids whose newest operation is a deletion are
    /// filtered out.
    ///
    /// Convenience wrapper over [`try_query`](Self::try_query) that
    /// **panics** if a persisted instance's storage fails mid-search;
    /// in-memory managers cannot fail.
    pub fn query(&self, range: Range) -> QueryOutcome {
        self.try_query(range)
            .expect("storage backend failed during query (use try_query to handle I/O errors)")
    }

    /// Fallible variant of [`query`](Self::query): a failed block read in
    /// any persisted instance aborts the whole query with its typed
    /// [`StorageError`] instead of silently dropping that instance's
    /// results (which would be indistinguishable from the tuples not
    /// existing — exactly the confusion the fallible path removes).
    pub fn try_query(&self, range: Range) -> Result<QueryOutcome, StorageError> {
        // Owner-side refinement metadata: the newest sequence number that
        // touched each id, across all active instances.
        let mut newest_touch: HashMap<DocId, u64> = HashMap::new();
        for instance in self.levels.iter().flatten() {
            for &id in instance.ops.keys() {
                let entry = newest_touch.entry(id).or_insert(instance.seq);
                if instance.seq > *entry {
                    *entry = instance.seq;
                }
            }
        }

        let mut ids: Vec<DocId> = Vec::new();
        let mut seen: HashSet<DocId> = HashSet::new();
        let mut stats = QueryStats::default();
        for instance in self.levels.iter().flatten() {
            let outcome = instance.try_query(range)?;
            stats.tokens_sent += outcome.stats.tokens_sent;
            stats.token_bytes += outcome.stats.token_bytes;
            stats.rounds = stats.rounds.max(outcome.stats.rounds);
            stats.entries_touched += outcome.stats.entries_touched;
            stats.result_groups += outcome.stats.result_groups;
            for id in outcome.ids {
                // Only the instance that holds the *newest* version of the
                // tuple is authoritative for it.
                if newest_touch.get(&id) != Some(&instance.seq) {
                    continue;
                }
                if instance.ops.get(&id) == Some(&UpdateOp::Delete) {
                    continue;
                }
                if seen.insert(id) {
                    ids.push(id);
                }
            }
        }
        Ok(QueryOutcome { ids, stats })
    }

    /// Resilient variant of [`try_query`](Self::try_query): storage
    /// failures are retried whole-query under a shared
    /// [`RetryPolicy`](rsse_serve::RetryPolicy) — its budget and jittered
    /// backoff — instead of aborting on the first failed block read.
    /// Exhaustion (attempt limit or dry budget) surfaces as the policy's
    /// typed [`ServeError`](rsse_serve::ServeError).
    ///
    /// The retry is whole-query because manager-side refinement folds every
    /// instance's results together; per-probe retry lives in
    /// `rsse_serve::ResilientServer`, below this layer. Passing one policy
    /// (and clock) across managers gives all of them one repair budget.
    pub fn try_query_resilient(
        &self,
        range: Range,
        policy: &rsse_serve::RetryPolicy,
        clock: &dyn rsse_serve::Clock,
    ) -> Result<QueryOutcome, rsse_serve::ServeError> {
        policy.run(clock, || self.try_query(range))
    }

    /// The plaintext ground truth of the manager's current logical state —
    /// what a trusted database would answer. Used by tests and the update
    /// ablation experiment.
    pub fn ground_truth(&self, range: Range) -> Vec<DocId> {
        let mut latest: BTreeMap<DocId, (u64, UpdateEntry)> = BTreeMap::new();
        for instance in self.levels.iter().flatten() {
            for entry in &instance.entries {
                let candidate = (instance.seq, *entry);
                match latest.get(&entry.record.id) {
                    Some((seq, _)) if *seq > instance.seq => {}
                    _ => {
                        latest.insert(entry.record.id, candidate);
                    }
                }
            }
        }
        latest
            .values()
            .filter(|(_, entry)| !entry.is_deletion() && range.contains(entry.record.value))
            .map(|(_, entry)| entry.record.id)
            .collect()
    }

    /// Reopens a whole manager from the durable state at `root`: the
    /// `manager.meta` manifest, the per-instance directories, and their
    /// encrypted `owner.meta` sidecars — everything a restarted process
    /// needs besides the owner master `key`.
    ///
    /// Each instance's client re-derives byte-identically by replaying its
    /// persisted build seed, and its server reopens through
    /// [`RangeScheme::open_stored`], so the reopened manager answers
    /// [`try_query`](Self::try_query) exactly as the pre-crash manager
    /// did. `config` selects how the instances are served going forward:
    ///
    /// * `config.storage_root == Some(root)` — instances cold-open from
    ///   their directories (paged reads, bounded by
    ///   `config.cache_budget`), future ingests keep persisting, and the
    ///   healed manifest is re-committed;
    /// * `config.storage_root == None` — the durable state is **restored
    ///   into RAM**: every instance rebuilds in memory from its persisted
    ///   update log, nothing at `root` is modified beyond crash cleanup,
    ///   and the reopened manager continues as a purely in-memory one.
    ///
    /// # Crash recovery
    ///
    /// The manifest commits only after the instance directories it
    /// references are durable, so a crash between an index commit and the
    /// manifest commit leaves one of three windows, each of which this
    /// method heals:
    ///
    /// * a **batch instance** committed but unreferenced — the ingest
    ///   never returned to the caller, so it is rolled back (the
    ///   directory is swept after its sidecar authenticates);
    /// * a **consolidated instance** committed but unreferenced — the
    ///   merge is rolled *forward*: the merged instance supersedes every
    ///   referenced instance one level down with a sequence number at or
    ///   below its own (their directories, GC'd or still present, are
    ///   resolved), and the consolidation counter advances;
    /// * a manifest referencing an instance whose directory was already
    ///   **GC'd** — tolerated exactly when a committed consolidation
    ///   supersedes it (the previous case); otherwise the root is
    ///   genuinely damaged and the open fails typed.
    ///
    /// # Errors
    ///
    /// Everything malformed surfaces as a typed [`StorageError`]: a
    /// missing or corrupt manifest, a scheme-kind mismatch, a referenced
    /// instance directory that is missing (with no superseding
    /// consolidation), foreign or stale sidecars (sequence or level
    /// disagreeing with the manifest), and owner payloads failing
    /// authentication — the wrong master key refuses to open rather than
    /// misinterpreting the root, and **nothing is deleted before the
    /// sidecars of the directories involved have authenticated** under
    /// the supplied key.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use rand_chacha::ChaCha20Rng;
    /// use rsse_core::schemes::log_brc_urc::LogScheme;
    /// use rsse_cover::{Domain, Range};
    /// use rsse_updates::{OwnerKey, UpdateConfig, UpdateEntry, UpdateManager};
    ///
    /// let root = std::env::temp_dir().join(format!("rsse-open-root-doc-{}", std::process::id()));
    /// let mut rng = ChaCha20Rng::seed_from_u64(1);
    /// let key = OwnerKey::generate(&mut rng);
    /// let config = UpdateConfig {
    ///     storage_root: Some(root.clone()),
    ///     ..UpdateConfig::default()
    /// };
    ///
    /// // A persisted manager: every batch index and the owner state land
    /// // under `root`.
    /// let mut manager: UpdateManager<LogScheme> =
    ///     UpdateManager::with_key(key.clone(), Domain::new(256), config.clone());
    /// manager.ingest_batch((0..10).map(|i| UpdateEntry::insert(i, i * 20)).collect(), &mut rng);
    /// let before = manager.query(Range::new(0, 255));
    /// drop(manager); // the process "dies"
    ///
    /// // A new process reopens the root from disk alone and answers
    /// // byte-identically.
    /// let reopened: UpdateManager<LogScheme> =
    ///     UpdateManager::open_root(key, &root, config).unwrap();
    /// assert_eq!(reopened.query(Range::new(0, 255)), before);
    /// # std::fs::remove_dir_all(&root).unwrap();
    /// ```
    pub fn open_root(
        key: OwnerKey,
        root: impl AsRef<Path>,
        config: UpdateConfig,
    ) -> Result<Self, StorageError> {
        let root = root.as_ref();
        if let Some(configured) = &config.storage_root {
            if configured != root {
                return Err(StorageError::Unsupported(
                    "open_root: config.storage_root must be the opened root (or None \
                     to restore the instances into memory)",
                ));
            }
        }
        let manifest = read_manager_manifest(root)?;
        let manifest_path = root.join(rsse_sse::storage::MANAGER_MANIFEST_FILE);
        let corrupt = |detail: String| StorageError::CorruptDirectory {
            path: manifest_path.clone(),
            detail,
        };
        if manifest.scheme != S::NAME {
            return Err(corrupt(format!(
                "root was built by scheme \"{}\", reopened as \"{}\"",
                manifest.scheme,
                S::NAME
            )));
        }
        // Validate before Domain::new, whose own bounds are assertions —
        // a corrupt size must surface typed, not panic.
        if manifest.domain_size == 0 || manifest.domain_size > 1 << 63 {
            return Err(corrupt(format!(
                "manifest claims an invalid domain size {}",
                manifest.domain_size
            )));
        }
        let domain = Domain::new(manifest.domain_size);
        let chain = KeyChain::new(key);

        // Inventory the canonical instance directories under the root.
        let mut on_disk: HashMap<u64, PathBuf> = HashMap::new();
        let dir_iter = std::fs::read_dir(root).map_err(|e| StorageError::Io {
            path: root.to_path_buf(),
            error: e,
        })?;
        for entry in dir_iter {
            let entry = entry.map_err(|e| StorageError::Io {
                path: root.to_path_buf(),
                error: e,
            })?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(build_id) = ManagerManifest::parse_instance_dir_name(name) {
                // Only the exact names the manager writes; anything else
                // (a user's `instance-1`, scratch siblings) is left alone.
                if name == ManagerManifest::instance_dir_name(build_id) && entry.path().is_dir() {
                    on_disk.insert(build_id, entry.path());
                }
            }
        }
        let referenced: HashSet<u64> = manifest
            .levels
            .iter()
            .flatten()
            .map(|instance| instance.build_id)
            .collect();

        // Read every commit record (owner sidecar). A referenced directory
        // without one is damaged; an unreferenced one is a half-built
        // instance a crash left behind — swept below.
        let mut sidecars: HashMap<u64, OwnerMeta> = HashMap::new();
        let mut half_built: Vec<PathBuf> = Vec::new();
        for (&build_id, dir) in &on_disk {
            match read_owner_meta(dir) {
                Ok(meta) => {
                    if meta.build_id != build_id {
                        return Err(StorageError::CorruptDirectory {
                            path: dir.clone(),
                            detail: format!(
                                "owner sidecar names build {} inside directory {} — \
                                 a foreign instance",
                                meta.build_id,
                                ManagerManifest::instance_dir_name(build_id)
                            ),
                        });
                    }
                    sidecars.insert(build_id, meta);
                }
                Err(_) if !referenced.contains(&build_id) => half_built.push(dir.clone()),
                Err(error) => return Err(error),
            }
        }

        // Working level table seeded from the manifest; referenced
        // sidecars must agree with it on sequence number and level.
        let mut levels: Vec<Vec<(u64, u64, Option<ManifestInstance>)>> = manifest
            .levels
            .iter()
            .map(|level| {
                level
                    .iter()
                    .map(|instance| (instance.build_id, instance.seq, Some(instance.clone())))
                    .collect()
            })
            .collect();
        for (level_index, level) in levels.iter().enumerate() {
            for &(build_id, seq, _) in level {
                if let Some(meta) = sidecars.get(&build_id) {
                    if meta.seq != seq || meta.level != level_index as u32 {
                        return Err(StorageError::CorruptDirectory {
                            path: on_disk[&build_id].clone(),
                            detail: format!(
                                "owner sidecar says (seq {}, level {}) but the manifest \
                                 records (seq {seq}, level {level_index}) — a stale or \
                                 foreign instance",
                                meta.seq, meta.level
                            ),
                        });
                    }
                }
            }
        }

        // Resolve committed-but-unreferenced instances, in (level, seq)
        // order so cascaded consolidations adopt bottom-up.
        let mut orphans: Vec<(u32, u64, u64)> = sidecars
            .iter()
            .filter(|(build_id, _)| !referenced.contains(build_id))
            .map(|(&build_id, meta)| (meta.level, meta.seq, build_id))
            .collect();
        orphans.sort_unstable();
        let mut sweep: Vec<u64> = Vec::new();
        let mut adopted: HashSet<u64> = HashSet::new();
        for (level, seq, build_id) in orphans {
            if level == 0 {
                // A batch whose ingest never committed its manifest: the
                // caller never saw the ingest succeed, so roll it back.
                sweep.push(build_id);
                continue;
            }
            // A committed consolidation: roll it forward. It supersedes
            // every instance one level down with seq at or below its own
            // (exactly its inputs — a merge drains the whole level).
            let input_level = (level - 1) as usize;
            if let Some(inputs) = levels.get_mut(input_level) {
                let mut kept = Vec::with_capacity(inputs.len());
                for input in inputs.drain(..) {
                    if input.1 <= seq {
                        if on_disk.contains_key(&input.0) {
                            sweep.push(input.0); // late-GC leftover
                        }
                    } else {
                        kept.push(input);
                    }
                }
                *inputs = kept;
            }
            while levels.len() <= level as usize {
                levels.push(Vec::new());
            }
            levels[level as usize].push((build_id, seq, None));
            adopted.insert(build_id);
        }

        // After adoption, every remaining instance must have its
        // directory: a missing one is genuine damage, not a GC artifact.
        for level in &levels {
            for &(build_id, seq, _) in level {
                if !on_disk.contains_key(&build_id) {
                    return Err(corrupt(format!(
                        "instance {} (seq {seq}) is referenced by the manifest but its \
                         directory is missing and no committed consolidation supersedes it",
                        ManagerManifest::instance_dir_name(build_id)
                    )));
                }
            }
        }

        // Decrypt and authenticate every owner payload involved — the kept
        // instances and the directories about to be swept — BEFORE
        // touching the disk: a wrong master key must fail the open, never
        // delete.
        // An adopted consolidation's kind — structural merge or rebuild —
        // is recorded in its payload's kind byte; classify while opening
        // so the split counters advance the right way.
        let mut opened: HashMap<u64, OwnerPayload> = HashMap::new();
        let mut adopted_structural = 0u64;
        let mut adopted_rebuild = 0u64;
        for level in &levels {
            for &(build_id, _, _) in level {
                let meta = &sidecars[&build_id];
                let dir = &on_disk[&build_id];
                let payload = persist::open_payload(&chain, build_id, dir, &meta.payload)?;
                if adopted.contains(&build_id) {
                    match &payload {
                        OwnerPayload::Plain { .. } => adopted_rebuild += 1,
                        OwnerPayload::Structural { .. } => adopted_structural += 1,
                    }
                }
                opened.insert(build_id, payload);
            }
        }
        for &build_id in &sweep {
            let meta = &sidecars[&build_id];
            persist::open_payload(&chain, build_id, &on_disk[&build_id], &meta.payload)?;
        }

        // Reconstruct the instances in level order.
        let persist_instances = config.storage_root.is_some();
        let mut rebuilt: Vec<Vec<BatchInstance<S>>> = Vec::with_capacity(levels.len());
        for level in &levels {
            let mut instances = Vec::with_capacity(level.len());
            for (build_id, seq, record) in level {
                let dir = &on_disk[build_id];
                let payload = opened.remove(build_id).expect("payload opened above");
                if let Some(record) = record {
                    let (mut inserts, mut modifies, mut deletes) = (0u64, 0u64, 0u64);
                    let (entry_count, ops) = match &payload {
                        OwnerPayload::Plain { entries, .. } => (
                            entries.len(),
                            entries.iter().map(|entry| entry.op).collect::<Vec<_>>(),
                        ),
                        OwnerPayload::Structural { entries, .. } => (
                            entries.len(),
                            entries
                                .iter()
                                .map(|(entry, _)| entry.op)
                                .collect::<Vec<_>>(),
                        ),
                    };
                    for op in ops {
                        match op {
                            UpdateOp::Insert => inserts += 1,
                            UpdateOp::Modify => modifies += 1,
                            UpdateOp::Delete => deletes += 1,
                        }
                    }
                    if entry_count as u64 != record.entry_count
                        || inserts != record.inserts
                        || modifies != record.modifies
                        || deletes != record.deletes
                    {
                        return Err(StorageError::CorruptDirectory {
                            path: dir.clone(),
                            detail: format!(
                                "owner payload holds {entry_count} entries \
                                 ({inserts}/{modifies}/{deletes} ins/mod/del) but the \
                                 manifest records {} ({}/{}/{}) — manifest and instance \
                                 disagree",
                                record.entry_count, record.inserts, record.modifies, record.deletes
                            ),
                        });
                    }
                }
                let instance_config = if persist_instances {
                    let cfg = StorageConfig::on_disk(manifest.shard_bits, dir.clone());
                    match config.cache_budget {
                        Some(budget) => cfg.with_cache_budget(budget),
                        None => cfg,
                    }
                } else {
                    StorageConfig::in_memory(manifest.shard_bits)
                };
                instances.push(match payload {
                    OwnerPayload::Plain { seed, entries } => BatchInstance::reopen(
                        domain,
                        *build_id,
                        *seq,
                        entries,
                        &instance_config,
                        seed,
                    )?,
                    OwnerPayload::Structural { seeds, entries } => {
                        // A structural instance reopens structurally no
                        // matter the current consolidation mode: its
                        // payload kind, not the runtime knob, dictates.
                        BatchInstance::reopen_structural(
                            domain,
                            *build_id,
                            *seq,
                            seeds,
                            entries,
                            dir,
                            &instance_config,
                        )?
                    }
                });
            }
            rebuilt.push(instances);
        }

        // Commit the cleanup: superseded and rolled-back directories (all
        // authenticated above) and half-built leftovers go.
        for build_id in sweep {
            let _ = std::fs::remove_dir_all(&on_disk[&build_id]);
        }
        for dir in half_built {
            let _ = std::fs::remove_dir_all(dir);
        }

        // Counters: adopted consolidations advance them past the stale
        // manifest's values (an adopted merge whose newest input was the
        // crashed ingest's batch also advances the batch counters).
        let max_seq = rebuilt
            .iter()
            .flatten()
            .map(|instance| instance.seq + 1)
            .max()
            .unwrap_or(0);
        let next_seq = manifest.next_seq.max(max_seq);
        let next_build = on_disk
            .keys()
            .map(|id| id + 1)
            .max()
            .unwrap_or(0)
            .max(manifest.next_build);
        let manager = Self {
            domain,
            config,
            chain: Some(chain),
            levels: rebuilt,
            next_seq,
            next_build,
            batches_ingested: (manifest.batches_ingested + (next_seq - manifest.next_seq)) as usize,
            structural_consolidations: (manifest.structural_consolidations + adopted_structural)
                as usize,
            rebuild_consolidations: (manifest.rebuild_consolidations + adopted_rebuild) as usize,
        };
        // Re-commit the healed manifest (no-op for an in-memory restore),
        // so the next crash starts from this consistent state.
        manager.persist_manifest()?;
        Ok(manager)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rsse_core::schemes::log_brc_urc::LogScheme;
    use rsse_core::schemes::log_src_i::LogSrcIScheme;

    type LogManager = UpdateManager<LogScheme>;

    fn manager(step: usize) -> LogManager {
        LogManager::new(
            Domain::new(256),
            UpdateConfig {
                consolidation_step: step,
                ..UpdateConfig::default()
            },
        )
    }

    fn sorted(mut ids: Vec<DocId>) -> Vec<DocId> {
        ids.sort_unstable();
        ids
    }

    #[test]
    fn inserts_across_batches_are_all_visible() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let mut mgr = manager(4);
        mgr.ingest_batch(
            (0..10).map(|i| UpdateEntry::insert(i, i * 10)).collect(),
            &mut rng,
        );
        mgr.ingest_batch(
            (10..20).map(|i| UpdateEntry::insert(i, i * 10)).collect(),
            &mut rng,
        );
        let outcome = mgr.query(Range::new(0, 255));
        assert_eq!(
            sorted(outcome.ids),
            sorted(mgr.ground_truth(Range::new(0, 255)))
        );
        assert_eq!(mgr.active_instances(), 2);
        assert_eq!(mgr.batches_ingested(), 2);
    }

    #[test]
    fn deletions_are_filtered_at_the_owner() {
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let mut mgr = manager(10);
        mgr.ingest_batch(
            vec![
                UpdateEntry::insert(1, 50),
                UpdateEntry::insert(2, 60),
                UpdateEntry::insert(3, 70),
            ],
            &mut rng,
        );
        mgr.ingest_batch(vec![UpdateEntry::delete(2, 60)], &mut rng);
        let outcome = mgr.query(Range::new(0, 255));
        assert_eq!(sorted(outcome.ids), vec![1, 3]);
        assert_eq!(sorted(mgr.ground_truth(Range::new(0, 255))), vec![1, 3]);
    }

    #[test]
    fn modifications_supersede_older_values() {
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let mut mgr = manager(10);
        mgr.ingest_batch(vec![UpdateEntry::insert(7, 10)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::modify(7, 200)], &mut rng);
        // The tuple must be found at its new value…
        assert_eq!(mgr.query(Range::new(150, 255)).ids, vec![7]);
        // …and no longer at its old one.
        assert!(mgr.query(Range::new(0, 50)).is_empty());
    }

    #[test]
    fn consolidation_keeps_instance_count_logarithmic() {
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let step = 3;
        let mut mgr = manager(step);
        let batches = 27;
        for b in 0..batches {
            let entries = (0..5u64)
                .map(|i| UpdateEntry::insert(b as u64 * 100 + i, (b as u64 * 7 + i) % 256))
                .collect();
            mgr.ingest_batch(entries, &mut rng);
            // The paper's bound: at most s instances per level, log_s(b)+1 levels.
            let max_active = step * ((batches as f64).log(step as f64).ceil() as usize + 1);
            assert!(
                mgr.active_instances() <= max_active,
                "too many active instances: {}",
                mgr.active_instances()
            );
        }
        assert!(mgr.consolidations() > 0);
        // 27 batches with s=3 fully telescope into a single level-3 instance.
        assert_eq!(mgr.active_instances(), 1);
        // All inserted tuples remain visible after the merges.
        assert_eq!(mgr.query(Range::new(0, 255)).ids.len(), batches * 5);
    }

    #[test]
    fn structural_mode_answers_like_rebuild_and_splits_the_counters() {
        // Same batches into a rebuild-mode and a structural-mode manager:
        // answers must agree with each other and with ground truth, while
        // the consolidation counters attribute the work to the right
        // strategy. Step 2 forces multi-level telescoping, so structural
        // instances are themselves structurally re-merged.
        let step = 2;
        let config = |mode| UpdateConfig {
            consolidation_step: step,
            consolidation_mode: mode,
            ..UpdateConfig::default()
        };
        let mut rng_a = ChaCha20Rng::seed_from_u64(40);
        let mut rng_b = ChaCha20Rng::seed_from_u64(40);
        let mut rebuild = LogManager::new(Domain::new(256), config(ConsolidationMode::Rebuild));
        let mut structural =
            LogManager::new(Domain::new(256), config(ConsolidationMode::Structural));
        for b in 0..8u64 {
            let mut entries: Vec<UpdateEntry> = (0..5u64)
                .map(|i| UpdateEntry::insert(b * 10 + i, (b * 37 + i * 11) % 256))
                .collect();
            if b >= 2 {
                // Delete one tuple from an earlier batch, modify another.
                entries.push(UpdateEntry::delete((b - 2) * 10, ((b - 2) * 37) % 256));
                entries.push(UpdateEntry::modify((b - 1) * 10 + 1, (b * 53) % 256));
            }
            rebuild.ingest_batch(entries.clone(), &mut rng_a);
            structural.ingest_batch(entries, &mut rng_b);
            for lo in [0u64, 64, 128] {
                let range = Range::new(lo, lo + 90);
                assert_eq!(
                    sorted(rebuild.query(range).ids),
                    sorted(structural.query(range).ids),
                    "modes disagree after batch {b} on {range:?}"
                );
            }
        }
        let range = Range::new(0, 255);
        assert_eq!(
            sorted(structural.query(range).ids),
            sorted(structural.ground_truth(range))
        );
        assert_eq!(rebuild.consolidations(), structural.consolidations());
        assert_eq!(rebuild.structural_consolidations(), 0);
        assert_eq!(structural.rebuild_consolidations(), 0);
        assert!(structural.structural_consolidations() > 0);
        assert!(structural.structural_instances() > 0);
        assert_eq!(rebuild.structural_instances(), 0);
    }

    #[test]
    fn structural_mode_falls_back_to_rebuild_on_layout_mismatch() {
        // LogSrcIScheme has no structural-merge capability, so structural
        // mode must silently fall back to the rebuild path and attribute
        // the consolidations accordingly.
        let mut rng = ChaCha20Rng::seed_from_u64(41);
        let mut mgr: UpdateManager<LogSrcIScheme> = UpdateManager::new(
            Domain::new(128),
            UpdateConfig {
                consolidation_step: 2,
                consolidation_mode: ConsolidationMode::Structural,
                ..UpdateConfig::default()
            },
        );
        for b in 0..4u64 {
            mgr.ingest_batch(
                (0..4u64)
                    .map(|i| UpdateEntry::insert(b * 10 + i, (b * 17 + i * 5) % 128))
                    .collect(),
                &mut rng,
            );
        }
        assert!(mgr.consolidations() > 0);
        assert_eq!(mgr.structural_consolidations(), 0);
        assert_eq!(mgr.rebuild_consolidations(), mgr.consolidations());
        let range = Range::new(0, 127);
        assert_eq!(
            sorted(mgr.query(range).ids),
            sorted(mgr.ground_truth(range))
        );
    }

    #[test]
    fn consolidation_purges_deleted_tuples() {
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let mut mgr = manager(2);
        mgr.ingest_batch(
            vec![UpdateEntry::insert(1, 10), UpdateEntry::insert(2, 20)],
            &mut rng,
        );
        let before = mgr.index_stats();
        mgr.ingest_batch(vec![UpdateEntry::delete(1, 10)], &mut rng);
        // The two batches merged (s = 2) and the deleted tuple is physically
        // gone, so the consolidated index holds a single tuple.
        assert_eq!(mgr.active_instances(), 1);
        assert!(mgr.index_stats().entries < before.entries + 5);
        assert_eq!(mgr.query(Range::new(0, 255)).ids, vec![2]);
    }

    #[test]
    fn query_stats_accumulate_across_instances() {
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let mut mgr = manager(0); // never consolidate
        for b in 0..4u64 {
            mgr.ingest_batch(vec![UpdateEntry::insert(b, b * 11)], &mut rng);
        }
        assert_eq!(mgr.active_instances(), 4);
        let outcome = mgr.query(Range::new(0, 255));
        assert_eq!(outcome.ids.len(), 4);
        assert!(outcome.stats.tokens_sent >= 4, "one token set per instance");
    }

    #[test]
    fn works_with_interactive_schemes_too() {
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let mut mgr: UpdateManager<LogSrcIScheme> =
            UpdateManager::new(Domain::new(128), UpdateConfig::default());
        mgr.ingest_batch(
            (0..20)
                .map(|i| UpdateEntry::insert(i, (i * 13) % 128))
                .collect(),
            &mut rng,
        );
        mgr.ingest_batch(
            vec![UpdateEntry::delete(3, 39), UpdateEntry::insert(100, 64)],
            &mut rng,
        );
        let range = Range::new(0, 127);
        assert_eq!(
            sorted(mgr.query(range).ids.clone()),
            sorted(mgr.ground_truth(range))
        );
    }

    #[test]
    fn consolidated_deletion_does_not_resurrect_older_instances() {
        // Regression: a tuple inserted in an early (already consolidated)
        // instance and deleted in a later batch must stay deleted after the
        // deleting batch's level consolidates. The tombstone has to survive
        // the merge while any older live instance still touches the id.
        let mut rng = ChaCha20Rng::seed_from_u64(10);
        let mut mgr = manager(2);
        mgr.ingest_batch(vec![UpdateEntry::insert(1, 10)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::insert(2, 20)], &mut rng);
        // Level 0 consolidated into instance A = {1, 2} at level 1.
        assert_eq!(mgr.active_instances(), 1);
        mgr.ingest_batch(vec![UpdateEntry::delete(1, 10)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::insert(3, 30)], &mut rng);
        // The deleting batch merged with its level-0 sibling while A still
        // lives: id 1 must not resurrect from A.
        let range = Range::new(0, 255);
        assert_eq!(sorted(mgr.query(range).ids), vec![2, 3]);
        assert_eq!(sorted(mgr.ground_truth(range)), vec![2, 3]);
        // One more round of batches telescopes everything into one
        // instance; the tombstone finally meets the stale insert and both
        // are purged physically.
        mgr.ingest_batch(vec![UpdateEntry::insert(4, 40)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::insert(5, 50)], &mut rng);
        assert_eq!(sorted(mgr.query(range).ids), vec![2, 3, 4, 5]);
        if mgr.active_instances() == 1 {
            // Fully consolidated: the index holds exactly the live tuples.
            let entries_per_tuple = 9; // domain 256 → log m + 1 keywords
            assert_eq!(mgr.index_stats().entries, 4 * entries_per_tuple);
        }
    }

    #[test]
    fn modification_survives_consolidation_of_the_modifying_batch() {
        // Same resurrection scenario through the modify path: the old value
        // must stay dead once the modifying batch consolidates.
        let mut rng = ChaCha20Rng::seed_from_u64(11);
        let mut mgr = manager(2);
        mgr.ingest_batch(vec![UpdateEntry::insert(7, 10)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::insert(8, 11)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::modify(7, 200)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::insert(9, 12)], &mut rng);
        assert!(
            mgr.query(Range::new(0, 50)).ids != vec![7],
            "old value must stay dead"
        );
        assert_eq!(sorted(mgr.query(Range::new(0, 50)).ids), vec![8, 9]);
        assert_eq!(mgr.query(Range::new(150, 255)).ids, vec![7]);
    }

    #[test]
    fn sharded_rebuilds_answer_identically_to_unsharded() {
        // The rebuild path goes through build_sharded: a manager configured
        // with shard bits must stay logically identical to an unsharded one
        // across ingestion and consolidation.
        let mut rng_a = ChaCha20Rng::seed_from_u64(9);
        let mut rng_b = ChaCha20Rng::seed_from_u64(9);
        let mut plain = manager(3);
        let mut sharded = LogManager::new(
            Domain::new(256),
            UpdateConfig {
                consolidation_step: 3,
                shard_bits: 4,
                storage_root: None,
                cache_budget: None,
                build_budget: None,
                consolidation_mode: ConsolidationMode::default(),
            },
        );
        for b in 0..9u64 {
            let entries: Vec<UpdateEntry> = (0..6u64)
                .map(|i| UpdateEntry::insert(b * 10 + i, (b * 31 + i * 7) % 256))
                .collect();
            plain.ingest_batch(entries.clone(), &mut rng_a);
            sharded.ingest_batch(entries, &mut rng_b);
        }
        assert_eq!(plain.consolidations(), sharded.consolidations());
        for range in [Range::new(0, 255), Range::new(10, 60), Range::new(200, 220)] {
            assert_eq!(
                sorted(sharded.query(range).ids),
                sorted(plain.query(range).ids)
            );
        }
        // Sharding is layout-only: index sizes agree too.
        assert_eq!(plain.index_stats().entries, sharded.index_stats().entries);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_update_is_rejected() {
        let mut rng = ChaCha20Rng::seed_from_u64(8);
        let mut mgr = manager(4);
        mgr.ingest_batch(vec![UpdateEntry::insert(1, 10_000)], &mut rng);
    }

    use rsse_sse::test_support::TempDir;

    #[test]
    fn persistent_manager_answers_identically_to_in_memory() {
        // Every level on disk: batch builds and consolidation rebuilds both
        // write through the on-disk backend, and query results stay
        // identical to the purely in-memory manager on the same RNG stream.
        let root = TempDir::new("persist-eq");
        let mut rng_a = ChaCha20Rng::seed_from_u64(12);
        let mut rng_b = ChaCha20Rng::seed_from_u64(12);
        let mut in_memory = manager(3);
        let mut on_disk = LogManager::new(
            Domain::new(256),
            UpdateConfig {
                consolidation_step: 3,
                shard_bits: 2,
                storage_root: Some(root.path().to_path_buf()),
                cache_budget: None,
                build_budget: None,
                consolidation_mode: ConsolidationMode::default(),
            },
        );
        for b in 0..9u64 {
            let entries: Vec<UpdateEntry> = (0..6u64)
                .map(|i| UpdateEntry::insert(b * 10 + i, (b * 29 + i * 13) % 256))
                .collect();
            in_memory.ingest_batch(entries.clone(), &mut rng_a);
            on_disk.ingest_batch(entries, &mut rng_b);
        }
        assert_eq!(on_disk.consolidations(), in_memory.consolidations());
        for range in [Range::new(0, 255), Range::new(10, 60), Range::new(200, 220)] {
            assert_eq!(
                sorted(on_disk.query(range).ids),
                sorted(in_memory.query(range).ids)
            );
        }
        assert_eq!(
            on_disk.index_stats().entries,
            in_memory.index_stats().entries
        );
    }

    #[test]
    fn consolidation_removes_superseded_instance_directories() {
        let root = TempDir::new("persist-gc");
        let mut rng = ChaCha20Rng::seed_from_u64(13);
        let mut mgr = LogManager::new(
            Domain::new(256),
            UpdateConfig {
                consolidation_step: 2,
                shard_bits: 0,
                storage_root: Some(root.path().to_path_buf()),
                cache_budget: None,
                build_budget: None,
                consolidation_mode: ConsolidationMode::default(),
            },
        );
        mgr.ingest_batch(vec![UpdateEntry::insert(1, 10)], &mut rng);
        // The root holds the instance directory plus the manager.meta
        // manifest committed at the end of the ingest.
        assert_eq!(
            root.subdir_count(),
            2,
            "one persisted instance + the root manifest after one batch"
        );
        mgr.ingest_batch(vec![UpdateEntry::insert(2, 20)], &mut rng);
        // s = 2: the two level-0 instances merged into one level-1 instance;
        // their directories are gone, only the merged one (and the
        // manifest) remains.
        assert_eq!(mgr.active_instances(), 1);
        assert_eq!(
            root.subdir_count(),
            mgr.active_instances() + 1,
            "exactly one directory per active instance + the manifest"
        );
        assert_eq!(sorted(mgr.query(Range::new(0, 255)).ids), vec![1, 2]);
    }

    #[test]
    fn failed_batch_build_leaves_no_partial_directory() {
        // Plant a directory where the first instance's shard FILE must go:
        // the build fails after the manifest is already written, and the
        // half-written instance directory must be cleaned up, not leaked.
        let root = TempDir::new("persist-leak");
        let instance_dir = root.path().join("instance-00000000");
        std::fs::create_dir_all(instance_dir.join("shard-00000.shd")).unwrap();
        let mut rng = ChaCha20Rng::seed_from_u64(15);
        let mut mgr = LogManager::new(
            Domain::new(256),
            UpdateConfig {
                consolidation_step: 2,
                shard_bits: 0,
                storage_root: Some(root.path().to_path_buf()),
                cache_budget: None,
                build_budget: None,
                consolidation_mode: ConsolidationMode::default(),
            },
        );
        let err = mgr
            .try_ingest_batch(vec![UpdateEntry::insert(1, 10)], &mut rng)
            .expect_err("occupied shard path must fail the build");
        assert!(matches!(err, rsse_core::StorageError::Io { .. }));
        assert_eq!(mgr.active_instances(), 0);
        assert_eq!(
            root.subdir_count(),
            0,
            "the partial instance directory must be removed on failure"
        );
    }

    #[test]
    fn try_ingest_surfaces_storage_errors_without_losing_state() {
        // Point the storage root somewhere unwritable: a path whose parent
        // is a regular file. The failed ingest must leave the manager empty
        // and report a typed Io error instead of panicking.
        let root = TempDir::new("persist-err");
        let file_path = root.path().join("not-a-dir");
        std::fs::write(&file_path, b"occupied").unwrap();
        let mut rng = ChaCha20Rng::seed_from_u64(14);
        let mut mgr = LogManager::new(
            Domain::new(256),
            UpdateConfig {
                consolidation_step: 2,
                shard_bits: 0,
                storage_root: Some(file_path.join("sub")),
                cache_budget: None,
                build_budget: None,
                consolidation_mode: ConsolidationMode::default(),
            },
        );
        let err = mgr
            .try_ingest_batch(vec![UpdateEntry::insert(1, 10)], &mut rng)
            .expect_err("unwritable root must fail");
        assert!(matches!(err, rsse_core::StorageError::Io { .. }));
        assert_eq!(mgr.active_instances(), 0);
        assert_eq!(mgr.batches_ingested(), 0);
        assert!(mgr.query(Range::new(0, 255)).is_empty());
    }
}
