//! Per-shard circuit breakers: a shard that keeps failing stops being
//! probed at all, so one dead disk degrades the queries that need it into
//! fast typed failures instead of burning every query's retry budget.
//!
//! Classic three-state machine, tracked independently per shard:
//!
//! ```text
//!            consecutive failures >= threshold
//!   Closed ────────────────────────────────────▶ Open
//!     ▲                                            │ cooldown elapsed
//!     │ trial probe succeeds                       ▼
//!     └──────────────────────────────────────── HalfOpen
//!                    trial probe fails: back to Open (cooldown restarts)
//! ```
//!
//! While `Open` (and while a `HalfOpen` trial is in flight) every other
//! probe of the shard is refused without touching storage. All transitions
//! take the caller's [`Clock`](crate::clock::Clock) reading as an argument,
//! so breaker timing is exactly testable against a virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Circuit-breaker tuning.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive probe failures of one shard that open its breaker.
    pub failure_threshold: u32,
    /// How long an open breaker refuses probes before letting one trial
    /// probe through.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// A shard breaker's externally visible state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: probes proceed.
    Closed,
    /// Tripped: probes fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one trial probe is deciding the shard's fate.
    HalfOpen,
}

/// Internal per-shard state.
#[derive(Debug)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { since: Duration },
    HalfOpen { since: Duration },
}

/// The admission verdict for one probe.
#[derive(Debug, PartialEq, Eq)]
pub enum Admit {
    /// Breaker closed: probe normally.
    Proceed,
    /// Breaker half-open: this probe is the trial — its outcome closes or
    /// reopens the breaker.
    Trial,
    /// Breaker open (or trial in flight): fail fast, don't touch storage.
    FailFast {
        /// How long the breaker has been open.
        open_for: Duration,
    },
}

/// Health tracking for every shard of one index: breaker state per shard
/// plus aggregate transition counters.
#[derive(Debug)]
pub struct ShardHealth {
    config: BreakerConfig,
    states: Vec<Mutex<State>>,
    opened: AtomicU64,
    reclosed: AtomicU64,
    trials: AtomicU64,
    fail_fast: AtomicU64,
}

impl ShardHealth {
    /// Health tracking for `shards` shards, all starting closed.
    pub fn new(shards: usize, config: BreakerConfig) -> Self {
        Self {
            config,
            states: (0..shards.max(1))
                .map(|_| {
                    Mutex::new(State::Closed {
                        consecutive_failures: 0,
                    })
                })
                .collect(),
            opened: AtomicU64::new(0),
            reclosed: AtomicU64::new(0),
            trials: AtomicU64::new(0),
            fail_fast: AtomicU64::new(0),
        }
    }

    fn state(&self, shard: u32) -> &Mutex<State> {
        &self.states[shard as usize % self.states.len()]
    }

    /// Decides whether a probe of `shard` may proceed at time `now`.
    pub fn admit(&self, shard: u32, now: Duration) -> Admit {
        let mut state = self.state(shard).lock().expect("breaker lock");
        match *state {
            State::Closed { .. } => Admit::Proceed,
            State::Open { since } => {
                if now.saturating_sub(since) >= self.config.cooldown {
                    *state = State::HalfOpen { since };
                    self.trials.fetch_add(1, Ordering::Relaxed);
                    Admit::Trial
                } else {
                    self.fail_fast.fetch_add(1, Ordering::Relaxed);
                    Admit::FailFast {
                        open_for: now.saturating_sub(since),
                    }
                }
            }
            State::HalfOpen { since } => {
                // A trial is already in flight; everyone else fails fast.
                self.fail_fast.fetch_add(1, Ordering::Relaxed);
                Admit::FailFast {
                    open_for: now.saturating_sub(since),
                }
            }
        }
    }

    /// Records a successful probe of `shard`: resets the failure streak,
    /// and a successful trial re-closes the breaker.
    pub fn record_success(&self, shard: u32) {
        let mut state = self.state(shard).lock().expect("breaker lock");
        match *state {
            State::Closed { .. } => {
                *state = State::Closed {
                    consecutive_failures: 0,
                }
            }
            State::HalfOpen { .. } => {
                self.reclosed.fetch_add(1, Ordering::Relaxed);
                *state = State::Closed {
                    consecutive_failures: 0,
                };
            }
            // A stale success racing with an open breaker: leave the
            // breaker to its cooldown-and-trial protocol.
            State::Open { .. } => {}
        }
    }

    /// Records a failed probe of `shard` at time `now`: extends the
    /// failure streak (opening the breaker at the threshold), and a failed
    /// trial reopens it with a fresh cooldown.
    pub fn record_failure(&self, shard: u32, now: Duration) {
        let mut state = self.state(shard).lock().expect("breaker lock");
        match *state {
            State::Closed {
                consecutive_failures,
            } => {
                let streak = consecutive_failures + 1;
                if streak >= self.config.failure_threshold {
                    self.opened.fetch_add(1, Ordering::Relaxed);
                    *state = State::Open { since: now };
                } else {
                    *state = State::Closed {
                        consecutive_failures: streak,
                    };
                }
            }
            State::HalfOpen { .. } => {
                self.opened.fetch_add(1, Ordering::Relaxed);
                *state = State::Open { since: now };
            }
            State::Open { .. } => {}
        }
    }

    /// The breaker state of `shard`.
    pub fn state_of(&self, shard: u32) -> BreakerState {
        match *self.state(shard).lock().expect("breaker lock") {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Total open transitions (including trial-failure reopens).
    pub fn opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Total half-open trials admitted.
    pub fn trials(&self) -> u64 {
        self.trials.load(Ordering::Relaxed)
    }

    /// Total successful trials that re-closed a breaker.
    pub fn reclosed(&self) -> u64 {
        self.reclosed.load(Ordering::Relaxed)
    }

    /// Total probes refused without touching storage.
    pub fn fail_fast(&self) -> u64 {
        self.fail_fast.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn opens_at_threshold_and_fails_fast_until_cooldown() {
        let health = ShardHealth::new(
            4,
            BreakerConfig {
                failure_threshold: 3,
                cooldown: ms(100),
            },
        );
        for _ in 0..2 {
            assert_eq!(health.admit(1, ms(0)), Admit::Proceed);
            health.record_failure(1, ms(0));
        }
        assert_eq!(health.state_of(1), BreakerState::Closed);
        health.record_failure(1, ms(10));
        assert_eq!(health.state_of(1), BreakerState::Open);
        assert_eq!(health.opened(), 1);
        assert_eq!(
            health.admit(1, ms(50)),
            Admit::FailFast { open_for: ms(40) }
        );
        // Other shards stay healthy.
        assert_eq!(health.admit(0, ms(50)), Admit::Proceed);
        assert_eq!(health.fail_fast(), 1);
    }

    #[test]
    fn half_open_trial_recloses_on_success() {
        let health = ShardHealth::new(
            2,
            BreakerConfig {
                failure_threshold: 1,
                cooldown: ms(100),
            },
        );
        health.record_failure(0, ms(0));
        assert_eq!(health.state_of(0), BreakerState::Open);
        assert_eq!(health.admit(0, ms(100)), Admit::Trial);
        assert_eq!(health.state_of(0), BreakerState::HalfOpen);
        // Concurrent probes during the trial still fail fast.
        assert!(matches!(health.admit(0, ms(101)), Admit::FailFast { .. }));
        health.record_success(0);
        assert_eq!(health.state_of(0), BreakerState::Closed);
        assert_eq!(health.reclosed(), 1);
        assert_eq!(health.admit(0, ms(102)), Admit::Proceed);
    }

    #[test]
    fn failed_trial_reopens_with_fresh_cooldown() {
        let health = ShardHealth::new(
            2,
            BreakerConfig {
                failure_threshold: 1,
                cooldown: ms(100),
            },
        );
        health.record_failure(0, ms(0));
        assert_eq!(health.admit(0, ms(120)), Admit::Trial);
        health.record_failure(0, ms(120));
        assert_eq!(health.state_of(0), BreakerState::Open);
        assert_eq!(health.opened(), 2);
        // Cooldown restarts from the failed trial, not the original open.
        assert!(matches!(health.admit(0, ms(150)), Admit::FailFast { .. }));
        assert_eq!(health.admit(0, ms(220)), Admit::Trial);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let health = ShardHealth::new(
            1,
            BreakerConfig {
                failure_threshold: 3,
                cooldown: ms(100),
            },
        );
        for round in 0..10 {
            health.record_failure(0, ms(round));
            health.record_failure(0, ms(round));
            health.record_success(0);
        }
        assert_eq!(
            health.state_of(0),
            BreakerState::Closed,
            "interleaved successes must keep the breaker closed"
        );
        assert_eq!(health.opened(), 0);
    }
}
