//! Owner-state persistence for the update manager.
//!
//! The durable footprint of an [`UpdateManager`](crate::UpdateManager) is:
//!
//! * one **`manager.meta`** manifest at the storage root — public
//!   bookkeeping (scheme kind and parameters, counters, the level table
//!   with per-instance sequence numbers and operation counts), serialized
//!   by [`rsse_sse::storage`]'s `ManagerManifest` codec;
//! * one **`owner.meta`** sidecar per instance directory — the instance's
//!   identity plus an encrypted, authenticated payload holding the
//!   owner's secrets for that instance: the 32-byte **build seed** (from
//!   which the instance's whole key material re-derives) and the
//!   plaintext **update log** (the entries the instance indexes, needed
//!   for result refinement and future consolidations).
//!
//! This module implements the payload cryptography and codec. The payload
//! is encrypted with the workspace [`StreamCipher`] under a key derived
//! from the owner's master key and the instance's build number, then
//! authenticated encrypt-then-MAC with a PRF tag under an independently
//! derived key. A wrong master key, a bit flip, or a sidecar transplanted
//! from another instance all fail the tag check and surface as typed
//! [`StorageError`]s — recovery never acts on unauthenticated owner state.

use crate::batch::{UpdateEntry, UpdateOp};
use rsse_core::{Record, StorageError};
use rsse_crypto::{cipher::NONCE_LEN, Key, KeyChain, Prf, StreamCipher, KEY_LEN};
use std::path::Path;

/// Length of the per-instance build seed (a full ChaCha20 seed).
pub const SEED_LEN: usize = 32;

/// Bytes per serialized update entry: id + value + op tag.
const ENTRY_LEN: usize = 17;

/// Bytes per serialized structural entry: id + value + op tag + part index.
const STRUCTURAL_ENTRY_LEN: usize = 21;

/// The authentication tag is a full PRF output.
const TAG_LEN: usize = KEY_LEN;

/// Payload-kind tag of a plain (single-seed) instance.
const KIND_PLAIN: u8 = 0;

/// Payload-kind tag of a structurally merged (multi-part) instance.
const KIND_STRUCTURAL: u8 = 1;

/// The decrypted owner secrets of one instance, in either of the two
/// payload forms the kind byte selects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum OwnerPayload {
    /// A batch build or rebuild consolidation: one build seed replays the
    /// whole key material, and the update log is the entries the instance
    /// indexes.
    Plain {
        /// The instance's build seed.
        seed: [u8; SEED_LEN],
        /// The instance's update log.
        entries: Vec<UpdateEntry>,
    },
    /// A structural consolidation: one seed per flattened input part
    /// (each replays that part's client keys), and a **compacted** update
    /// log — the deduped latest-per-id surviving entries, each tagged with
    /// the part whose dictionary holds its authoritative copy. Raw update
    /// history is not retained, so the sidecar's size is bounded by the
    /// live-id count rather than the update count.
    Structural {
        /// One build seed per flattened part, in part order.
        seeds: Vec<[u8; SEED_LEN]>,
        /// Compacted `(entry, part index)` log, at most one entry per id.
        entries: Vec<(UpdateEntry, u32)>,
    },
}

/// Derives the payload encryption key for one instance.
fn payload_cipher(chain: &KeyChain, build_id: u64) -> StreamCipher {
    StreamCipher::new(&chain.derive_indexed(b"owner-meta-enc", build_id))
}

/// Derives the payload MAC for one instance.
fn payload_mac(chain: &KeyChain, build_id: u64) -> Prf {
    Prf::new(&chain.derive_indexed(b"owner-meta-mac", build_id))
}

/// Encodes one update operation as its one-byte wire tag.
fn op_tag(op: UpdateOp) -> u8 {
    match op {
        UpdateOp::Insert => 0,
        UpdateOp::Modify => 1,
        UpdateOp::Delete => 2,
    }
}

/// Encrypts and authenticates a serialized payload plaintext.
///
/// Keys are unique per `(master key, build id)` pair and the payload is
/// written exactly once per instance, so a fixed all-zero nonce is safe
/// and keeps the output deterministic.
fn seal(chain: &KeyChain, build_id: u64, plain: &[u8]) -> Vec<u8> {
    let mut sealed = payload_cipher(chain, build_id).encrypt_with_nonce(&[0u8; NONCE_LEN], plain);
    let tag = payload_mac(chain, build_id).eval(&sealed);
    sealed.extend_from_slice(&tag);
    sealed
}

/// Serializes, encrypts, and authenticates a plain instance's owner
/// secrets (`seed` + update log) into the opaque `owner.meta` payload
/// (kind byte `0`).
pub(crate) fn seal_plain_payload(
    chain: &KeyChain,
    build_id: u64,
    seed: &[u8; SEED_LEN],
    entries: &[UpdateEntry],
) -> Vec<u8> {
    let mut plain = Vec::with_capacity(1 + SEED_LEN + 8 + entries.len() * ENTRY_LEN);
    plain.push(KIND_PLAIN);
    plain.extend_from_slice(seed);
    plain.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for entry in entries {
        plain.extend_from_slice(&entry.record.id.to_le_bytes());
        plain.extend_from_slice(&entry.record.value.to_le_bytes());
        plain.push(op_tag(entry.op));
    }
    seal(chain, build_id, &plain)
}

/// Serializes, encrypts, and authenticates a structurally merged
/// instance's owner secrets (per-part seeds + compacted log) into the
/// opaque `owner.meta` payload (kind byte `1`).
///
/// `entries` must already be compacted — at most one entry per id, each
/// tagged with the flattened part index holding its authoritative copy —
/// which is what bounds the sidecar by live ids instead of raw history.
pub(crate) fn seal_structural_payload(
    chain: &KeyChain,
    build_id: u64,
    seeds: &[[u8; SEED_LEN]],
    entries: &[(UpdateEntry, u32)],
) -> Vec<u8> {
    let mut plain = Vec::with_capacity(
        1 + 4 + seeds.len() * SEED_LEN + 8 + entries.len() * STRUCTURAL_ENTRY_LEN,
    );
    plain.push(KIND_STRUCTURAL);
    plain.extend_from_slice(
        &u32::try_from(seeds.len())
            .expect("part count fits u32")
            .to_le_bytes(),
    );
    for seed in seeds {
        plain.extend_from_slice(seed);
    }
    plain.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (entry, part) in entries {
        debug_assert!((*part as usize) < seeds.len(), "part index out of range");
        plain.extend_from_slice(&entry.record.id.to_le_bytes());
        plain.extend_from_slice(&entry.record.value.to_le_bytes());
        plain.push(op_tag(entry.op));
        plain.extend_from_slice(&part.to_le_bytes());
    }
    seal(chain, build_id, &plain)
}

/// Decodes a one-byte wire tag back into an update operation.
fn op_from_tag(tag: u8) -> Option<UpdateOp> {
    match tag {
        0 => Some(UpdateOp::Insert),
        1 => Some(UpdateOp::Modify),
        2 => Some(UpdateOp::Delete),
        _ => None,
    }
}

/// Verifies and decrypts one instance's owner payload back into its
/// plaintext form — plain or structural, as its kind byte records.
///
/// # Errors
///
/// A failed tag check (wrong master key, tampering, or a sidecar copied
/// from a different instance) and every structural inconsistency surface
/// as typed [`StorageError::CorruptDirectory`]s naming `dir`.
pub(crate) fn open_payload(
    chain: &KeyChain,
    build_id: u64,
    dir: &Path,
    payload: &[u8],
) -> Result<OwnerPayload, StorageError> {
    let corrupt = |detail: String| StorageError::CorruptDirectory {
        path: dir.join(rsse_sse::storage::OWNER_META_FILE),
        detail,
    };
    if payload.len() < TAG_LEN + NONCE_LEN {
        return Err(corrupt(format!(
            "owner payload of {} bytes is shorter than nonce + tag",
            payload.len()
        )));
    }
    let (sealed, tag) = payload.split_at(payload.len() - TAG_LEN);
    let expected = payload_mac(chain, build_id).eval(sealed);
    // Not constant-time; the comparison guards the owner's own local state
    // against corruption, not a remote oracle.
    if tag != expected {
        return Err(corrupt(
            "owner payload failed authentication — wrong owner key, tampered \
             sidecar, or a sidecar copied from another instance"
                .to_string(),
        ));
    }
    let plain = payload_cipher(chain, build_id)
        .decrypt(sealed)
        .ok_or_else(|| corrupt("owner payload shorter than its nonce".to_string()))?;
    let (&kind, rest) = plain
        .split_first()
        .ok_or_else(|| corrupt("owner payload plaintext is empty".to_string()))?;
    match kind {
        KIND_PLAIN => open_plain_body(rest, corrupt),
        KIND_STRUCTURAL => open_structural_body(rest, corrupt),
        other => Err(corrupt(format!("unknown owner-payload kind {other}"))),
    }
}

/// Decodes the kind-0 payload body: `seed ‖ count ‖ 17-byte entries`.
fn open_plain_body(
    body: &[u8],
    corrupt: impl Fn(String) -> StorageError,
) -> Result<OwnerPayload, StorageError> {
    if body.len() < SEED_LEN + 8 {
        return Err(corrupt(format!(
            "owner payload plaintext of {} bytes is shorter than seed + count",
            body.len()
        )));
    }
    let mut seed = [0u8; SEED_LEN];
    seed.copy_from_slice(&body[..SEED_LEN]);
    let count = u64::from_le_bytes(body[SEED_LEN..SEED_LEN + 8].try_into().expect("8 bytes"));
    let body = &body[SEED_LEN + 8..];
    if body.len() as u64 != count.saturating_mul(ENTRY_LEN as u64) {
        return Err(corrupt(format!(
            "owner payload claims {count} entries but holds {} body bytes",
            body.len()
        )));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for chunk in body.chunks_exact(ENTRY_LEN) {
        let id = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
        let value = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));
        let op = op_from_tag(chunk[16])
            .ok_or_else(|| corrupt(format!("unknown update-op tag {}", chunk[16])))?;
        entries.push(UpdateEntry {
            record: Record::new(id, value),
            op,
        });
    }
    Ok(OwnerPayload::Plain { seed, entries })
}

/// Decodes the kind-1 payload body:
/// `part_count ‖ seeds ‖ entry_count ‖ 21-byte entries`.
fn open_structural_body(
    body: &[u8],
    corrupt: impl Fn(String) -> StorageError,
) -> Result<OwnerPayload, StorageError> {
    if body.len() < 4 {
        return Err(corrupt(
            "structural owner payload is shorter than its part count".to_string(),
        ));
    }
    let part_count = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
    let body = &body[4..];
    if part_count == 0 {
        return Err(corrupt(
            "structural owner payload with zero parts".to_string(),
        ));
    }
    if body.len() < part_count * SEED_LEN + 8 {
        return Err(corrupt(format!(
            "structural owner payload claims {part_count} parts but is too short for their seeds"
        )));
    }
    let seeds: Vec<[u8; SEED_LEN]> = body[..part_count * SEED_LEN]
        .chunks_exact(SEED_LEN)
        .map(|chunk| {
            let mut seed = [0u8; SEED_LEN];
            seed.copy_from_slice(chunk);
            seed
        })
        .collect();
    let body = &body[part_count * SEED_LEN..];
    let count = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
    let body = &body[8..];
    if body.len() as u64 != count.saturating_mul(STRUCTURAL_ENTRY_LEN as u64) {
        return Err(corrupt(format!(
            "structural owner payload claims {count} entries but holds {} body bytes",
            body.len()
        )));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for chunk in body.chunks_exact(STRUCTURAL_ENTRY_LEN) {
        let id = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
        let value = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));
        let op = op_from_tag(chunk[16])
            .ok_or_else(|| corrupt(format!("unknown update-op tag {}", chunk[16])))?;
        let part = u32::from_le_bytes(chunk[17..21].try_into().expect("4 bytes"));
        if part as usize >= part_count {
            return Err(corrupt(format!(
                "structural owner payload entry names part {part} of {part_count}"
            )));
        }
        entries.push((
            UpdateEntry {
                record: Record::new(id, value),
                op,
            },
            part,
        ));
    }
    Ok(OwnerPayload::Structural { seeds, entries })
}

/// The owner's master key: the single secret from which every durable
/// manager state re-derives — payload encryption and MAC keys per
/// instance. Losing it orphans the storage root (the encrypted indexes
/// stay intact but the owner can no longer interpret them); it should be
/// stored like any other long-term symmetric key.
pub type OwnerKey = Key;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn chain() -> KeyChain {
        KeyChain::new(Key::from_bytes([7u8; KEY_LEN]))
    }

    #[test]
    fn payload_round_trips() {
        let seed = [42u8; SEED_LEN];
        let entries = vec![
            UpdateEntry::insert(1, 10),
            UpdateEntry::modify(2, 20),
            UpdateEntry::delete(3, 30),
        ];
        let sealed = seal_plain_payload(&chain(), 5, &seed, &entries);
        let payload = open_payload(&chain(), 5, Path::new("/x"), &sealed).expect("round trip");
        assert_eq!(payload, OwnerPayload::Plain { seed, entries });
    }

    #[test]
    fn structural_payload_round_trips() {
        let seeds = vec![[1u8; SEED_LEN], [2u8; SEED_LEN], [3u8; SEED_LEN]];
        let entries = vec![
            (UpdateEntry::insert(1, 10), 0u32),
            (UpdateEntry::modify(2, 20), 2),
            (UpdateEntry::delete(3, 30), 1),
        ];
        let sealed = seal_structural_payload(&chain(), 8, &seeds, &entries);
        let payload = open_payload(&chain(), 8, Path::new("/x"), &sealed).expect("round trip");
        assert_eq!(payload, OwnerPayload::Structural { seeds, entries });
    }

    #[test]
    fn structural_payload_rejects_out_of_range_part_and_zero_parts() {
        // A part index past the seed table must be rejected on read even if
        // the payload authenticates (defense against encoder bugs).
        let seeds = vec![[1u8; SEED_LEN]];
        let entries = vec![(UpdateEntry::insert(1, 1), 0u32)];
        let sealed = seal_structural_payload(&chain(), 2, &seeds, &entries);
        // Rewriting bytes would fail the MAC, so exercise the decoder
        // directly through a hand-built body instead.
        let mut body = Vec::new();
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&[1u8; SEED_LEN]);
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(0);
        body.extend_from_slice(&7u32.to_le_bytes()); // part 7 of 1
        assert!(open_structural_body(&body, |detail| {
            StorageError::CorruptDirectory {
                path: Path::new("/x").to_path_buf(),
                detail,
            }
        })
        .is_err());
        let zero_parts = 0u32.to_le_bytes().to_vec();
        assert!(open_structural_body(&zero_parts, |detail| {
            StorageError::CorruptDirectory {
                path: Path::new("/x").to_path_buf(),
                detail,
            }
        })
        .is_err());
        // The untampered sealed payload still opens.
        assert!(open_payload(&chain(), 2, Path::new("/x"), &sealed).is_ok());
    }

    /// Randomized compaction property: for any raw update log, the
    /// compacted structural payload (deduped latest-per-id, tagged with an
    /// arbitrary part) round-trips to exactly the state a full replay of
    /// the raw log reaches, and its sealed size is bounded by the live-id
    /// count — never by the raw log's length.
    #[test]
    fn compacted_payload_replays_like_the_raw_log_and_stays_live_bounded() {
        use rand::Rng;
        use std::collections::BTreeMap;
        for seed in 0..8u64 {
            let mut rng = ChaCha20Rng::seed_from_u64(900 + seed);
            let raw_len = 200 + (seed as usize) * 50;
            let mut raw: Vec<UpdateEntry> = Vec::with_capacity(raw_len);
            for _ in 0..raw_len {
                // A small id space forces heavy per-id churn.
                let id = rng.gen_range(0..24u64);
                let value = rng.gen_range(0..1_000u64);
                raw.push(match rng.gen_range(0..3u32) {
                    0 => UpdateEntry::insert(id, value),
                    1 => UpdateEntry::modify(id, value),
                    _ => UpdateEntry::delete(id, value),
                });
            }
            // Replaying the raw log in order is the reference owner state.
            let mut replayed: BTreeMap<u64, UpdateEntry> = BTreeMap::new();
            for entry in &raw {
                replayed.insert(entry.record.id, *entry);
            }
            // The compaction: latest entry per id, each tagged with some
            // part (the tag is opaque to the codec).
            let seeds = vec![[9u8; SEED_LEN], [11u8; SEED_LEN]];
            let compacted: Vec<(UpdateEntry, u32)> = replayed
                .values()
                .map(|entry| (*entry, (entry.record.id % 2) as u32))
                .collect();
            let sealed = seal_structural_payload(&chain(), seed, &seeds, &compacted);
            let payload =
                open_payload(&chain(), seed, Path::new("/x"), &sealed).expect("round trip");
            let OwnerPayload::Structural { entries, .. } = payload else {
                panic!("kind byte must select the structural form");
            };
            // Replaying the opened payload reaches the raw log's state.
            let mut from_payload: BTreeMap<u64, UpdateEntry> = BTreeMap::new();
            for (entry, _) in &entries {
                from_payload.insert(entry.record.id, *entry);
            }
            assert_eq!(from_payload, replayed, "seed {seed}");
            // Size bound: live ids dictate the size, not the raw length.
            let live = replayed.len() as u64;
            let fixed = 1 + 4 + (seeds.len() as u64) * SEED_LEN as u64 + 8 + TAG_LEN as u64 + 16;
            assert!(
                (sealed.len() as u64) <= fixed + live * STRUCTURAL_ENTRY_LEN as u64,
                "seed {seed}: sealed {} bytes for {live} live ids",
                sealed.len()
            );
            assert!((sealed.len() as u64) < (raw.len() as u64) * ENTRY_LEN as u64 / 2);
        }
    }

    #[test]
    fn wrong_key_fails_authentication() {
        let sealed =
            seal_plain_payload(&chain(), 1, &[1u8; SEED_LEN], &[UpdateEntry::insert(1, 1)]);
        let mut rng = ChaCha20Rng::seed_from_u64(9);
        let other = KeyChain::generate(&mut rng);
        let err = open_payload(&other, 1, Path::new("/x"), &sealed).expect_err("must fail");
        assert!(matches!(err, StorageError::CorruptDirectory { .. }));
    }

    #[test]
    fn wrong_build_id_fails_authentication() {
        // A sidecar transplanted into another instance's directory must not
        // authenticate: the MAC key is bound to the build id.
        let sealed = seal_plain_payload(&chain(), 1, &[1u8; SEED_LEN], &[]);
        assert!(open_payload(&chain(), 2, Path::new("/x"), &sealed).is_err());
    }

    #[test]
    fn bit_flips_fail_authentication() {
        let mut sealed =
            seal_plain_payload(&chain(), 3, &[9u8; SEED_LEN], &[UpdateEntry::insert(4, 4)]);
        for at in [0, sealed.len() / 2, sealed.len() - 1] {
            sealed[at] ^= 1;
            assert!(
                open_payload(&chain(), 3, Path::new("/x"), &sealed).is_err(),
                "flip at {at} must fail"
            );
            sealed[at] ^= 1;
        }
        assert!(open_payload(&chain(), 3, Path::new("/x"), &sealed).is_ok());
    }
}
