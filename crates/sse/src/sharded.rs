//! Label-prefix sharding of the encrypted dictionary.
//!
//! [`ShardedIndex`] splits the flat dictionary of
//! [`EncryptedIndex`] into `2^k` **shards keyed by
//! the top `k` bits of the label**: shard `s` owns every entry whose label
//! prefix is `s`, with its own ciphertext region and bucket directory.
//! Because labels are owner-side PRF outputs (computationally
//! indistinguishable from uniform — see the [`pibas`](crate::pibas) module
//! docs), the prefix partition is automatically balanced, and revealing
//! which shard an entry lives in reveals exactly the label prefix the
//! server could read off the flat dictionary anyway: sharding changes the
//! storage layout, not the leakage profile.
//!
//! What sharding buys:
//!
//! * **Fully parallel BuildIndex assembly.** The single-arena build ends in
//!   one sequential "append every chunk to the arena" pass; the sharded
//!   build replaces it with one *independent* assembly job per shard (after
//!   a cheap index-scatter pass), so the byte-copying and table insertion
//!   fan out across cores with no final single-threaded append.
//! * **Lock-free concurrent reads.** Shards are plain immutable structs
//!   behind `&self`; any number of query threads can probe any shards
//!   simultaneously with no synchronization whatsoever.
//! * **Bounded arenas.** Each shard has its own 4 GiB arena limit, so
//!   `k` shard bits raise the per-index ciphertext capacity `2^k`-fold.
//! * **Probe locality for batched search.** [`IndexLookup::try_get_many`]
//!   groups a probe vector by shard, so consecutive lookups hit the same
//!   (much smaller) table.
//! * **Pluggable residency.** Since PR 3 each shard is a
//!   [`ShardStorage`] backend behind the [`Shard`] enum: the in-memory
//!   arena (byte-identical to the PR 2 layout) or an on-disk
//!   [`FileShard`] serialized during BuildIndex and
//!   served via paged reads — see [`StorageConfig`] and the
//!   [`storage`](crate::storage) module. [`ShardedIndex::save_to_dir`] and
//!   [`ShardedIndex::open_dir`] persist an index across processes.
//!
//! With `k = 0` the in-memory index is a single shard whose arena and table
//! are **byte-identical** to the unsharded [`EncryptedIndex`] build — the
//! property test `unsharded_is_byte_identical_to_plain_arena` pins this, so
//! the sharded type is a strict generalization, not a fork.

use crate::database::SseDatabase;
use crate::pibas::{
    merge_chunks, CipherSpan, EncryptedIndex, IndexLookup, KeywordChunk, Label, SearchToken,
    SseKey, SseScheme,
};
use crate::storage::{
    merge_shard_files, open_shards_from_dir, read_manifest, save_shards_to_dir, shard_file_name,
    write_chunk_shard, write_manifest, BlockCache, CacheStats, FileShard, ShardStorage,
    StorageBackend, StorageConfig, StorageError,
};
use rand::{CryptoRng, RngCore};
use rayon::prelude::*;
use std::fs;
use std::path::Path;
use std::sync::Arc;

/// Maximum supported shard bits (`2^16` shards). Past this point per-shard
/// bookkeeping dominates any conceivable parallelism win.
pub const MAX_SHARD_BITS: u32 = 16;

/// Returns the shard (top `bits` bits of the label, read big-endian) an
/// entry with this label belongs to. `bits == 0` maps everything to shard 0.
pub(crate) fn shard_of_label(label: &Label, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    let prefix = u64::from_be_bytes(label[..8].try_into().expect("labels are 16 bytes"));
    (prefix >> (64 - bits)) as usize
}

/// One shard of the dictionary behind a concrete [`ShardStorage`] backend.
///
/// The query algorithms never see this enum (they are generic over
/// [`IndexLookup`] on the whole index); it exists so one [`ShardedIndex`]
/// type can hold either representation without infecting every server
/// struct with a type parameter.
#[derive(Clone, Debug)]
pub enum Shard {
    /// The in-memory ciphertext arena (PR 2 layout, byte-identical).
    Memory(EncryptedIndex),
    /// A disk-resident shard served via paged reads.
    File(FileShard),
    /// A fault-injection wrapper around another shard (test support; see
    /// the [`fault`](crate::fault) module).
    Fault(FaultShard),
}

impl Shard {
    /// The in-memory backend of this shard, if that is what it is.
    pub fn as_memory(&self) -> Option<&EncryptedIndex> {
        match self {
            Shard::Memory(index) => Some(index),
            Shard::File(_) | Shard::Fault(_) => None,
        }
    }

    /// The file backend of this shard, if that is what it is.
    pub fn as_file(&self) -> Option<&FileShard> {
        match self {
            Shard::Memory(_) | Shard::Fault(_) => None,
            Shard::File(shard) => Some(shard),
        }
    }

    /// The shard underneath any fault-injection wrappers.
    pub(crate) fn unwrap_faults(&self) -> &Shard {
        let mut shard = self;
        while let Shard::Fault(fault) = shard {
            shard = &fault.inner;
        }
        shard
    }

    /// Returns this shard's stored ciphertexts (copied out; used by
    /// leakage-oriented tests and tooling).
    pub fn ciphertexts(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        match self.unwrap_faults() {
            Shard::Memory(index) => Ok(index.ciphertexts().map(<[u8]>::to_vec).collect()),
            Shard::File(shard) => shard.ciphertexts(),
            Shard::Fault(_) => unreachable!("unwrap_faults removes fault wrappers"),
        }
    }
}

impl ShardStorage for Shard {
    fn try_get(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, StorageError> {
        match self {
            Shard::Memory(index) => Ok(index.get(label).map(CipherSpan::borrowed)),
            Shard::File(shard) => ShardStorage::try_get(shard, label),
            Shard::Fault(fault) => ShardStorage::try_get(fault, label),
        }
    }

    fn len(&self) -> usize {
        match self {
            Shard::Memory(index) => index.len(),
            Shard::File(shard) => ShardStorage::len(shard),
            Shard::Fault(fault) => ShardStorage::len(fault),
        }
    }

    fn storage_bytes(&self) -> usize {
        match self {
            Shard::Memory(index) => index.storage_bytes(),
            Shard::File(shard) => ShardStorage::storage_bytes(shard),
            Shard::Fault(fault) => ShardStorage::storage_bytes(fault),
        }
    }
}

/// A [`ShardStorage`] wrapper that routes every probe through a shared
/// [`FaultInjector`](crate::fault::FaultInjector) before delegating to the
/// wrapped shard — failing probes surface as typed [`StorageError::Io`]s,
/// exactly what a real failed block read produces.
///
/// The injector is shared across every shard wrapped in one
/// [`FaultInjectable`](crate::fault::FaultInjectable) injection call (and
/// across clones), so probe counting is global: "the N-th block read of the
/// index fails" holds regardless of which shard the N-th probe lands in.
/// Used by the fault-injection tests and the chaos harness; a production
/// index never contains fault wrappers.
#[derive(Clone, Debug)]
pub struct FaultShard {
    inner: Box<Shard>,
    /// The wrapped shard's id (label-prefix value) — the unit of per-shard
    /// fault targeting.
    shard_id: u32,
    /// The shared fault-decision state (see the [`fault`](crate::fault)
    /// module).
    injector: Arc<crate::fault::FaultInjector>,
}

impl FaultShard {
    /// The synthetic path reported by injected failures.
    pub const FAULT_PATH: &'static str = "<injected-fault>";
}

impl ShardStorage for FaultShard {
    fn try_get(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, StorageError> {
        self.injector.decide(self.shard_id)?;
        ShardStorage::try_get(&*self.inner, label)
    }

    fn len(&self) -> usize {
        ShardStorage::len(&*self.inner)
    }

    fn storage_bytes(&self) -> usize {
        ShardStorage::storage_bytes(&*self.inner)
    }
}

/// An encrypted dictionary split into `2^k` label-prefix-keyed shards, each
/// an independent ciphertext region plus bucket directory behind a
/// [`ShardStorage`] backend.
///
/// Searched with the exact same tokens and algorithms as the flat
/// [`EncryptedIndex`] — every search entry point is generic over
/// [`IndexLookup`] — and guaranteed to hold the same `(label, ciphertext)`
/// pairs for the same build inputs, whatever `k` or the backend is.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rsse_sse::{SseDatabase, SseScheme};
///
/// let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(1);
/// let key = SseScheme::setup(&mut rng);
/// let mut db = SseDatabase::new();
/// for i in 0..100u64 {
///     db.add(b"w".to_vec(), i.to_le_bytes().to_vec());
/// }
///
/// // 2^4 = 16 shards; entries distribute by label prefix.
/// let index = SseScheme::build_index_sharded(&key, &db, 4, &mut rng);
/// assert_eq!(index.shard_count(), 16);
/// assert_eq!(index.len(), 100);
///
/// // Same search API as the unsharded index.
/// let token = SseScheme::trapdoor(&key, b"w");
/// assert_eq!(SseScheme::search(&index, &token).unwrap().len(), 100);
/// ```
///
/// Persistence: an index can be saved to (or built straight into) a
/// directory and cold-opened by a later process:
///
/// ```
/// use rand::SeedableRng;
/// use rsse_sse::{ShardedIndex, SseDatabase, SseScheme};
///
/// let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(2);
/// let key = SseScheme::setup(&mut rng);
/// let mut db = SseDatabase::new();
/// db.add(b"w".to_vec(), b"payload".to_vec());
/// let index = SseScheme::build_index_sharded(&key, &db, 2, &mut rng);
///
/// let dir = std::env::temp_dir().join(format!("rsse-doc-{}", std::process::id()));
/// index.save_to_dir(&dir).unwrap();
/// drop(index);
///
/// let reopened = ShardedIndex::open_dir(&dir).unwrap();
/// let token = SseScheme::trapdoor(&key, b"w");
/// assert_eq!(
///     SseScheme::search(&reopened, &token).unwrap(),
///     vec![b"payload".to_vec()]
/// );
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct ShardedIndex {
    /// Number of label-prefix bits selecting the shard (`k`).
    bits: u32,
    /// The `2^k` shards, indexed by label prefix.
    shards: Vec<Shard>,
}

impl Default for ShardedIndex {
    /// An empty unsharded (`k = 0`) in-memory index.
    fn default() -> Self {
        Self {
            bits: 0,
            shards: vec![Shard::Memory(EncryptedIndex::default())],
        }
    }
}

impl ShardedIndex {
    /// Assembles an index from already-built shards (the external-memory
    /// build path constructs its shards incrementally instead of through
    /// [`shard_chunks`]). `shards.len()` must be `2^bits`.
    pub(crate) fn from_parts(bits: u32, shards: Vec<Shard>) -> Self {
        debug_assert_eq!(shards.len(), 1usize << bits);
        Self { bits, shards }
    }

    /// The number of label-prefix bits selecting a shard (`k`).
    pub fn shard_bits(&self) -> u32 {
        self.bits
    }

    /// The number of shards (`2^k`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, indexed by label prefix.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Whether the shards are served from disk (paged reads) rather than
    /// from in-memory arenas.
    pub fn is_file_backed(&self) -> bool {
        self.shards
            .iter()
            .any(|s| matches!(s.unwrap_faults(), Shard::File(_)))
    }

    /// The shard an entry with this label would live in.
    pub fn shard_of(&self, label: &Label) -> usize {
        shard_of_label(label, self.bits)
    }

    /// Total number of entries across all shards (the index-size leakage,
    /// identical to the unsharded build's).
    pub fn len(&self) -> usize {
        self.shards.iter().map(ShardStorage::len).sum()
    }

    /// Whether no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(ShardStorage::is_empty)
    }

    /// Approximate server-side storage footprint in bytes
    /// (labels + encrypted payloads, summed over shards) — independent of
    /// where the bytes live.
    pub fn storage_bytes(&self) -> usize {
        self.shards.iter().map(ShardStorage::storage_bytes).sum()
    }

    /// Bytes currently resident in memory: in-memory shards count in full,
    /// file-backed shards count their bucket directory plus the region
    /// blocks faulted in so far (bounded by the cache budget when one is
    /// set). This is the number the spill-to-disk backend exists to bound.
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| match shard.unwrap_faults() {
                Shard::Memory(index) => index.storage_bytes(),
                Shard::File(file) => {
                    ShardStorage::len(file) * crate::pibas::LABEL_LEN + file.resident_bytes()
                }
                Shard::Fault(_) => unreachable!("unwrap_faults removes fault wrappers"),
            })
            .sum()
    }

    /// Number of paged block reads that have failed across all file-backed
    /// shards since open (always 0 for in-memory shards). Failed reads
    /// surface as typed [`StorageError`]s from the probing search; this is
    /// the aggregate operator-side counter of how often that happened.
    pub fn read_errors(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| match shard.unwrap_faults() {
                Shard::File(file) => file.read_errors(),
                _ => 0,
            })
            .sum()
    }

    /// Aggregated block-cache counters of all file-backed shards: probe
    /// hits and misses, evictions performed to stay inside the
    /// [`StorageConfig::cache_budget`], and the ciphertext-block bytes
    /// currently resident (always 0 hits/misses/resident for a fully
    /// in-memory index, whose arenas bypass the block layer).
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        let mut caches: Vec<*const BlockCache> = Vec::new();
        for shard in &self.shards {
            if let Shard::File(file) = shard.unwrap_faults() {
                let shard_stats = file.cache_stats();
                stats.hits += shard_stats.hits;
                stats.misses += shard_stats.misses;
                match file.block_cache() {
                    Some(cache) => {
                        let ptr = Arc::as_ptr(cache);
                        if !caches.contains(&ptr) {
                            caches.push(ptr);
                            stats.evictions += cache.evictions();
                            stats.resident_bytes += cache.resident_bytes();
                        }
                    }
                    None => stats.resident_bytes += shard_stats.resident_bytes,
                }
            }
        }
        stats
    }

    /// Looks up the ciphertext stored under `label` in its shard.
    ///
    /// `Ok(None)` means the label is absent; `Err` means the storage
    /// backend failed to resolve the probe (never happens for in-memory
    /// shards).
    pub fn try_get(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, StorageError> {
        ShardStorage::try_get(&self.shards[self.shard_of(label)], label)
    }

    /// Returns all stored ciphertexts (shard order, copied out; used by
    /// leakage-oriented tests).
    pub fn ciphertexts(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.ciphertexts()?);
        }
        Ok(out)
    }

    /// Wraps every shard in a [`FaultShard`] consulting the given shared
    /// [`FaultInjector`](crate::fault::FaultInjector) — the primitive
    /// underneath the [`FaultInjectable`](crate::fault::FaultInjectable)
    /// trait, which is the surface tests should use. Test support; a
    /// production index never contains fault wrappers.
    pub fn attach_fault_injector(&mut self, injector: &Arc<crate::fault::FaultInjector>) {
        for (shard_id, shard) in self.shards.iter_mut().enumerate() {
            let inner = Box::new(shard.clone());
            *shard = Shard::Fault(FaultShard {
                inner,
                shard_id: shard_id as u32,
                injector: Arc::clone(injector),
            });
        }
    }

    /// Serializes every shard (plus an `index.meta` manifest) into `dir`,
    /// creating it if needed. Works for both backends; shard files are
    /// written in parallel and the output is deterministic, so saving the
    /// same index twice produces byte-identical directories.
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<(), StorageError> {
        save_shards_to_dir(dir.as_ref(), self.bits, &self.shards)
    }

    /// Cold-opens an index previously written by [`save_to_dir`] (or built
    /// straight to disk through a [`StorageConfig::on_disk`] build): loads
    /// each shard's bucket directory, leaves the ciphertext regions on
    /// disk, and serves them through paged reads.
    ///
    /// # Errors
    ///
    /// Every malformed input — missing or truncated files, wrong magic,
    /// unsupported versions, corrupt label directories — surfaces as a
    /// typed [`StorageError`]; nothing in the open path panics.
    ///
    /// [`save_to_dir`]: Self::save_to_dir
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::open_dir_with_budget(dir, None)
    }

    /// Like [`open_dir`](Self::open_dir), but bounds the resident
    /// ciphertext blocks of the opened index at `cache_budget` bytes
    /// (`None` = unlimited): all shards share one clock block cache that
    /// evicts cold blocks once the budget is reached, so a long-running
    /// server's residency tracks its working set rather than everything it
    /// ever touched. Query results are identical for every budget; see
    /// [`cache_stats`](Self::cache_stats) for the hit/miss/eviction
    /// counters.
    pub fn open_dir_with_budget(
        dir: impl AsRef<Path>,
        cache_budget: Option<usize>,
    ) -> Result<Self, StorageError> {
        let (bits, shards) = open_shards_from_dir(dir.as_ref(), cache_budget)?;
        Ok(Self {
            bits,
            shards: shards.into_iter().map(Shard::File).collect(),
        })
    }

    /// Opens a saved index directory fully **memory-resident**: every
    /// shard's ciphertext region is loaded into an in-memory arena whose
    /// bytes, entry order and offset table are exactly what the shard file
    /// serializes — so a resident open, a paged open, and the index that
    /// was originally saved all resolve every label to identical bytes.
    ///
    /// This is the restore path for hosts where the index fits in RAM (the
    /// update manager's `storage_root: None` reopen uses it for
    /// structurally merged instances, whose physical layout is not
    /// reproducible from a rebuild).
    pub fn open_dir_resident(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let (bits, shards) = open_shards_from_dir(dir.as_ref(), None)?;
        let loaded: Vec<Result<Shard, StorageError>> = shards
            .into_par_iter()
            .map(|shard| shard.to_memory().map(Shard::Memory))
            .collect();
        let shards = loaded
            .into_iter()
            .collect::<Result<Vec<Shard>, StorageError>>()?;
        Ok(Self { bits, shards })
    }

    /// Structurally merges `inputs` into one in-memory index: per shard,
    /// the inputs' ciphertext arenas are concatenated **verbatim** in input
    /// order and the label table is re-emitted over the rebased offsets.
    /// No ciphertext is decrypted or re-encrypted; the merged index stores
    /// exactly the union of the inputs' `(label, ciphertext)` pairs.
    ///
    /// # Errors
    ///
    /// [`StorageError::Unsupported`] — the caller's fall-back-to-rebuild
    /// signal — if the inputs disagree on shard bits, any input shard is
    /// not memory-resident, a merged arena would exceed the 4 GiB bound,
    /// or two inputs store the same label (a cross-part PRF collision).
    pub fn merge_in_memory(inputs: &[&ShardedIndex]) -> Result<Self, StorageError> {
        let bits = match inputs.first() {
            Some(first) => first.bits,
            None => return Err(StorageError::Unsupported("structural merge of zero inputs")),
        };
        if inputs.iter().any(|index| index.bits != bits) {
            return Err(StorageError::Unsupported(
                "structural merge across differing shard layouts",
            ));
        }
        let shards = (0..1usize << bits)
            .map(|s| {
                let parts = inputs
                    .iter()
                    .map(|index| {
                        index.shards[s].as_memory().ok_or(StorageError::Unsupported(
                            "structural in-memory merge of a non-resident shard",
                        ))
                    })
                    .collect::<Result<Vec<_>, StorageError>>()?;
                let entries: usize = parts.iter().map(|part| part.len()).sum();
                let bytes: u64 = parts.iter().map(|part| part.arena_raw().len() as u64).sum();
                if bytes > u64::from(u32::MAX) {
                    return Err(StorageError::Unsupported(
                        "structural shard merge past the 4 GiB region bound",
                    ));
                }
                let mut merged = EncryptedIndex::with_capacity(entries, bytes as usize);
                for part in parts {
                    for (label, offset, len) in part.entries_by_offset() {
                        if merged.get(&label).is_some() {
                            return Err(StorageError::Unsupported(
                                "structural shard merge with a cross-part label collision",
                            ));
                        }
                        merged.append_entry(
                            label,
                            &part.arena_raw()[offset as usize..(offset as usize + len as usize)],
                        );
                    }
                }
                Ok(Shard::Memory(merged))
            })
            .collect::<Result<Vec<Shard>, StorageError>>()?;
        Ok(Self { bits, shards })
    }

    /// Structurally merges saved index directories into a new index
    /// directory at `out`: per shard, the inputs' shard files are merged
    /// by `merge_shard_files` — ciphertext regions concatenated verbatim
    /// in input order, directory re-emitted with rebased offsets — and the
    /// merged files are opened as paged [`FileShard`]s (sharing one
    /// budgeted block cache when `cache_budget` is set).
    ///
    /// The output directory follows the standard commit discipline of the
    /// streamed build: `index.meta` is written first, shard files after
    /// (each tmp+renamed), and any failure sweeps the partial output
    /// before the error propagates. The caller owns the durable commit
    /// record (the update manager writes its `owner.meta` sidecar last).
    ///
    /// # Errors
    ///
    /// [`StorageError::Unsupported`] if the inputs disagree on shard bits,
    /// a merged shard would exceed the 4 GiB region bound, or two inputs
    /// store the same label — the caller's signal to fall back to a
    /// rebuild. All other failures surface as the usual typed errors.
    pub fn merge_dirs(
        inputs: &[&Path],
        out: &Path,
        cache_budget: Option<usize>,
    ) -> Result<Self, StorageError> {
        let opened = inputs
            .iter()
            .map(|dir| open_shards_from_dir(dir, None))
            .collect::<Result<Vec<(u32, Vec<FileShard>)>, StorageError>>()?;
        let bits = match opened.first() {
            Some(&(bits, _)) => bits,
            None => return Err(StorageError::Unsupported("structural merge of zero inputs")),
        };
        if opened.iter().any(|&(b, _)| b != bits) {
            return Err(StorageError::Unsupported(
                "structural merge across differing shard layouts",
            ));
        }
        fs::create_dir_all(out).map_err(|e| StorageError::Io {
            path: out.to_path_buf(),
            error: e,
        })?;
        let built = (|| {
            write_manifest(out, bits)?;
            let cache = cache_budget.map(|budget| Arc::new(BlockCache::new(budget)));
            let results: Vec<Result<Shard, StorageError>> = (0..1usize << bits)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|s| {
                    let parts: Vec<FileShard> =
                        opened.iter().map(|(_, shards)| shards[s].clone()).collect();
                    let path = out.join(shard_file_name(s));
                    merge_shard_files(&parts, &path)?;
                    match &cache {
                        Some(cache) => FileShard::open_cached(&path, s as u32, Arc::clone(cache))
                            .map(Shard::File),
                        None => FileShard::open(&path).map(Shard::File),
                    }
                })
                .collect();
            let shards = results
                .into_iter()
                .collect::<Result<Vec<Shard>, StorageError>>()?;
            Ok(ShardedIndex { bits, shards })
        })();
        if built.is_err() {
            crate::storage::cleanup_partial_index(out, 1usize << bits);
        }
        built
    }

    /// Validates that `dir` holds a saved index with this layout's shard
    /// bits (cheap manifest read — used by merge planning to reject
    /// mismatched inputs before any shard file is touched).
    pub fn dir_shard_bits(dir: impl AsRef<Path>) -> Result<u32, StorageError> {
        read_manifest(dir.as_ref())
    }
}

impl IndexLookup for ShardedIndex {
    type Error = StorageError;

    fn try_get(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, StorageError> {
        ShardedIndex::try_get(self, label)
    }

    /// Shard-grouped probe resolution: large probe vectors are visited in
    /// shard order so consecutive lookups hit the same (small) table, then
    /// results are written back in probe order. Small rounds — where the
    /// grouping bookkeeping would cost more than the locality buys — probe
    /// directly in input order. The first failed probe aborts the batch
    /// with its typed error.
    fn try_get_many<'a>(
        &'a self,
        labels: &[Label],
        out: &mut Vec<Option<CipherSpan<'a>>>,
    ) -> Result<(), StorageError> {
        /// Probe counts below this skip the sort-by-shard pass.
        const GROUP_THRESHOLD: usize = 64;

        out.clear();
        if self.bits == 0 || labels.len() < GROUP_THRESHOLD {
            for label in labels {
                out.push(self.try_get(label)?);
            }
            return Ok(());
        }
        out.resize(labels.len(), None);
        let mut order: Vec<(u32, u32)> = labels
            .iter()
            .enumerate()
            .map(|(slot, label)| (self.shard_of(label) as u32, slot as u32))
            .collect();
        order.sort_unstable();
        for (shard, slot) in order {
            out[slot as usize] =
                ShardStorage::try_get(&self.shards[shard as usize], &labels[slot as usize])?;
        }
        Ok(())
    }
}

/// One shard's assembly job: member entries as (chunk, entry) index pairs
/// in global order, plus the exact ciphertext byte tally.
type ShardJob = (Vec<(u32, u32)>, usize);

/// The per-entry shard scatter shared by the in-memory and on-disk builds:
/// per-shard member lists (chunk, entry index pairs in global order) plus
/// each shard's exact ciphertext byte tally.
fn scatter_members(bits: u32, chunks: &[KeywordChunk]) -> Vec<ShardJob> {
    let shard_count = 1usize << bits;

    // Pass 1: per-entry shard ids (parallel across chunks).
    let shard_ids: Vec<Vec<u16>> = chunks
        .par_iter()
        .map(|chunk| {
            chunk
                .labels
                .iter()
                .map(|label| shard_of_label(label, bits) as u16)
                .collect()
        })
        .collect();

    // Pass 2: index scatter. Only (chunk, entry) index pairs move here —
    // O(entries) u32 writes — not ciphertext bytes; the byte copying in the
    // assembly passes is fully parallel per shard.
    let mut members: Vec<Vec<(u32, u32)>> = (0..shard_count).map(|_| Vec::new()).collect();
    let mut arena_bytes: Vec<usize> = vec![0; shard_count];
    for (c, ids) in shard_ids.iter().enumerate() {
        for (e, &shard) in ids.iter().enumerate() {
            members[shard as usize].push((c as u32, e as u32));
            arena_bytes[shard as usize] += chunks[c].spans[e].1 as usize;
        }
    }
    members.into_iter().zip(arena_bytes).collect()
}

/// Distributes per-keyword chunks over `2^bits` shards and assembles every
/// shard's arena + table **in parallel**.
///
/// Three passes:
/// 1. per-entry shard ids, computed in parallel across chunks;
/// 2. a cheap sequential scatter building each shard's member list (indices
///    only — no ciphertext bytes move here) together with its exact entry
///    and byte tallies;
/// 3. one independent assembly job per shard, in parallel: append the
///    member ciphertexts to the shard arena (pre-sized exactly) and insert
///    the labels.
///
/// Entries keep the global `(keyword, counter)` order within each shard, so
/// the result is deterministic regardless of thread scheduling, and with
/// `bits == 0` the single shard is produced by the exact same
/// [`merge_chunks`] pass as the unsharded build — byte-identical output.
pub(crate) fn shard_chunks(bits: u32, chunks: Vec<KeywordChunk>) -> ShardedIndex {
    assert!(
        bits <= MAX_SHARD_BITS,
        "shard bits {bits} exceeds MAX_SHARD_BITS ({MAX_SHARD_BITS})"
    );
    if bits == 0 {
        return ShardedIndex {
            bits,
            shards: vec![Shard::Memory(merge_chunks(chunks))],
        };
    }

    let jobs = scatter_members(bits, &chunks);

    // Pass 3: per-shard assembly (parallel across shards, lock-free — each
    // job reads the shared chunks and writes only its own shard).
    let shards: Vec<Shard> = jobs
        .into_par_iter()
        .map(|(member_list, bytes)| {
            let mut shard = EncryptedIndex::with_capacity(member_list.len(), bytes);
            for (c, e) in member_list {
                let chunk = &chunks[c as usize];
                let (offset, len) = chunk.spans[e as usize];
                shard.append_entry(
                    chunk.labels[e as usize],
                    &chunk.buf[offset as usize..(offset + len) as usize],
                );
            }
            Shard::Memory(shard)
        })
        .collect();
    ShardedIndex { bits, shards }
}

/// Backend-dispatching variant of [`shard_chunks`]: in-memory configs run
/// the parallel arena assembly; on-disk configs stream every shard straight
/// into its serialized file (same entry order, hence the same bytes a
/// `save_to_dir` of the in-memory build would write) and reopen the files
/// as paged [`FileShard`]s.
pub(crate) fn shard_chunks_stored(
    config: &StorageConfig,
    chunks: Vec<KeywordChunk>,
) -> Result<ShardedIndex, StorageError> {
    match &config.backend {
        StorageBackend::InMemory => Ok(shard_chunks(config.shard_bits, chunks)),
        StorageBackend::OnDisk(dir) => {
            shard_chunks_to_dir(config.shard_bits, chunks, dir, config.cache_budget)
        }
    }
}

/// The on-disk BuildIndex tail: writes each shard's serialized file
/// directly from the per-keyword chunks (no intermediate arena), in
/// parallel across shards, then opens them as paged [`FileShard`]s
/// (sharing one budgeted block cache when `cache_budget` is set).
fn shard_chunks_to_dir(
    bits: u32,
    chunks: Vec<KeywordChunk>,
    dir: &Path,
    cache_budget: Option<usize>,
) -> Result<ShardedIndex, StorageError> {
    assert!(
        bits <= MAX_SHARD_BITS,
        "shard bits {bits} exceeds MAX_SHARD_BITS ({MAX_SHARD_BITS})"
    );
    fs::create_dir_all(dir).map_err(|e| StorageError::Io {
        path: dir.to_path_buf(),
        error: e,
    })?;
    let built = (|| {
        write_manifest(dir, bits)?;
        let cache = cache_budget.map(|budget| Arc::new(BlockCache::new(budget)));
        let jobs: Vec<(usize, ShardJob)> = scatter_members(bits, &chunks)
            .into_iter()
            .enumerate()
            .collect();
        let results: Vec<Result<Shard, StorageError>> =
            jobs.into_par_iter()
                .map(|(i, (member_list, bytes))| {
                    let path = dir.join(shard_file_name(i));
                    write_chunk_shard(&path, &chunks, &member_list, bytes)?;
                    match &cache {
                        Some(cache) => FileShard::open_cached(&path, i as u32, Arc::clone(cache))
                            .map(Shard::File),
                        None => FileShard::open(&path).map(Shard::File),
                    }
                })
                .collect();
        let shards = results
            .into_iter()
            .collect::<Result<Vec<Shard>, StorageError>>()?;
        Ok(ShardedIndex { bits, shards })
    })();
    if built.is_err() {
        // Don't leave a half-written index behind for any caller (the
        // update manager additionally removes the directories it owns).
        crate::storage::cleanup_partial_index(dir, 1usize << bits);
    }
    built
}

impl SseScheme {
    /// Sharded variant of [`build_index`](Self::build_index): same
    /// per-keyword encryption (and the same RNG consumption — one nonce
    /// seed per keyword, so ciphertexts are identical for every
    /// `shard_bits`), but the entries are distributed over `2^shard_bits`
    /// label-prefix shards assembled in parallel.
    pub fn build_index_sharded<R: RngCore + CryptoRng>(
        key: &SseKey,
        database: &SseDatabase,
        shard_bits: u32,
        rng: &mut R,
    ) -> ShardedIndex {
        shard_chunks(shard_bits, Self::chunks_from_database(key, database, rng))
    }

    /// Storage-dispatching variant of
    /// [`build_index_sharded`](Self::build_index_sharded): the shards are
    /// assembled in memory or streamed straight to their serialized files,
    /// as [`StorageConfig`] selects. RNG consumption — and therefore every
    /// ciphertext byte — is identical across backends.
    pub fn build_index_stored<R: RngCore + CryptoRng>(
        key: &SseKey,
        database: &SseDatabase,
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<ShardedIndex, StorageError> {
        shard_chunks_stored(config, Self::chunks_from_database(key, database, rng))
    }

    /// Sharded variant of
    /// [`build_index_from_token_lists`](Self::build_index_from_token_lists).
    pub fn build_index_from_token_lists_sharded<R: RngCore + CryptoRng>(
        lists: &[(SearchToken, Vec<Vec<u8>>)],
        shard_bits: u32,
        rng: &mut R,
    ) -> ShardedIndex {
        shard_chunks(shard_bits, Self::chunks_from_token_lists(lists, rng))
    }

    /// Storage-dispatching variant of
    /// [`build_index_from_token_lists_sharded`](Self::build_index_from_token_lists_sharded).
    pub fn build_index_from_token_lists_stored<R: RngCore + CryptoRng>(
        lists: &[(SearchToken, Vec<Vec<u8>>)],
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<ShardedIndex, StorageError> {
        shard_chunks_stored(config, Self::chunks_from_token_lists(lists, rng))
    }

    /// Sharded variant of [`build_index_fixed`](Self::build_index_fixed) —
    /// the fast path the range schemes' sharded constructors use.
    pub fn build_index_fixed_sharded<const P: usize, R: RngCore + CryptoRng>(
        key: &SseKey,
        lists: &[(Vec<u8>, Vec<[u8; P]>)],
        shard_bits: u32,
        rng: &mut R,
    ) -> ShardedIndex {
        shard_chunks(shard_bits, Self::chunks_from_fixed(key, lists, rng))
    }

    /// Storage-dispatching variant of
    /// [`build_index_fixed_sharded`](Self::build_index_fixed_sharded).
    pub fn build_index_fixed_stored<const P: usize, R: RngCore + CryptoRng>(
        key: &SseKey,
        lists: &[(Vec<u8>, Vec<[u8; P]>)],
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<ShardedIndex, StorageError> {
        shard_chunks_stored(config, Self::chunks_from_fixed(key, lists, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjectable;
    use crate::pibas::LABEL_LEN;
    use crate::storage::test_support::TempDir;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rsse_crypto::{Key, KEY_LEN};

    fn db_from(entries: &[(Vec<u8>, Vec<u8>)]) -> SseDatabase {
        let mut db = SseDatabase::new();
        for (k, v) in entries {
            db.add(k.clone(), v.clone());
        }
        db
    }

    #[test]
    fn shard_of_label_uses_top_bits() {
        let mut label = [0u8; LABEL_LEN];
        label[0] = 0b1010_0000;
        assert_eq!(shard_of_label(&label, 0), 0);
        assert_eq!(shard_of_label(&label, 1), 1);
        assert_eq!(shard_of_label(&label, 3), 0b101);
        assert_eq!(shard_of_label(&label, 8), 0b1010_0000);
    }

    #[test]
    fn default_is_an_empty_unsharded_index() {
        let index = ShardedIndex::default();
        assert_eq!(index.shard_bits(), 0);
        assert_eq!(index.shard_count(), 1);
        assert!(index.is_empty());
        assert!(!index.is_file_backed());
        assert_eq!(index.len(), 0);
        assert!(index.try_get(&[0u8; LABEL_LEN]).unwrap().is_none());
    }

    #[test]
    fn entries_land_in_their_prefix_shard() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let key = SseScheme::setup(&mut rng);
        let db = db_from(
            &(0..64u64)
                .map(|i| {
                    (
                        format!("kw{}", i % 8).into_bytes(),
                        i.to_le_bytes().to_vec(),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let index = SseScheme::build_index_sharded(&key, &db, 4, &mut rng);
        assert_eq!(index.shard_count(), 16);
        assert_eq!(index.len(), 64);
        // Every shard's entries carry that shard's label prefix, and every
        // keyword remains fully searchable across the shard split.
        for shard in index.shards() {
            for label in shard
                .as_memory()
                .expect("in-memory build")
                .table_raw()
                .keys()
            {
                assert_eq!(
                    &index.shards()[index.shard_of(label)] as *const _,
                    shard as *const _
                );
            }
        }
        for kw in 0..8u64 {
            let token = SseScheme::trapdoor(&key, format!("kw{kw}").as_bytes());
            assert_eq!(SseScheme::search(&index, &token).unwrap().len(), 8);
        }
    }

    #[test]
    fn search_batch_scan_counts_match_per_token_counts() {
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let key = SseScheme::setup(&mut rng);
        let db = db_from(
            &(0..40u64)
                .map(|i| {
                    (
                        format!("kw{}", i % 5).into_bytes(),
                        i.to_le_bytes().to_vec(),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let index = SseScheme::build_index_sharded(&key, &db, 3, &mut rng);
        let tokens: Vec<SearchToken> = (0..6u64)
            .map(|kw| SseScheme::trapdoor(&key, format!("kw{kw}").as_bytes()))
            .collect();
        let counts = SseScheme::search_batch_scan(&index, &tokens, |_, _| {}).unwrap();
        let expected: Vec<usize> = tokens
            .iter()
            .map(|t| SseScheme::search_count(&index, t).unwrap())
            .collect();
        assert_eq!(counts, expected);
        assert_eq!(counts, vec![8, 8, 8, 8, 8, 0]);
    }

    #[test]
    fn file_backed_build_pages_in_only_probed_blocks() {
        // ~200 KiB of ciphertext in one shard → several 64 KiB blocks; one
        // probed keyword must not fault in the whole region.
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let key = SseScheme::setup(&mut rng);
        let mut db = SseDatabase::new();
        for kw in 0..50u64 {
            db.add(format!("kw{kw}").into_bytes(), vec![kw as u8; 4096]);
        }
        let dir = TempDir::new("paged");
        let mut rng_build = ChaCha20Rng::seed_from_u64(4);
        let index = SseScheme::build_index_stored(
            &key,
            &db,
            &StorageConfig::on_disk(0, dir.path()),
            &mut rng_build,
        )
        .unwrap();
        assert!(index.is_file_backed());
        let directory_bytes = index.len() * LABEL_LEN;
        assert_eq!(
            index.resident_bytes(),
            directory_bytes,
            "nothing faulted in yet"
        );
        let token = SseScheme::trapdoor(&key, b"kw7");
        assert_eq!(SseScheme::search(&index, &token).unwrap().len(), 1);
        let resident = index.resident_bytes() - directory_bytes;
        assert!(resident > 0, "the probed block must be resident");
        assert!(
            resident < index.storage_bytes() - directory_bytes,
            "a single probe must not fault in the whole region \
             ({resident} of {} region bytes resident)",
            index.storage_bytes() - directory_bytes
        );
    }

    /// A database whose ciphertext region spans many paged-read blocks.
    fn multi_block_db(keywords: u64, payload_len: usize) -> SseDatabase {
        let mut db = SseDatabase::new();
        for kw in 0..keywords {
            db.add(format!("kw{kw}").into_bytes(), vec![kw as u8; payload_len]);
        }
        db
    }

    #[test]
    fn budgeted_cache_bounds_residency_and_answers_identically() {
        // ~800 KiB of ciphertext → ~13 blocks of ~64 KiB. A 25% budget
        // must keep residency bounded while every query answers exactly
        // what the unbounded index answers.
        let mut rng = ChaCha20Rng::seed_from_u64(40);
        let key = SseScheme::setup(&mut rng);
        let db = multi_block_db(200, 4096);
        let dir = TempDir::new("budget");
        let mut rng_build = ChaCha20Rng::seed_from_u64(41);
        SseScheme::build_index_stored(
            &key,
            &db,
            &StorageConfig::on_disk(2, dir.path()),
            &mut rng_build,
        )
        .unwrap();

        let unbounded = ShardedIndex::open_dir(dir.path()).unwrap();
        let region_bytes = unbounded.storage_bytes() - unbounded.len() * LABEL_LEN;
        let budget = region_bytes / 4;
        let budgeted = ShardedIndex::open_dir_with_budget(dir.path(), Some(budget)).unwrap();

        for kw in 0..200u64 {
            let token = SseScheme::trapdoor(&key, format!("kw{kw}").as_bytes());
            assert_eq!(
                SseScheme::search(&budgeted, &token).unwrap(),
                SseScheme::search(&unbounded, &token).unwrap(),
                "budgeted results must be identical to unbounded for kw{kw}"
            );
            let stats = budgeted.cache_stats();
            assert!(
                stats.resident_bytes <= budget,
                "resident {} exceeds budget {budget} after kw{kw}",
                stats.resident_bytes
            );
        }
        let stats = budgeted.cache_stats();
        assert!(stats.misses > 0, "cold blocks must count as misses");
        assert!(
            stats.evictions > 0,
            "a 25% budget over a multi-block region must evict: {stats:?}"
        );
        // The unbounded index keeps everything it touched resident…
        let warm = unbounded.cache_stats();
        assert_eq!(warm.evictions, 0, "no budget, no evictions");
        assert_eq!(
            warm.resident_bytes, region_bytes,
            "everything touched stays"
        );
        // …and repeated probing of one keyword is served from cache.
        let token = SseScheme::trapdoor(&key, b"kw0");
        let before = budgeted.cache_stats();
        for _ in 0..4 {
            SseScheme::search(&budgeted, &token).unwrap();
        }
        let after = budgeted.cache_stats();
        assert!(after.hits > before.hits, "warm probes must hit the cache");
    }

    #[test]
    fn zero_budget_still_answers_with_nothing_resident() {
        let mut rng = ChaCha20Rng::seed_from_u64(42);
        let key = SseScheme::setup(&mut rng);
        let db = multi_block_db(40, 2048);
        let dir = TempDir::new("budget-zero");
        let mut rng_build = ChaCha20Rng::seed_from_u64(43);
        SseScheme::build_index_stored(
            &key,
            &db,
            &StorageConfig::on_disk(0, dir.path()),
            &mut rng_build,
        )
        .unwrap();
        let index = ShardedIndex::open_dir_with_budget(dir.path(), Some(0)).unwrap();
        for kw in 0..40u64 {
            let token = SseScheme::trapdoor(&key, format!("kw{kw}").as_bytes());
            assert_eq!(SseScheme::search(&index, &token).unwrap().len(), 1);
        }
        let stats = index.cache_stats();
        assert_eq!(stats.resident_bytes, 0, "nothing fits a zero budget");
        assert_eq!(stats.hits, 0);
        assert!(stats.misses > 0);
    }

    #[test]
    fn injected_faults_surface_as_storage_errors() {
        let mut rng = ChaCha20Rng::seed_from_u64(44);
        let key = SseScheme::setup(&mut rng);
        let db = db_from(
            &(0..24u64)
                .map(|i| {
                    (
                        format!("kw{}", i % 3).into_bytes(),
                        i.to_le_bytes().to_vec(),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let mut index = SseScheme::build_index_sharded(&key, &db, 2, &mut rng);
        let token = SseScheme::trapdoor(&key, b"kw1");
        assert_eq!(SseScheme::search(&index, &token).unwrap().len(), 8);

        // Let the first 3 probes through, then fail everything: the scan
        // (8 hits + 1 terminating miss) must abort with the typed error
        // instead of returning a silently shortened result.
        index.inject_read_faults(3);
        match SseScheme::search(&index, &token) {
            Err(StorageError::Io { path, .. }) => {
                assert_eq!(path, Path::new(FaultShard::FAULT_PATH));
            }
            other => panic!("expected Err(Io), got {other:?}"),
        }
        // The batched scan fails the same way…
        assert!(SseScheme::search_batch(&index, std::slice::from_ref(&token)).is_err());
        // …and try_search reports it as a storage failure, not corruption.
        match SseScheme::try_search(&index, &token) {
            Err(crate::pibas::SearchError::Storage(StorageError::Io { .. })) => {}
            other => panic!("expected Storage error, got {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The PR 2 acceptance property, still pinned: a `shard_bits = 0`
        /// in-memory ShardedIndex is **byte-identical** to the PR 1
        /// arena-backed `EncryptedIndex` — same arena bytes, same offset
        /// table — given the same key and RNG stream.
        #[test]
        fn unsharded_is_byte_identical_to_plain_arena(entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..6),
             proptest::collection::vec(any::<u8>(), 0..32)), 0..60),
            seed in any::<u64>())
        {
            let db = db_from(&entries);
            let key = SseScheme::key_from(Key::from_bytes([0x5A; KEY_LEN]));

            let mut rng_flat = ChaCha20Rng::seed_from_u64(seed);
            let flat = SseScheme::build_index(&key, &db, &mut rng_flat);
            let mut rng_sharded = ChaCha20Rng::seed_from_u64(seed);
            let sharded = SseScheme::build_index_sharded(&key, &db, 0, &mut rng_sharded);

            prop_assert_eq!(sharded.shard_count(), 1);
            let shard = sharded.shards()[0].as_memory().expect("in-memory build");
            prop_assert_eq!(shard.arena_bytes_raw(), flat.arena_bytes_raw(),
                "k=0 shard arena must be byte-identical to the flat arena");
            prop_assert_eq!(shard.table_raw(), flat.table_raw(),
                "k=0 shard offset table must equal the flat table");
        }

        /// Sharding is layout-only: for arbitrary multimaps and any k, the
        /// sharded index stores the same (label, ciphertext) pairs as the
        /// k=0 build and answers every keyword search identically.
        #[test]
        fn sharded_search_equals_unsharded_for_random_datasets(entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..5),
             proptest::collection::vec(any::<u8>(), 0..24)), 0..50),
            bits in 1u32..9,
            seed in any::<u64>())
        {
            let db = db_from(&entries);
            let key = SseScheme::key_from(Key::from_bytes([0xC3; KEY_LEN]));

            let mut rng_flat = ChaCha20Rng::seed_from_u64(seed);
            let flat = SseScheme::build_index_sharded(&key, &db, 0, &mut rng_flat);
            let mut rng_sharded = ChaCha20Rng::seed_from_u64(seed);
            let sharded = SseScheme::build_index_sharded(&key, &db, bits, &mut rng_sharded);

            prop_assert_eq!(sharded.len(), flat.len());
            prop_assert_eq!(sharded.storage_bytes(), flat.storage_bytes());
            // Entry-level equality: every label resolves to the same bytes.
            for shard in flat.shards() {
                for label in shard.as_memory().expect("in-memory build").table_raw().keys() {
                    prop_assert_eq!(
                        sharded.try_get(label).unwrap().map(|s| s.to_vec()),
                        flat.try_get(label).unwrap().map(|s| s.to_vec())
                    );
                }
            }
            // Search-level equality, per-token and batched.
            let tokens: Vec<SearchToken> = db.iter()
                .map(|(kw, _)| SseScheme::trapdoor(&key, kw))
                .collect();
            for token in &tokens {
                prop_assert_eq!(
                    SseScheme::search(&sharded, token).unwrap(),
                    SseScheme::search(&flat, token).unwrap()
                );
            }
            let batched = SseScheme::search_batch(&sharded, &tokens).unwrap();
            let per_token: Vec<Vec<Vec<u8>>> = tokens.iter()
                .map(|t| SseScheme::search(&flat, t).unwrap())
                .collect();
            prop_assert_eq!(batched, per_token);
        }

        /// Regression: `search_batch` on a *shuffled* token vector returns,
        /// per token, exactly what per-token `search` returns — so the
        /// result multiset over the whole vector is independent of token
        /// order and of batching.
        #[test]
        fn search_batch_on_shuffled_tokens_matches_per_token_search(
            entries in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..4),
                 proptest::collection::vec(any::<u8>(), 0..16)), 0..40),
            bits in 0u32..7,
            by in 0usize..13,
            seed in any::<u64>())
        {
            let db = db_from(&entries);
            let mut rng = ChaCha20Rng::seed_from_u64(seed);
            let key = SseScheme::setup(&mut rng);
            let index = SseScheme::build_index_sharded(&key, &db, bits, &mut rng);

            // Tokens for every keyword plus two absent ones, then shuffled
            // (deterministic rotation + reversal keeps proptest shrinking sane).
            let mut tokens: Vec<SearchToken> = db.iter()
                .map(|(kw, _)| SseScheme::trapdoor(&key, kw))
                .collect();
            tokens.push(SseScheme::trapdoor(&key, b"absent-1"));
            tokens.push(SseScheme::trapdoor(&key, b"absent-2"));
            let split = by % tokens.len().max(1);
            tokens.rotate_left(split);
            tokens.reverse();

            let batched = SseScheme::search_batch(&index, &tokens).unwrap();
            let per_token: Vec<Vec<Vec<u8>>> = tokens.iter()
                .map(|t| SseScheme::search(&index, t).unwrap())
                .collect();
            prop_assert_eq!(&batched, &per_token, "per-token results must be identical");

            // Multiset equality over the flattened result vector.
            let mut flat_batched: Vec<Vec<u8>> = batched.into_iter().flatten().collect();
            let mut flat_single: Vec<Vec<u8>> = per_token.into_iter().flatten().collect();
            flat_batched.sort();
            flat_single.sort();
            prop_assert_eq!(flat_batched, flat_single);
        }

        /// PR 3 acceptance property (a): a file-backed build — same key,
        /// same RNG stream — resolves every label to the same bytes and
        /// answers every search identically to the in-memory arena, at
        /// shard_bits ∈ {0, 4}.
        #[test]
        fn file_backed_build_equals_in_memory(entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..5),
             proptest::collection::vec(any::<u8>(), 0..24)), 0..40),
            four_bits in any::<bool>(),
            seed in any::<u64>())
        {
            let bits = if four_bits { 4 } else { 0 };
            let db = db_from(&entries);
            let key = SseScheme::key_from(Key::from_bytes([0x3C; KEY_LEN]));

            let mut rng_mem = ChaCha20Rng::seed_from_u64(seed);
            let memory = SseScheme::build_index_sharded(&key, &db, bits, &mut rng_mem);
            let dir = TempDir::new("prop-eq");
            let mut rng_file = ChaCha20Rng::seed_from_u64(seed);
            let file = SseScheme::build_index_stored(
                &key, &db, &StorageConfig::on_disk(bits, dir.path()), &mut rng_file).unwrap();

            prop_assert!(file.is_file_backed());
            prop_assert_eq!(file.len(), memory.len());
            prop_assert_eq!(file.storage_bytes(), memory.storage_bytes());
            for shard in memory.shards() {
                for label in shard.as_memory().expect("in-memory build").table_raw().keys() {
                    prop_assert_eq!(
                        file.try_get(label).unwrap().map(|s| s.to_vec()),
                        memory.try_get(label).unwrap().map(|s| s.to_vec())
                    );
                }
            }
            let tokens: Vec<SearchToken> = db.iter()
                .map(|(kw, _)| SseScheme::trapdoor(&key, kw))
                .collect();
            for token in &tokens {
                prop_assert_eq!(
                    SseScheme::search(&file, token).unwrap(),
                    SseScheme::search(&memory, token).unwrap()
                );
            }
            let batched = SseScheme::search_batch(&file, &tokens).unwrap();
            prop_assert_eq!(batched, SseScheme::search_batch(&memory, &tokens).unwrap());
        }

        /// PR 3 acceptance property (b): `save_to_dir` → `open_dir` →
        /// `save_to_dir` round-trips **byte-identically** (every shard file
        /// and the manifest), at shard_bits ∈ {0, 4} — and the streamed
        /// on-disk build writes those exact bytes in the first place.
        #[test]
        fn save_open_save_round_trips_byte_identically(entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..5),
             proptest::collection::vec(any::<u8>(), 0..24)), 0..40),
            four_bits in any::<bool>(),
            seed in any::<u64>())
        {
            let bits = if four_bits { 4 } else { 0 };
            let db = db_from(&entries);
            let key = SseScheme::key_from(Key::from_bytes([0x77; KEY_LEN]));

            let mut rng = ChaCha20Rng::seed_from_u64(seed);
            let memory = SseScheme::build_index_sharded(&key, &db, bits, &mut rng);

            let saved = TempDir::new("prop-rt-a");
            memory.save_to_dir(saved.path()).unwrap();
            let reopened = ShardedIndex::open_dir(saved.path()).unwrap();
            prop_assert_eq!(reopened.shard_bits(), bits);
            prop_assert_eq!(reopened.len(), memory.len());

            let resaved = TempDir::new("prop-rt-b");
            reopened.save_to_dir(resaved.path()).unwrap();
            prop_assert!(dirs_equal(saved.path(), resaved.path()),
                "save → open → save must be byte-identical");

            // The streamed build writes the same bytes as save_to_dir.
            let streamed = TempDir::new("prop-rt-c");
            let mut rng_stream = ChaCha20Rng::seed_from_u64(seed);
            SseScheme::build_index_stored(
                &key, &db, &StorageConfig::on_disk(bits, streamed.path()), &mut rng_stream).unwrap();
            prop_assert!(dirs_equal(saved.path(), streamed.path()),
                "streamed build must write the bytes save_to_dir writes");
        }
    }

    /// Builds one in-memory index per key byte over disjoint keyword sets,
    /// so cross-part labels are distinct (different SSE keys).
    fn merge_parts(bits: u32, key_bytes: &[u8]) -> Vec<(SseKey, ShardedIndex)> {
        key_bytes
            .iter()
            .map(|&byte| {
                let key = SseScheme::key_from(Key::from_bytes([byte; KEY_LEN]));
                let db = db_from(
                    &(0..24u64)
                        .map(|i| {
                            (
                                format!("p{byte}-kw{}", i % 6).into_bytes(),
                                (u64::from(byte) * 1000 + i).to_le_bytes().to_vec(),
                            )
                        })
                        .collect::<Vec<_>>(),
                );
                let mut rng = ChaCha20Rng::seed_from_u64(u64::from(byte));
                let index = SseScheme::build_index_sharded(&key, &db, bits, &mut rng);
                (key, index)
            })
            .collect()
    }

    #[test]
    fn in_memory_merge_keeps_every_part_searchable() {
        let parts = merge_parts(2, &[1, 2, 3]);
        let inputs: Vec<&ShardedIndex> = parts.iter().map(|(_, index)| index).collect();
        let merged = ShardedIndex::merge_in_memory(&inputs).unwrap();
        assert_eq!(merged.shard_bits(), 2);
        assert_eq!(
            merged.len(),
            parts.iter().map(|(_, index)| index.len()).sum::<usize>()
        );
        for (key, index) in &parts {
            for kw in 0..7u64 {
                for byte in 1u8..=3 {
                    let token = SseScheme::trapdoor(key, format!("p{byte}-kw{kw}").as_bytes());
                    let merged_hits = SseScheme::search(&merged, &token).unwrap();
                    let part_hits = SseScheme::search(index, &token).unwrap();
                    assert_eq!(
                        merged_hits, part_hits,
                        "part key must see exactly its own entries in the merge"
                    );
                }
            }
        }
    }

    #[test]
    fn dir_merge_answers_like_the_in_memory_merge_and_reopens_resident() {
        let parts = merge_parts(2, &[5, 6, 7]);
        let dirs: Vec<TempDir> = (0..parts.len())
            .map(|i| TempDir::new(&format!("merge-in-{i}")))
            .collect();
        for ((_, index), dir) in parts.iter().zip(&dirs) {
            index.save_to_dir(dir.path()).unwrap();
        }
        let out = TempDir::new("merge-out");
        let input_paths: Vec<&Path> = dirs.iter().map(|d| d.path()).collect();
        let merged_paged = ShardedIndex::merge_dirs(&input_paths, out.path(), None).unwrap();
        assert!(merged_paged.is_file_backed());
        assert_eq!(ShardedIndex::dir_shard_bits(out.path()).unwrap(), 2);

        let inputs: Vec<&ShardedIndex> = parts.iter().map(|(_, index)| index).collect();
        let merged_memory = ShardedIndex::merge_in_memory(&inputs).unwrap();
        assert_eq!(merged_paged.len(), merged_memory.len());

        // A resident reopen of the merged directory is byte-identical to
        // the in-memory merge: same arena bytes, same offset tables.
        let resident = ShardedIndex::open_dir_resident(out.path()).unwrap();
        assert!(!resident.is_file_backed());
        for (a, b) in resident.shards().iter().zip(merged_memory.shards()) {
            let a = a.as_memory().unwrap();
            let b = b.as_memory().unwrap();
            assert_eq!(a.arena_bytes_raw(), b.arena_bytes_raw());
            assert_eq!(a.table_raw(), b.table_raw());
        }

        // And every probe through the paged merge answers like the
        // in-memory one.
        for (key, _) in &parts {
            for kw in 0..6u64 {
                for byte in 5u8..=7 {
                    let token = SseScheme::trapdoor(key, format!("p{byte}-kw{kw}").as_bytes());
                    assert_eq!(
                        SseScheme::search(&merged_paged, &token).unwrap(),
                        SseScheme::search(&merged_memory, &token).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn merge_rejects_layout_mismatch_collisions_and_empty_input() {
        let a = merge_parts(2, &[9]).remove(0).1;
        let b = merge_parts(3, &[10]).remove(0).1;
        assert!(matches!(
            ShardedIndex::merge_in_memory(&[&a, &b]),
            Err(StorageError::Unsupported(_))
        ));
        // Merging an index with itself duplicates every label.
        assert!(matches!(
            ShardedIndex::merge_in_memory(&[&a, &a]),
            Err(StorageError::Unsupported(_))
        ));
        assert!(matches!(
            ShardedIndex::merge_in_memory(&[]),
            Err(StorageError::Unsupported(_))
        ));

        let dir_a = TempDir::new("merge-err-a");
        let dir_b = TempDir::new("merge-err-b");
        a.save_to_dir(dir_a.path()).unwrap();
        b.save_to_dir(dir_b.path()).unwrap();
        let out = TempDir::new("merge-err-out");
        assert!(matches!(
            ShardedIndex::merge_dirs(&[dir_a.path(), dir_b.path()], out.path(), None),
            Err(StorageError::Unsupported(_))
        ));
        // The failed merge swept its partial output.
        let leftovers: Vec<_> = fs::read_dir(out.path())
            .map(|it| it.map(|e| e.unwrap().file_name()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "failed merge left {leftovers:?}");

        let out_dup = TempDir::new("merge-err-dup");
        assert!(matches!(
            ShardedIndex::merge_dirs(&[dir_a.path(), dir_a.path()], out_dup.path(), None),
            Err(StorageError::Unsupported(_))
        ));
    }

    /// Compares two saved index directories file by file.
    fn dirs_equal(a: &Path, b: &Path) -> bool {
        let list = |dir: &Path| -> Vec<String> {
            let mut names: Vec<String> = fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .collect();
            names.sort();
            names
        };
        let names = list(a);
        if names != list(b) {
            return false;
        }
        names
            .iter()
            .all(|name| fs::read(a.join(name)).unwrap() == fs::read(b.join(name)).unwrap())
    }
}
