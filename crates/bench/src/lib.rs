//! Experiment harness reproducing the evaluation of *Practical Private
//! Range Search Revisited* (SIGMOD 2016).
//!
//! Each public function in [`experiments`] regenerates one table or figure
//! of the paper (at laptop scale by default — see [`Scale`]); the
//! `reproduce` binary is a thin CLI over them, and the Criterion benches in
//! `benches/` cover the timing-sensitive pieces with statistical rigour.
//!
//! | Paper artefact | Function |
//! |---|---|
//! | Table 1 (measured columns)        | [`experiments::table1`] |
//! | Figure 5(a)/(b) — index costs, Gowalla | [`experiments::fig5_index_costs`] |
//! | Table 2 — index costs, USPS       | [`experiments::table2`] |
//! | Figure 6(a)/(b) — false positives | [`experiments::fig6_false_positives`] |
//! | Figure 7(a)/(b) — search time     | [`experiments::fig7_search_time`] |
//! | Figure 8(a)/(b) — query costs at the owner | [`experiments::fig8_query_costs`] |
//! | Cover ablation (BRC/URC/SRC)      | [`experiments::ablation_cover`] |
//! | Update-consolidation ablation     | [`experiments::ablation_updates`] |

#![deny(missing_docs)]

pub mod experiments;
pub mod report;
pub mod scale;

pub use report::Report;
pub use scale::{DatasetKind, Scale};
