//! Synthetic workloads mirroring the paper's evaluation datasets.
//!
//! The paper evaluates on two real datasets that are not redistributable
//! here:
//!
//! * **Gowalla** — 6.4M location check-ins, query attribute = check-in
//!   timestamp, ~95% of the tuples carry *distinct* values (near-uniform
//!   spread over a ~10^8-value domain);
//! * **USPS** — 389K employee records, query attribute = annual salary,
//!   only ~5% distinct values (heavy skew: many employees share the same
//!   salary step).
//!
//! What the experiments actually exercise is not the raw data but those two
//! statistical profiles — size, domain, distinct-value ratio and skew — so
//! this crate generates synthetic datasets with the same profiles
//! ([`datasets::gowalla_like`], [`datasets::usps_like`]) plus fully
//! parameterised generators ([`datasets::synthetic`]) and the query
//! workloads of Figures 6–8 ([`queries`]).

pub mod datasets;
pub mod distributions;
pub mod queries;

pub use datasets::{gowalla_like, synthetic, usps_like, DatasetProfile, SyntheticConfig};
pub use distributions::{ClusteredValues, UniformValues, ValueDistribution, Zipf};
pub use queries::{percent_of_domain, random_queries_of_len, random_queries_percent, QuerySet};
