//! Cost accounting shared by every scheme: index statistics, per-query
//! statistics and result evaluation against ground truth.
//!
//! These are the quantities the paper's evaluation reports (Figures 5–8,
//! Tables 1–2): index size, construction cost, query (token) size, number of
//! communication rounds, server work, and false-positive rate.

use crate::dataset::DocId;
use std::collections::HashSet;

/// Size statistics of a built encrypted index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of (label, value) entries across all encrypted dictionaries.
    pub entries: usize,
    /// Approximate server-side storage in bytes.
    pub storage_bytes: usize,
}

impl IndexStats {
    /// Adds two statistics together (used when a scheme keeps several
    /// sub-indexes, e.g. Logarithmic-SRC-i, or the update manager's batches).
    pub fn merged(self, other: IndexStats) -> IndexStats {
        IndexStats {
            entries: self.entries + other.entries,
            storage_bytes: self.storage_bytes + other.storage_bytes,
        }
    }

    /// Storage in mebibytes, for report printing.
    pub fn storage_mib(&self) -> f64 {
        self.storage_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Client- and server-side cost of answering one range query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of tokens shipped to the server.
    pub tokens_sent: usize,
    /// Total serialized size of those tokens, in bytes (Figure 8(a)).
    pub token_bytes: usize,
    /// Number of owner↔server communication rounds (1 for every scheme
    /// except Logarithmic-SRC-i, which needs 2).
    pub rounds: usize,
    /// Number of encrypted-index entries the server touched — a
    /// machine-independent proxy for search work.
    pub entries_touched: usize,
    /// Number of distinct per-token result groups the server can observe
    /// (the "result partitioning" leakage of the Logarithmic-BRC/URC
    /// schemes; always 1 for the SRC family).
    pub result_groups: usize,
}

/// Comparison of a query outcome against the plaintext ground truth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Evaluation {
    /// Matching ids correctly returned.
    pub true_positives: usize,
    /// Ids returned that do not satisfy the range.
    pub false_positives: usize,
    /// Matching ids that were *not* returned (must be zero for every scheme
    /// in the paper — they are all complete).
    pub false_negatives: usize,
}

impl Evaluation {
    /// Compares `returned` ids against the `expected` ground-truth ids.
    pub fn compare(returned: &[DocId], expected: &[DocId]) -> Self {
        let returned_set: HashSet<DocId> = returned.iter().copied().collect();
        let expected_set: HashSet<DocId> = expected.iter().copied().collect();
        let true_positives = returned_set.intersection(&expected_set).count();
        Self {
            true_positives,
            false_positives: returned_set.difference(&expected_set).count(),
            false_negatives: expected_set.difference(&returned_set).count(),
        }
    }

    /// Whether every matching tuple was returned.
    pub fn is_complete(&self) -> bool {
        self.false_negatives == 0
    }

    /// Whether the result is exact (complete and without false positives).
    pub fn is_exact(&self) -> bool {
        self.false_negatives == 0 && self.false_positives == 0
    }

    /// The false-positive *rate* as defined in the paper's Figure 6: false
    /// positives over the total number of returned results. Zero when
    /// nothing is returned.
    pub fn false_positive_rate(&self) -> f64 {
        let total = self.true_positives + self.false_positives;
        if total == 0 {
            0.0
        } else {
            self.false_positives as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_adds_fields() {
        let a = IndexStats {
            entries: 10,
            storage_bytes: 1000,
        };
        let b = IndexStats {
            entries: 5,
            storage_bytes: 24,
        };
        assert_eq!(
            a.merged(b),
            IndexStats {
                entries: 15,
                storage_bytes: 1024
            }
        );
        assert!(a.storage_mib() > 0.0);
    }

    #[test]
    fn evaluation_classification() {
        let eval = Evaluation::compare(&[1, 2, 3, 4], &[2, 3, 5]);
        assert_eq!(eval.true_positives, 2);
        assert_eq!(eval.false_positives, 2);
        assert_eq!(eval.false_negatives, 1);
        assert!(!eval.is_complete());
        assert!(!eval.is_exact());
        assert!((eval.false_positive_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_result_has_zero_rate() {
        let eval = Evaluation::compare(&[7, 8], &[8, 7]);
        assert!(eval.is_exact());
        assert_eq!(eval.false_positive_rate(), 0.0);
    }

    #[test]
    fn empty_results_yield_zero_rate() {
        let eval = Evaluation::compare(&[], &[]);
        assert!(eval.is_exact());
        assert_eq!(eval.false_positive_rate(), 0.0);
        let eval = Evaluation::compare(&[], &[1]);
        assert!(!eval.is_complete());
    }

    #[test]
    fn duplicate_ids_do_not_inflate_counts() {
        let eval = Evaluation::compare(&[1, 1, 1, 9], &[1]);
        assert_eq!(eval.true_positives, 1);
        assert_eq!(eval.false_positives, 1);
    }
}
