//! Range-query workload generators.
//!
//! The paper's Figures 6 and 7 sweep the query range size as a *percentage
//! of the domain* (10%–100%) and average over 200K random queries per point;
//! Figure 8 sweeps absolute range sizes 1–100. These helpers generate both
//! kinds of workloads reproducibly.

use rand::Rng;
use rsse_cover::{Domain, Range};

/// A named set of query ranges (one point of a sweep).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySet {
    /// Label of the sweep point (e.g. "10%" or "R=64").
    pub label: String,
    /// The query ranges.
    pub ranges: Vec<Range>,
}

impl QuerySet {
    /// Number of queries in the set.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// The absolute range length corresponding to `percent` of the domain
/// (at least 1).
pub fn percent_of_domain(domain: &Domain, percent: f64) -> u64 {
    assert!(
        (0.0..=100.0).contains(&percent),
        "percent must be in [0,100]"
    );
    ((domain.size() as f64 * percent / 100.0).round() as u64).clamp(1, domain.size())
}

/// Generates `count` uniformly placed queries of exactly `len` values each.
pub fn random_queries_of_len<R: Rng + ?Sized>(
    domain: &Domain,
    len: u64,
    count: usize,
    rng: &mut R,
) -> Vec<Range> {
    let len = len.clamp(1, domain.size());
    let max_lo = domain.size() - len;
    (0..count)
        .map(|_| {
            let lo = if max_lo == 0 {
                0
            } else {
                rng.gen_range(0..=max_lo)
            };
            Range::new(lo, lo + len - 1)
        })
        .collect()
}

/// Generates one [`QuerySet`] per percentage point in `percents`, each with
/// `count` random queries of that relative size.
pub fn random_queries_percent<R: Rng + ?Sized>(
    domain: &Domain,
    percents: &[f64],
    count: usize,
    rng: &mut R,
) -> Vec<QuerySet> {
    percents
        .iter()
        .map(|&p| QuerySet {
            label: format!("{p:.0}%"),
            ranges: random_queries_of_len(domain, percent_of_domain(domain, p), count, rng),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn percent_conversion_clamps_to_domain() {
        let domain = Domain::new(1000);
        assert_eq!(percent_of_domain(&domain, 10.0), 100);
        assert_eq!(percent_of_domain(&domain, 100.0), 1000);
        assert_eq!(percent_of_domain(&domain, 0.0), 1);
    }

    #[test]
    fn queries_fit_in_domain_and_have_requested_length() {
        let domain = Domain::new(512);
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        for len in [1u64, 7, 100, 512, 600] {
            let queries = random_queries_of_len(&domain, len, 50, &mut rng);
            assert_eq!(queries.len(), 50);
            let effective = len.min(512);
            for q in queries {
                assert_eq!(q.len(), effective);
                assert!(q.hi() < 512);
            }
        }
    }

    #[test]
    fn percent_sweep_builds_labelled_sets() {
        let domain = Domain::new(10_000);
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let sets = random_queries_percent(&domain, &[10.0, 50.0, 100.0], 20, &mut rng);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].label, "10%");
        assert_eq!(sets[0].len(), 20);
        assert!(!sets[0].is_empty());
        assert!(sets[2].ranges.iter().all(|r| r.len() == 10_000));
    }

    #[test]
    fn full_domain_queries_are_the_whole_domain() {
        let domain = Domain::new(64);
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let queries = random_queries_of_len(&domain, 64, 5, &mut rng);
        assert!(queries.iter().all(|q| *q == Range::new(0, 63)));
    }

    #[test]
    #[should_panic(expected = "percent")]
    fn out_of_range_percent_rejected() {
        let _ = percent_of_domain(&Domain::new(10), 150.0);
    }

    proptest! {
        #[test]
        fn random_queries_always_valid(len in 1u64..2000, seed in any::<u64>()) {
            let domain = Domain::new(1024);
            let mut rng = ChaCha20Rng::seed_from_u64(seed);
            for q in random_queries_of_len(&domain, len, 10, &mut rng) {
                prop_assert!(q.hi() < domain.size());
                prop_assert!(q.len() <= domain.size());
            }
        }
    }
}
