//! Differential merge-equivalence battery for structural consolidation.
//!
//! The acceptance criteria of the re-encryption-free level merges: a
//! manager consolidating **structurally** (merged levels assembled by
//! copying the input instances' ciphertext verbatim) must answer every
//! query identically to one consolidating via the paper's baseline
//! **rebuild** (merge, filter, re-encrypt under a fresh key) — across
//! seeds, storage backends and shard layouts — while performing **zero**
//! payload decrypt/encrypt calls on the merge path, and while its
//! compacted owner sidecars stay bounded by the live-id population rather
//! than growing with the raw update log.

use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse::core::schemes::log_brc_urc::LogScheme;
use rsse::crypto::{decrypt_call_count, encrypt_call_count};
use rsse::prelude::*;
use rsse::sse::storage::OWNER_META_FILE;
use rsse::sse::test_support::TempDir;
use rsse::updates::OwnerKey;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

type LogManager = UpdateManager<LogScheme>;

const DOMAIN: u64 = 1 << 10;

/// The cipher-call counters are process-global; every test in this binary
/// serializes on this lock so the counter-delta assertions below are not
/// polluted by a concurrently running build.
static CIPHER_LOCK: Mutex<()> = Mutex::new(());

fn owner_key() -> OwnerKey {
    OwnerKey::from_bytes([77u8; 32])
}

/// One storage configuration of the battery's backend axis.
#[derive(Clone, Copy)]
enum Backend {
    InMemory,
    /// On disk with a deliberately tight block-cache budget, so merged
    /// shards are exercised through paged reads and cache eviction.
    OnDiskBudgeted,
}

fn config(backend: Backend, root: &Path, shard_bits: u32, mode: ConsolidationMode) -> UpdateConfig {
    UpdateConfig {
        consolidation_step: 3,
        shard_bits,
        storage_root: match backend {
            Backend::InMemory => None,
            Backend::OnDiskBudgeted => Some(root.to_path_buf()),
        },
        cache_budget: match backend {
            Backend::InMemory => None,
            Backend::OnDiskBudgeted => Some(32 << 10),
        },
        build_budget: None,
        consolidation_mode: mode,
    }
}

/// Deterministic churn for batch `b`: fresh inserts plus modifications and
/// deletions against earlier batches, so consolidations carry live tuples,
/// superseded versions and tombstones all at once.
fn batch_entries(seed: u64, b: u64) -> Vec<UpdateEntry> {
    let mut entries: Vec<UpdateEntry> = (0..10u64)
        .map(|i| UpdateEntry::insert(b * 20 + i, (seed * 71 + b * 97 + i * 13) % DOMAIN))
        .collect();
    if b > 0 {
        entries.push(UpdateEntry::modify(
            (b - 1) * 20 + (b % 7),
            (seed * 31 + b * 53) % DOMAIN,
        ));
        entries.push(UpdateEntry::delete(
            (b - 1) * 20 + 1,
            (seed * 71 + (b - 1) * 97 + 13) % DOMAIN,
        ));
    }
    entries
}

fn drive(manager: &mut LogManager, seed: u64, batches: u64) {
    for b in 0..batches {
        let mut rng = ChaCha20Rng::seed_from_u64(seed * 10_000 + b);
        manager.ingest_batch(batch_entries(seed, b), &mut rng);
    }
}

fn query_mix() -> Vec<Range> {
    vec![
        Range::new(0, DOMAIN - 1),
        Range::new(0, 127),
        Range::new(200, 500),
        Range::new(700, DOMAIN - 1),
    ]
}

fn sorted(mut ids: Vec<DocId>) -> Vec<DocId> {
    ids.sort_unstable();
    ids
}

/// Sorted per-range answers: the cross-mode comparison key. (Structural
/// and rebuild instances emit ids in different internal orders, so answer
/// equivalence is set equality; the full `QueryOutcome` including stats is
/// compared *within* a mode across backends, below.)
fn answers(manager: &LogManager) -> Vec<Vec<DocId>> {
    query_mix()
        .into_iter()
        .map(|range| sorted(manager.query(range).ids))
        .collect()
}

/// The tentpole differential: structural vs rebuild consolidation over
/// identical batch streams must produce identical answers — checked after
/// every single batch so a divergence pins the exact consolidation that
/// introduced it — across seeds × backends × shard layouts.
#[test]
fn structural_answers_match_rebuild_across_seeds_backends_and_layouts() {
    let _guard = CIPHER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for seed in [3u64, 17] {
        for shard_bits in [0u32, 3] {
            for backend in [Backend::InMemory, Backend::OnDiskBudgeted] {
                let root_s = TempDir::new("diff-structural");
                let root_r = TempDir::new("diff-rebuild");
                let mut structural = LogManager::with_key(
                    owner_key(),
                    Domain::new(DOMAIN),
                    config(
                        backend,
                        root_s.path(),
                        shard_bits,
                        ConsolidationMode::Structural,
                    ),
                );
                let mut rebuild = LogManager::with_key(
                    owner_key(),
                    Domain::new(DOMAIN),
                    config(
                        backend,
                        root_r.path(),
                        shard_bits,
                        ConsolidationMode::Rebuild,
                    ),
                );
                for b in 0..10u64 {
                    let mut rng_s = ChaCha20Rng::seed_from_u64(seed * 10_000 + b);
                    let mut rng_r = ChaCha20Rng::seed_from_u64(seed * 10_000 + b);
                    structural.ingest_batch(batch_entries(seed, b), &mut rng_s);
                    rebuild.ingest_batch(batch_entries(seed, b), &mut rng_r);
                    assert_eq!(
                        answers(&structural),
                        answers(&rebuild),
                        "modes diverged after batch {b} (seed {seed}, shard_bits {shard_bits})"
                    );
                }
                // Both telescoped the same way; only the strategy differs.
                assert_eq!(structural.consolidations(), rebuild.consolidations());
                assert!(structural.consolidations() > 0);
                assert_eq!(structural.rebuild_consolidations(), 0);
                assert_eq!(rebuild.structural_consolidations(), 0);
                assert!(structural.structural_instances() > 0);
                // And both agree with the owner's plaintext bookkeeping.
                for range in query_mix() {
                    assert_eq!(
                        sorted(structural.query(range).ids),
                        sorted(structural.ground_truth(range))
                    );
                }
            }
        }
    }
}

/// Within the structural mode, the full query outcome — ids in emission
/// order plus every `QueryStats` counter — and the index statistics must
/// be identical whichever backend serves the merged shards: the on-disk
/// merge writes byte-identical entries to what the in-memory merge holds
/// in RAM.
#[test]
fn structural_outcomes_are_backend_invariant() {
    let _guard = CIPHER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let seed = 9u64;
    for shard_bits in [0u32, 2] {
        let root = TempDir::new("backend-inv");
        let mut in_memory = LogManager::with_key(
            owner_key(),
            Domain::new(DOMAIN),
            config(
                Backend::InMemory,
                root.path(),
                shard_bits,
                ConsolidationMode::Structural,
            ),
        );
        let mut on_disk = LogManager::with_key(
            owner_key(),
            Domain::new(DOMAIN),
            config(
                Backend::OnDiskBudgeted,
                root.path(),
                shard_bits,
                ConsolidationMode::Structural,
            ),
        );
        drive(&mut in_memory, seed, 9);
        drive(&mut on_disk, seed, 9);
        assert!(on_disk.structural_consolidations() > 0);
        for range in query_mix() {
            assert_eq!(
                in_memory.try_query(range).unwrap(),
                on_disk.try_query(range).unwrap(),
                "backends diverged on {range:?} (shard_bits {shard_bits})"
            );
        }
        assert_eq!(in_memory.index_stats(), on_disk.index_stats());
    }
}

/// A structurally consolidated root reopens — structurally — and answers
/// byte-identically, including after further ingests: the compacted owner
/// sidecar (deduped latest-per-id log + part seeds) carries the complete
/// owner state.
#[test]
fn structural_root_reopens_byte_identically_and_keeps_ingesting() {
    let _guard = CIPHER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let seed = 21u64;
    let root = TempDir::new("structural-reopen");
    let cfg = config(
        Backend::OnDiskBudgeted,
        root.path(),
        2,
        ConsolidationMode::Structural,
    );
    let mut manager = LogManager::with_key(owner_key(), Domain::new(DOMAIN), cfg.clone());
    drive(&mut manager, seed, 10);
    assert!(manager.structural_consolidations() > 0);
    let reference: Vec<QueryOutcome> = query_mix()
        .into_iter()
        .map(|range| manager.try_query(range).unwrap())
        .collect();
    let counters = (
        manager.structural_consolidations(),
        manager.rebuild_consolidations(),
        manager.structural_instances(),
    );
    drop(manager);

    let mut reopened = LogManager::open_root(owner_key(), root.path(), cfg).unwrap();
    let replayed: Vec<QueryOutcome> = query_mix()
        .into_iter()
        .map(|range| reopened.try_query(range).unwrap())
        .collect();
    assert_eq!(replayed, reference);
    assert_eq!(
        (
            reopened.structural_consolidations(),
            reopened.rebuild_consolidations(),
            reopened.structural_instances(),
        ),
        counters,
        "the manifest carries the split consolidation counters"
    );

    // The reopened manager keeps consolidating structurally.
    for b in 10..14u64 {
        let mut rng = ChaCha20Rng::seed_from_u64(seed * 10_000 + b);
        reopened.ingest_batch(batch_entries(seed, b), &mut rng);
    }
    assert!(reopened.structural_consolidations() > counters.0);
    for range in query_mix() {
        assert_eq!(
            sorted(reopened.query(range).ids),
            sorted(reopened.ground_truth(range))
        );
    }
}

/// The re-encryption-free claim, asserted mechanically via the global
/// cipher-call counters: driving the same batch stream through
///
/// * a manager that never consolidates,
/// * a structurally consolidating manager, and
/// * a rebuild-consolidating manager
///
/// must show (a) the structural manager's extra encrypt calls over the
/// never-consolidating one are only the per-merge sidecar seals — not one
/// per payload entry, (b) the rebuild manager re-encrypts entire levels,
/// and (c) **zero** decrypt calls on any ingest path.
#[test]
fn structural_merges_neither_decrypt_nor_reencrypt_payloads() {
    let _guard = CIPHER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let seed = 5u64;
    let batches = 9u64;
    let mut deltas: Vec<(u64, u64)> = Vec::new(); // (encrypts, decrypts)
    for (mode, step) in [
        (ConsolidationMode::Rebuild, 0usize), // never consolidates
        (ConsolidationMode::Structural, 3),
        (ConsolidationMode::Rebuild, 3),
    ] {
        let root = TempDir::new("cipher-count");
        let cfg = UpdateConfig {
            consolidation_step: step,
            ..config(Backend::OnDiskBudgeted, root.path(), 2, mode)
        };
        let mut manager = LogManager::with_key(owner_key(), Domain::new(DOMAIN), cfg);
        let (enc0, dec0) = (encrypt_call_count(), decrypt_call_count());
        drive(&mut manager, seed, batches);
        deltas.push((encrypt_call_count() - enc0, decrypt_call_count() - dec0));
        if step > 0 {
            assert!(manager.consolidations() > 0);
        }
    }
    let (flat, structural, rebuild) = (deltas[0], deltas[1], deltas[2]);

    // (c) No ingest path — batch builds, structural merges, rebuilds —
    // ever decrypts a payload.
    assert_eq!(flat.1, 0, "batch builds must not decrypt");
    assert_eq!(structural.1, 0, "structural merges must not decrypt");
    assert_eq!(rebuild.1, 0, "rebuild merges must not decrypt");

    // (a) Structural consolidation adds at most a constant number of
    // encrypt calls per merge (the compacted sidecar seal) on top of the
    // batch builds themselves — with batches of ~12 entries each, even a
    // single re-encrypted level would blow this bound.
    let merges = 4u64; // 9 batches at s = 3: three level-0 merges + one level-1
    assert!(
        structural.0 <= flat.0 + merges,
        "structural ingest made {} encrypt calls vs {} without consolidation — \
         the merge path must not re-encrypt payloads",
        structural.0,
        flat.0
    );

    // (b) The rebuild strategy re-encrypts whole merged levels.
    assert!(
        rebuild.0 > structural.0 + merges,
        "rebuild ({}) should far exceed structural ({})",
        rebuild.0,
        structural.0
    );
}

/// Every `owner.meta` sidecar under the root, as `(path, size)`.
fn sidecar_sizes(root: &Path) -> Vec<(PathBuf, u64)> {
    let mut sizes: Vec<(PathBuf, u64)> = std::fs::read_dir(root)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_dir())
        .filter_map(|dir| {
            let meta = dir.join(OWNER_META_FILE);
            meta.metadata().ok().map(|m| (meta, m.len()))
        })
        .collect();
    sizes.sort();
    sizes
}

/// Owner-log compaction: across many consolidation rounds of a churning
/// workload (every batch deletes most of what the previous one inserted),
/// the consolidated sidecars hold the deduped latest-per-id state, so
/// their total size tracks the live-id population — not the
/// ever-growing raw update log.
#[test]
fn compacted_sidecars_stay_bounded_by_live_ids_across_rounds() {
    let _guard = CIPHER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let root = TempDir::new("sidecar-bound");
    let cfg = UpdateConfig {
        consolidation_step: 2,
        ..config(
            Backend::OnDiskBudgeted,
            root.path(),
            0,
            ConsolidationMode::Structural,
        )
    };
    let mut manager = LogManager::with_key(owner_key(), Domain::new(DOMAIN), cfg);
    let per_batch = 8u64;
    let mut raw_log_entries = 0u64;
    let mut max_total_sidecar = 0u64;
    let mut rng = ChaCha20Rng::seed_from_u64(8);
    for b in 0..24u64 {
        let mut entries: Vec<UpdateEntry> = (0..per_batch)
            .map(|i| UpdateEntry::insert(b * per_batch + i, (b * 89 + i * 7) % DOMAIN))
            .collect();
        if b > 0 {
            // Delete all but one of the previous batch's inserts: the live
            // population stays ~`per_batch + b`, the raw log grows ~2× that
            // per batch.
            for i in 1..per_batch {
                entries.push(UpdateEntry::delete(
                    (b - 1) * per_batch + i,
                    ((b - 1) * 89 + i * 7) % DOMAIN,
                ));
            }
        }
        raw_log_entries += entries.len() as u64;
        manager.ingest_batch(entries, &mut rng);
        max_total_sidecar =
            max_total_sidecar.max(sidecar_sizes(root.path()).iter().map(|(_, s)| s).sum());
    }
    assert!(
        manager.consolidations() >= 10,
        "the workload must exercise at least 10 consolidation rounds, ran {}",
        manager.consolidations()
    );
    assert!(manager.structural_consolidations() >= 10);

    // The raw log (17 bytes per entry, accumulated forever) would dominate
    // the compacted sidecars many times over. Generous constants: headers,
    // MACs, part seeds and the live tail all fit well inside half the raw
    // log's payload bytes.
    let raw_log_bytes = raw_log_entries * 17;
    assert!(
        max_total_sidecar < raw_log_bytes / 2,
        "sidecars reached {max_total_sidecar} bytes — not compacted \
         (raw log would be {raw_log_bytes})"
    );

    // And the compacted state is complete: the manager reopens from those
    // sidecars alone and agrees with the plaintext ground truth.
    let reference: Vec<Vec<DocId>> = query_mix()
        .into_iter()
        .map(|range| sorted(manager.try_query(range).unwrap().ids))
        .collect();
    for (range, expected) in query_mix().into_iter().zip(&reference) {
        assert_eq!(&sorted(manager.ground_truth(range)), expected);
    }
    let cfg = UpdateConfig {
        consolidation_step: 2,
        ..config(
            Backend::OnDiskBudgeted,
            root.path(),
            0,
            ConsolidationMode::Structural,
        )
    };
    drop(manager);
    let reopened = LogManager::open_root(owner_key(), root.path(), cfg).unwrap();
    let replayed: Vec<Vec<DocId>> = query_mix()
        .into_iter()
        .map(|range| sorted(reopened.try_query(range).unwrap().ids))
        .collect();
    assert_eq!(replayed, reference);
}
