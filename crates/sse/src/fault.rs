//! Deterministic fault injection: the chaos harness behind the resilience
//! tests and benches.
//!
//! PR 4 introduced [`FaultShard`], a storage wrapper that fails probes after
//! a countdown, and PR 5 sprinkled `inject_read_faults` /
//! `inject_transient_read_faults` convenience hooks over every server type
//! that owns a [`ShardedIndex`] — seven hand-rolled copies of the same two
//! lines. This module replaces all of that with one shared vocabulary:
//!
//! * [`FaultPlan`] — a small declarative DSL describing *when* probes fail:
//!   a seeded per-probe fault rate, periodic burst windows, per-shard
//!   targeting, permanently dead shards, bounded per-shard outages, probe
//!   latency, and the two legacy countdown shapes (`dead_after`,
//!   `transient_window`) kept semantics-identical to the PR 4/5 hooks;
//! * [`FaultInjector`] — the shared runtime state of one plan: a global
//!   probe counter (shared across every shard of every wrapped index, and
//!   across clones) plus the countdowns, making every decision a pure
//!   function of `(seed, probe_index, shard)` — **fully deterministic** for
//!   a sequentially probing caller, and result-stable under parallel
//!   callers whose retries absorb rate faults;
//! * [`FaultInjectable`] — the one trait every index-owning server type
//!   implements (one line: return the indexes) to inherit the whole
//!   injection surface, instead of re-implementing the hooks.
//!
//! Failures surface as [`StorageError::Io`] at the synthetic path
//! [`FaultShard::FAULT_PATH`] — exactly what a real failed block read
//! produces, so everything downstream (typed error propagation, retry
//! layers, circuit breakers) exercises its production path. A production
//! index never contains fault wrappers; this is test/bench support that
//! ships in the library only because downstream crates' integration tests
//! and the bench harness need to reach it.

use crate::sharded::{FaultShard, ShardedIndex};
use crate::storage::StorageError;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Callback invoked instead of a real `thread::sleep` when the plan injects
/// probe latency — lets a virtual clock absorb injected delays so latency /
/// deadline tests run deterministically in microseconds of wall time.
pub type DelayHook = Arc<dyn Fn(Duration) + Send + Sync>;

/// SplitMix64 finalizer (the same mixer the vendored `rand` uses for
/// `seed_from_u64`): decorrelates consecutive probe indexes into
/// independent-looking 64-bit hashes.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A declarative description of *which dictionary probes fail and how* —
/// the input to [`FaultInjector`]. All clauses compose: a probe fails if
/// **any** failing clause matches it (dead shard, outage window, countdown
/// window, or the seeded rate draw inside the targeting/burst gates).
///
/// # Examples
///
/// ```
/// use rsse_sse::FaultPlan;
/// use std::time::Duration;
///
/// // 10% of probes fail, decided by seed 7, everywhere.
/// let plan = FaultPlan::seeded(7).fault_rate(0.10);
///
/// // Shard 3 is dead; every other probe also waits 1ms and fails in
/// // bursts of 4 out of every 64 probes at 50% probability.
/// let chaos = FaultPlan::seeded(9)
///     .dead_shard(3)
///     .latency(Duration::from_millis(1))
///     .burst(64, 4)
///     .fault_rate(0.5);
/// # let _ = (plan, chaos);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed decorrelating the per-probe fault-rate draws.
    seed: u64,
    /// Per-probe failure probability in `[0, 1]`, drawn deterministically
    /// from `(seed, probe_index)`.
    fault_rate: f64,
    /// `(period, len)`: when set, rate faults only fire on probes whose
    /// index satisfies `index % period < len` — correlated failure bursts.
    burst: Option<(u64, u64)>,
    /// When set, rate/burst faults only target these shards.
    target_shards: Option<Vec<u32>>,
    /// Shards that fail **every** probe — permanently dead disks.
    dead_shards: Vec<u32>,
    /// `(shard, from, until)`: the shard fails probes with global index in
    /// `from..until` — a bounded outage that later heals.
    outages: Vec<(u32, u64, u64)>,
    /// Injected latency per probe (absorbed by the [`DelayHook`] if one is
    /// installed, otherwise a real `thread::sleep`).
    latency: Option<Duration>,
    /// Legacy countdown window: `(successful_probes, failing_probes)`;
    /// `failing_probes == None` fails forever once the countdown expires.
    countdown: Option<(u64, Option<u64>)>,
}

impl FaultPlan {
    /// A plan whose probabilistic draws are decided by `seed` (no faults
    /// until clauses are added).
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The PR 4 hook's shape: the first `successful_probes` probes succeed,
    /// every later one fails — a disk that dies mid-search.
    pub fn dead_after(successful_probes: u64) -> Self {
        Self {
            countdown: Some((successful_probes, None)),
            ..Self::default()
        }
    }

    /// The PR 5 hook's shape: after `successful_probes` probes, exactly
    /// `failing_probes` fail, then the storage recovers — a transient blip
    /// a retry is meant to absorb.
    pub fn transient_window(successful_probes: u64, failing_probes: u64) -> Self {
        Self {
            countdown: Some((successful_probes, Some(failing_probes))),
            ..Self::default()
        }
    }

    /// Sets the per-probe failure probability (clamped to `[0, 1]`), drawn
    /// deterministically from `(seed, probe_index)`.
    pub fn fault_rate(mut self, rate: f64) -> Self {
        self.fault_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Restricts rate faults to periodic bursts: only probes with
    /// `index % period < len` are eligible to fail.
    pub fn burst(mut self, period: u64, len: u64) -> Self {
        self.burst = Some((period.max(1), len));
        self
    }

    /// Restricts rate/burst faults to the given shards (other shards stay
    /// healthy unless dead or in an outage).
    pub fn target_shards(mut self, shards: impl Into<Vec<u32>>) -> Self {
        self.target_shards = Some(shards.into());
        self
    }

    /// Marks a shard permanently dead: every probe of it fails.
    pub fn dead_shard(mut self, shard: u32) -> Self {
        self.dead_shards.push(shard);
        self
    }

    /// Adds a bounded outage: the shard fails probes whose global index is
    /// in `from..until`, then heals.
    pub fn shard_outage(mut self, shard: u32, from: u64, until: u64) -> Self {
        self.outages.push((shard, from, until));
        self
    }

    /// Injects this much latency into every probe (see [`DelayHook`]).
    pub fn latency(mut self, delay: Duration) -> Self {
        self.latency = Some(delay);
        self
    }
}

/// The shared runtime of one [`FaultPlan`]: a global probe counter plus the
/// legacy countdown state, consulted by every [`FaultShard`] wrapping any
/// shard of any index the plan was injected into (and by clones of them).
///
/// Exposes its counters so tests can assert how much chaos actually
/// happened — e.g. "the retry layer absorbed exactly `faults_injected()`
/// transient faults".
pub struct FaultInjector {
    plan: FaultPlan,
    /// Global probe index: one per `decide` call, across all wrapped shards.
    probes: AtomicU64,
    /// Remaining successful probes of the legacy countdown (negative once
    /// in the failing window). `i64::MAX` when no countdown is configured.
    countdown: AtomicI64,
    /// Whether the countdown window fails forever once expired (the
    /// `dead_after` shape); otherwise `failures_left` bounds it.
    dead_forever: bool,
    /// Remaining failing probes once the countdown expired (transient
    /// window only).
    failures_left: AtomicI64,
    /// Total probes this injector failed.
    faults: AtomicU64,
    /// Latency sink (virtual clock) — `None` falls back to `thread::sleep`.
    delay: Option<DelayHook>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("probes", &self.probes.load(Ordering::Relaxed))
            .field("faults", &self.faults.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// Builds the runtime state for a plan (no delay hook: injected latency
    /// really sleeps).
    pub fn new(plan: FaultPlan) -> Self {
        Self::with_delay_hook(plan, None)
    }

    /// Builds the runtime state with an optional [`DelayHook`] absorbing
    /// injected latency (virtual-clock tests).
    pub fn with_delay_hook(plan: FaultPlan, delay: Option<DelayHook>) -> Self {
        let (countdown, dead_forever, failures_left) = match plan.countdown {
            Some((successes, failing)) => (
                i64::try_from(successes).unwrap_or(i64::MAX),
                failing.is_none(),
                failing.map_or(0, |n| i64::try_from(n).unwrap_or(i64::MAX)),
            ),
            None => (i64::MAX, false, 0),
        };
        Self {
            plan,
            probes: AtomicU64::new(0),
            countdown: AtomicI64::new(countdown),
            dead_forever,
            failures_left: AtomicI64::new(failures_left),
            faults: AtomicU64::new(0),
            delay,
        }
    }

    /// Number of probes decided so far (across all wrapped shards).
    pub fn probes_issued(&self) -> u64 {
        self.probes.load(Ordering::SeqCst)
    }

    /// Number of probes failed so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::SeqCst)
    }

    /// Decides the fate of the next probe against shard `shard`: applies
    /// injected latency, then either passes the probe through (`Ok`) or
    /// fails it with the synthetic typed I/O error.
    pub fn decide(&self, shard: u32) -> Result<(), StorageError> {
        let probe = self.probes.fetch_add(1, Ordering::SeqCst);
        if let Some(delay) = self.plan.latency {
            match &self.delay {
                Some(hook) => hook(delay),
                None => std::thread::sleep(delay),
            }
        }
        if self.probe_fails(probe, shard) {
            self.faults.fetch_add(1, Ordering::SeqCst);
            return Err(StorageError::Io {
                path: PathBuf::from(FaultShard::FAULT_PATH),
                error: io::Error::other("injected block-read fault"),
            });
        }
        Ok(())
    }

    /// Whether probe number `probe` against `shard` fails under the plan.
    fn probe_fails(&self, probe: u64, shard: u32) -> bool {
        let plan = &self.plan;
        // Legacy countdown window (shared across shards, like PR 4/5).
        if plan.countdown.is_some()
            && self.countdown.fetch_sub(1, Ordering::SeqCst) <= 0
            && (self.dead_forever || self.failures_left.fetch_sub(1, Ordering::SeqCst) > 0)
        {
            return true;
        }
        if plan.dead_shards.contains(&shard) {
            return true;
        }
        if plan
            .outages
            .iter()
            .any(|&(s, from, until)| s == shard && (from..until).contains(&probe))
        {
            return true;
        }
        // Rate faults, gated by shard targeting and burst windows.
        if plan.fault_rate <= 0.0 {
            return false;
        }
        if let Some(targets) = &plan.target_shards {
            if !targets.contains(&shard) {
                return false;
            }
        }
        if let Some((period, len)) = plan.burst {
            if probe % period >= len {
                return false;
            }
        }
        let draw = splitmix64(plan.seed ^ probe.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let threshold = (plan.fault_rate * u64::MAX as f64) as u64;
        draw <= threshold
    }
}

/// Everything that owns one or more [`ShardedIndex`]es and wants the fault
/// injection surface: implement [`fault_indexes`](Self::fault_indexes) (one
/// line) and the provided methods do the rest — one shared
/// [`FaultInjector`] wraps every shard of every returned index, so probe
/// counting is global across them (multi-index servers like
/// Logarithmic-SRC-i count both indexes' probes on one clock).
///
/// The two legacy hooks ([`inject_read_faults`](Self::inject_read_faults),
/// [`inject_transient_read_faults`](Self::inject_transient_read_faults))
/// keep their PR 4/5 semantics; new tests should speak [`FaultPlan`].
pub trait FaultInjectable {
    /// The indexes faults should be injected into.
    fn fault_indexes(&mut self) -> Vec<&mut ShardedIndex>;

    /// Wraps every shard of every [`fault_indexes`](Self::fault_indexes)
    /// index with an already-built injector and returns it (for reading
    /// its counters, or for sharing one injector across servers).
    fn inject_fault_injector(&mut self, injector: &Arc<FaultInjector>) {
        for index in self.fault_indexes() {
            index.attach_fault_injector(injector);
        }
    }

    /// Injects a [`FaultPlan`] and returns its [`FaultInjector`] for
    /// counter inspection. Injected latency really sleeps; use
    /// [`inject_fault_plan_with_delay`](Self::inject_fault_plan_with_delay)
    /// to route it into a virtual clock instead.
    fn inject_fault_plan(&mut self, plan: FaultPlan) -> Arc<FaultInjector> {
        let injector = Arc::new(FaultInjector::new(plan));
        self.inject_fault_injector(&injector);
        injector
    }

    /// Like [`inject_fault_plan`](Self::inject_fault_plan), but injected
    /// latency is delivered to `delay` instead of sleeping.
    fn inject_fault_plan_with_delay(
        &mut self,
        plan: FaultPlan,
        delay: DelayHook,
    ) -> Arc<FaultInjector> {
        let injector = Arc::new(FaultInjector::with_delay_hook(plan, Some(delay)));
        self.inject_fault_injector(&injector);
        injector
    }

    /// Legacy hook: every probe after the first `successful_probes` fails —
    /// a disk that dies mid-search ([`FaultPlan::dead_after`]).
    fn inject_read_faults(&mut self, successful_probes: u64) {
        self.inject_fault_plan(FaultPlan::dead_after(successful_probes));
    }

    /// Legacy hook: after `successful_probes` probes, exactly
    /// `failing_probes` fail, then the storage recovers
    /// ([`FaultPlan::transient_window`]).
    fn inject_transient_read_faults(&mut self, successful_probes: u64, failing_probes: u64) {
        self.inject_fault_plan(FaultPlan::transient_window(
            successful_probes,
            failing_probes,
        ));
    }
}

impl FaultInjectable for ShardedIndex {
    fn fault_indexes(&mut self) -> Vec<&mut ShardedIndex> {
        vec![self]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_after_matches_legacy_countdown_semantics() {
        let injector = FaultInjector::new(FaultPlan::dead_after(3));
        for _ in 0..3 {
            assert!(injector.decide(0).is_ok());
        }
        for _ in 0..20 {
            assert!(injector.decide(0).is_err(), "dead forever after countdown");
        }
        assert_eq!(injector.probes_issued(), 23);
        assert_eq!(injector.faults_injected(), 20);
    }

    #[test]
    fn transient_window_recovers_after_exact_failures() {
        let injector = FaultInjector::new(FaultPlan::transient_window(2, 3));
        assert!(injector.decide(0).is_ok());
        assert!(injector.decide(1).is_ok());
        for _ in 0..3 {
            assert!(injector.decide(0).is_err());
        }
        for _ in 0..10 {
            assert!(injector.decide(0).is_ok(), "storage must recover");
        }
        assert_eq!(injector.faults_injected(), 3);
    }

    #[test]
    fn fault_rate_is_deterministic_and_roughly_calibrated() {
        let run = |seed: u64| -> Vec<bool> {
            let injector = FaultInjector::new(FaultPlan::seeded(seed).fault_rate(0.10));
            (0..4000).map(|_| injector.decide(0).is_err()).collect()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same probe sequence, same decisions");
        let faults = a.iter().filter(|&&f| f).count();
        assert!(
            (200..=600).contains(&faults),
            "10% of 4000 probes should fail within a loose band, got {faults}"
        );
        let c = run(8);
        assert_ne!(a, c, "different seeds must draw differently");
    }

    #[test]
    fn rate_extremes_fail_never_and_always() {
        let never = FaultInjector::new(FaultPlan::seeded(1).fault_rate(0.0));
        let always = FaultInjector::new(FaultPlan::seeded(1).fault_rate(1.0));
        for _ in 0..256 {
            assert!(never.decide(0).is_ok());
            assert!(always.decide(0).is_err());
        }
    }

    #[test]
    fn dead_shard_and_targeting_are_shard_scoped() {
        let injector = FaultInjector::new(
            FaultPlan::seeded(3)
                .dead_shard(2)
                .fault_rate(1.0)
                .target_shards(vec![5]),
        );
        for _ in 0..32 {
            assert!(injector.decide(2).is_err(), "dead shard always fails");
            assert!(injector.decide(5).is_err(), "targeted shard draws at 100%");
            assert!(injector.decide(0).is_ok(), "untargeted shard stays healthy");
        }
    }

    #[test]
    fn outage_window_heals() {
        let injector = FaultInjector::new(FaultPlan::seeded(0).shard_outage(1, 2, 5));
        // Global probe indexes 0..8, all against shard 1: indexes 2,3,4 fail.
        let fates: Vec<bool> = (0..8).map(|_| injector.decide(1).is_err()).collect();
        assert_eq!(
            fates,
            vec![false, false, true, true, true, false, false, false]
        );
        // Other shards never fail, even inside the window.
        let other = FaultInjector::new(FaultPlan::seeded(0).shard_outage(1, 0, 100));
        for _ in 0..8 {
            assert!(other.decide(0).is_ok());
        }
    }

    #[test]
    fn burst_gates_rate_faults_to_window() {
        let injector = FaultInjector::new(FaultPlan::seeded(4).fault_rate(1.0).burst(8, 2));
        let fates: Vec<bool> = (0..16).map(|_| injector.decide(0).is_err()).collect();
        let expected: Vec<bool> = (0..16u64).map(|p| p % 8 < 2).collect();
        assert_eq!(fates, expected);
    }

    #[test]
    fn latency_routes_through_the_delay_hook() {
        use std::sync::Mutex;
        let slept = Arc::new(Mutex::new(Duration::ZERO));
        let sink = Arc::clone(&slept);
        let hook: DelayHook = Arc::new(move |d| *sink.lock().unwrap() += d);
        let injector = FaultInjector::with_delay_hook(
            FaultPlan::seeded(0).latency(Duration::from_millis(250)),
            Some(hook),
        );
        for _ in 0..4 {
            injector.decide(0).unwrap();
        }
        assert_eq!(*slept.lock().unwrap(), Duration::from_secs(1));
    }
}
