//! Fault-injection and cache-budget integration tests for the fallible
//! storage-aware search path.
//!
//! The acceptance criteria of the typed-I/O-error refactor: a block-read
//! failure in the middle of a search must surface as a typed
//! `StorageError` from every scheme's query path and from
//! `QueryServer::answer_many` — never as a silently shortened ("entry
//! missing") result — and a cache budget must bound resident bytes while
//! leaving query outcomes byte-identical to the unbounded configuration.

use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse::core::schemes::constant::ConstantScheme;
use rsse::core::schemes::log_brc_urc::LogScheme;
use rsse::core::schemes::log_src::LogSrcScheme;
use rsse::core::schemes::log_src_i::LogSrcIScheme;
use rsse::core::{QueryServer, RangeScheme, StorageConfig, StorageError};
use rsse::prelude::*;
use rsse::serve::{ResilientServer, ServeConfig};
use rsse::sse::test_support::TempDir;
use rsse::sse::FaultInjectable;

fn dataset(domain_size: u64, n: u64) -> Dataset {
    let domain = Domain::new(domain_size);
    let records = (0..n)
        .map(|i| Record::new(i, (i * 37 + 11) % domain_size))
        .collect();
    Dataset::new(domain, records).expect("values fit the domain")
}

/// Every probe after the first few fails: the five scheme query paths —
/// Logarithmic-BRC, Logarithmic-URC, Constant, Logarithmic-SRC and
/// Logarithmic-SRC-i — must all return `Err(StorageError)` from
/// `try_query` instead of a silently incomplete `Ok`.
#[test]
fn all_five_scheme_query_paths_surface_block_read_failures() {
    let data = dataset(1 << 10, 400);
    let range = Range::new(0, 900);
    let expected = {
        let mut ids = data.matching_ids(range);
        ids.sort_unstable();
        ids
    };
    let sorted = |outcome: QueryOutcome| {
        let mut ids = outcome.ids;
        ids.sort_unstable();
        ids.dedup();
        ids
    };

    // Logarithmic-BRC and Logarithmic-URC (two of the five query paths).
    for kind in [CoverKind::Brc, CoverKind::Urc] {
        let dir = TempDir::new("fault-log");
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let (client, mut server) = LogScheme::build_full_stored(
            &data,
            kind,
            false,
            &StorageConfig::on_disk(2, dir.path()),
            &mut rng,
        )
        .expect("on-disk build");
        assert_eq!(
            sorted(
                client
                    .try_query(&server, range)
                    .expect("healthy disk answers")
            ),
            expected
        );
        server.inject_read_faults(5);
        let err = client
            .try_query(&server, range)
            .expect_err("a failing disk must not produce an Ok outcome");
        assert!(
            matches!(err, StorageError::Io { .. }),
            "Logarithmic-{} must surface a typed I/O error, got {err}",
            kind.label()
        );
    }

    // Constant-BRC (DPRF expansion feeding per-leaf SSE probes).
    {
        let dir = TempDir::new("fault-constant");
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let (client, mut server) = ConstantScheme::build_stored_with(
            &data,
            CoverKind::Brc,
            &StorageConfig::on_disk(0, dir.path()),
            &mut rng,
        )
        .expect("on-disk build");
        assert_eq!(
            sorted(
                client
                    .try_query(&server, range)
                    .expect("healthy disk answers")
            ),
            expected
        );
        server.inject_read_faults(5);
        let err = client
            .try_query(&server, range)
            .expect_err("must fail typed");
        assert!(matches!(err, StorageError::Io { .. }), "Constant: {err}");
    }

    // Logarithmic-SRC (single-token TDAG cover).
    {
        let dir = TempDir::new("fault-src");
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let (client, mut server) = LogSrcScheme::build_full_stored(
            &data,
            false,
            &StorageConfig::on_disk(1, dir.path()),
            &mut rng,
        )
        .expect("on-disk build");
        assert!(client.try_query(&server, range).is_ok());
        server.inject_read_faults(2);
        let err = client
            .try_query(&server, range)
            .expect_err("must fail typed");
        assert!(matches!(err, StorageError::Io { .. }), "Log-SRC: {err}");
    }

    // Logarithmic-SRC-i (two indexes, two rounds).
    {
        let dir = TempDir::new("fault-srci");
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let (client, mut server) = LogSrcIScheme::build_impl_stored(
            &data,
            &StorageConfig::on_disk(0, dir.path()),
            &mut rng,
        )
        .expect("on-disk build");
        assert!(client.try_query(&server, range).is_ok());
        server.inject_read_faults(0);
        let err = client
            .try_query(&server, range)
            .expect_err("must fail typed");
        assert!(matches!(err, StorageError::Io { .. }), "Log-SRC-i: {err}");
    }
}

/// The headline acceptance test: a block-read failure in the middle of a
/// served batch surfaces as a typed `StorageError` from
/// `QueryServer::answer_many` — and is distinguishable from a genuinely
/// empty result, which still comes back as `Ok`.
#[test]
fn answer_many_surfaces_mid_search_failure_as_typed_error() {
    // Values live in the lower half of the domain, so the upper half is a
    // genuinely empty range (the "label absent" case below).
    let domain = Domain::new(1 << 12);
    let data = Dataset::new(
        domain,
        (0..600u64)
            .map(|i| Record::new(i, (i * 37 + 11) % (1 << 11)))
            .collect(),
    )
    .expect("values fit the domain");
    let dir = TempDir::new("fault-server");
    let mut rng = ChaCha20Rng::seed_from_u64(5);
    let (client, server) =
        LogScheme::build_stored(&data, &StorageConfig::on_disk(3, dir.path()), &mut rng)
            .expect("on-disk build");
    drop(server);

    let ranges: Vec<Range> = (0..8u64)
        .map(|i| Range::new(i * 250, i * 250 + 249))
        .collect();
    let queries: Vec<Vec<rsse::sse::SearchToken>> = ranges
        .iter()
        .map(|&r| client.trapdoor(r).expect("in-domain range"))
        .collect();

    let mut qs = QueryServer::open_dir(dir.path()).expect("cold-open");
    let healthy = qs
        .answer_many_strict(&queries)
        .expect("healthy disk serves the batch");
    assert_eq!(healthy.len(), queries.len());

    // "Label absent" is an empty Ok — NOT an error.
    let empty = client
        .trapdoor(Range::new(3000, 4095))
        .expect("in-domain range");
    let outcome = qs.answer(&empty).expect("an empty range is not a failure");
    assert!(outcome.ids.is_empty(), "no record lives above 2^11");

    // "Disk failed mid-search" is a typed error — NOT an empty result —
    // and with per-query reporting, every affected slot carries its own.
    qs.inject_read_faults(25);
    let slots = qs.answer_many(&queries);
    assert_eq!(slots.len(), queries.len());
    assert!(
        slots.iter().any(Result::is_err),
        "a dead disk must fail at least one query"
    );
    for slot in &slots {
        if let Err(err) = slot {
            assert!(
                matches!(err, StorageError::Io { .. }),
                "expected a typed I/O error, got {err}"
            );
        }
    }
    let err = qs
        .answer_many_strict(&queries)
        .expect_err("the strict collection must abort the batch");
    assert!(matches!(err, StorageError::Io { .. }));
}

/// Partial-batch error reporting: one query's storage fault must not take
/// down its batch-mates. A query that never touches the dying storage
/// (out-of-domain → empty token vector) keeps answering `Ok` while every
/// probing query in the same `answer_many` batch reports its own typed
/// error.
#[test]
fn healthy_queries_in_a_faulted_batch_still_succeed() {
    let data = dataset(1 << 12, 600);
    let dir = TempDir::new("fault-partial");
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let (client, server) =
        LogScheme::build_stored(&data, &StorageConfig::on_disk(2, dir.path()), &mut rng)
            .expect("on-disk build");
    drop(server);

    // Slot 0 probes nothing (its range is empty of tokens after clamping
    // happens client-side: an empty token vector); slots 1.. all probe.
    let mut queries: Vec<Vec<rsse::sse::SearchToken>> = vec![Vec::new()];
    queries.extend((0..4u64).map(|i| client.trapdoor(Range::new(i * 500, i * 500 + 499)).unwrap()));

    let mut qs = QueryServer::open_dir(dir.path()).expect("cold-open");
    qs.inject_read_faults(0); // the disk is dead from the first probe
    let slots = qs.answer_many(&queries);
    assert!(
        slots[0]
            .as_ref()
            .expect("probe-free query survives")
            .is_empty(),
        "the healthy query answers Ok (and empty) in the faulted batch"
    );
    for slot in &slots[1..] {
        let err = slot.as_ref().expect_err("probing queries fail typed");
        assert!(matches!(err, StorageError::Io { .. }));
    }
}

/// The retry that makes per-query results worth having: failed blocks are
/// never cached, so retrying a failed probe re-reads from storage — a
/// transient fault window is absorbed invisibly, with outcomes identical
/// to the healthy server's. The raw `answer_many` no longer retries (it
/// reports the first failure typed); absorption is the resilient serving
/// layer's job, observable through its stats.
#[test]
fn resilient_retry_absorbs_a_transient_fault_window() {
    let data = dataset(1 << 12, 600);
    let dir = TempDir::new("fault-transient");
    let mut rng = ChaCha20Rng::seed_from_u64(8);
    let (client, server) =
        LogScheme::build_stored(&data, &StorageConfig::on_disk(2, dir.path()), &mut rng)
            .expect("on-disk build");
    drop(server);

    let queries: Vec<Vec<rsse::sse::SearchToken>> = (0..8u64)
        .map(|i| client.trapdoor(Range::new(i * 500, i * 500 + 499)).unwrap())
        .collect();
    let reference = QueryServer::open_dir(dir.path())
        .expect("cold-open")
        .answer_many_strict(&queries)
        .expect("healthy reference");

    // The first probe fails, then the "disk" recovers: exactly one probe
    // sees the failure, and its per-probe retry re-reads the now-healthy
    // block. Every slot must come back Ok and byte-identical, and the
    // absorption must be observable in the serving stats.
    let mut qs = QueryServer::open_dir(dir.path()).expect("cold-open");
    qs.inject_transient_read_faults(0, 1);
    let serve = ResilientServer::new(qs, ServeConfig::default());
    let slots = serve.answer_many(&queries);
    for (slot, expected) in slots.iter().zip(&reference) {
        assert_eq!(
            slot.as_ref().expect("the retry absorbs the blip"),
            expected,
            "post-retry outcomes must be byte-identical to the healthy server"
        );
    }
    let stats = serve.stats();
    assert_eq!(stats.faults_absorbed, 1, "exactly one probe blipped");
    assert_eq!(stats.served_ok, queries.len() as u64);
}

/// The cache-budget acceptance test at the serving layer: outcomes under a
/// tight budget are identical to the unbounded server's, resident bytes
/// stay inside the budget throughout, and the counters move.
#[test]
fn cache_budget_bounds_server_residency_with_identical_outcomes() {
    let data = dataset(1 << 12, 3_000);
    let dir = TempDir::new("budget-server");
    let mut rng = ChaCha20Rng::seed_from_u64(6);
    let (client, server) =
        LogScheme::build_stored(&data, &StorageConfig::on_disk(2, dir.path()), &mut rng)
            .expect("on-disk build");
    let region_bytes = {
        let index = server.index();
        index.storage_bytes() - index.len() * 16
    };
    drop(server);

    let ranges: Vec<Range> = (0..24u64)
        .map(|i| Range::new(i * 170, i * 170 + 240))
        .collect();
    let queries: Vec<Vec<rsse::sse::SearchToken>> = ranges
        .iter()
        .map(|&r| client.trapdoor(r).expect("in-domain range"))
        .collect();

    let unbounded = QueryServer::open_dir(dir.path()).expect("cold-open");
    let reference = unbounded
        .answer_many_strict(&queries)
        .expect("unbounded serves");

    // 25% of the ciphertext region: a few ~64 KiB blocks fit, so the
    // cache genuinely caches and genuinely evicts. (Budgets below one
    // block size still bound residency — nothing caches — which the sse
    // crate's `zero_budget_still_answers_with_nothing_resident` pins.)
    let budget = region_bytes / 4;
    let budgeted =
        QueryServer::open_dir_with_budget(dir.path(), Some(budget)).expect("budgeted open");
    for (query, expected) in queries.iter().zip(&reference) {
        let outcome = budgeted.answer(query).expect("budgeted serves");
        assert_eq!(
            &outcome, expected,
            "budgeted outcome must be byte-identical"
        );
        let stats = budgeted.index().cache_stats();
        assert!(
            stats.resident_bytes <= budget,
            "resident {} exceeds the {budget}-byte budget",
            stats.resident_bytes
        );
    }
    let stats = budgeted.index().cache_stats();
    assert!(stats.misses > 0);
    assert!(
        stats.evictions > 0,
        "a 25% budget over this working set must evict: {stats:?}"
    );
    assert!(
        unbounded.index().cache_stats().evictions == 0,
        "the unbounded server never evicts"
    );
}

/// Cache stats under *concurrent* mixed hit/miss/eviction traffic on the
/// public serving surface: eight threads replay overlapping query sets
/// against one budgeted server while a sampler watches the counters. Every
/// observation must show monotone hit/miss/eviction counters and residency
/// inside the budget plus the documented transient overshoot (at most one
/// in-flight ~64 KiB block per probing thread); at quiescence the budget
/// holds exactly.
#[test]
fn cache_stats_stay_consistent_under_concurrent_query_traffic() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const THREADS: usize = 8;
    // Block slack: blocks are cut at a 64 KiB target plus at most one
    // entry, so 128 KiB per in-flight thread is a safe per-block bound.
    const BLOCK_SLACK: usize = 128 << 10;

    let data = dataset(1 << 12, 3_000);
    let dir = TempDir::new("budget-concurrent");
    let mut rng = ChaCha20Rng::seed_from_u64(17);
    let (client, server) =
        LogScheme::build_stored(&data, &StorageConfig::on_disk(2, dir.path()), &mut rng)
            .expect("on-disk build");
    let region_bytes = {
        let index = server.index();
        index.storage_bytes() - index.len() * 16
    };
    drop(server);

    let queries: Vec<Vec<rsse::sse::SearchToken>> = (0..24u64)
        .map(|i| {
            client
                .trapdoor(Range::new(i * 170, i * 170 + 240))
                .expect("in-domain range")
        })
        .collect();

    let budget = region_bytes / 4;
    let budgeted =
        QueryServer::open_dir_with_budget(dir.path(), Some(budget)).expect("budgeted open");
    let reference = budgeted
        .answer_many_strict(&queries)
        .expect("warm reference");
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let budgeted = &budgeted;
            let queries = &queries;
            let reference = &reference;
            let stop = &stop;
            scope.spawn(move || {
                // Each thread walks the query set from its own offset, so
                // at any instant some threads hit warm blocks while others
                // miss and force evictions.
                for round in 0..3 {
                    for offset in 0..queries.len() {
                        let at = (thread + round * 3 + offset) % queries.len();
                        let outcome = budgeted.answer(&queries[at]).expect("budgeted serves");
                        assert_eq!(
                            &outcome, &reference[at],
                            "concurrent budgeted outcome must stay byte-identical"
                        );
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        let budgeted = &budgeted;
        let stop = &stop;
        scope.spawn(move || {
            let mut last = budgeted.index().cache_stats();
            while !stop.load(Ordering::Relaxed) {
                let stats = budgeted.index().cache_stats();
                assert!(
                    stats.hits >= last.hits
                        && stats.misses >= last.misses
                        && stats.evictions >= last.evictions,
                    "cache counters must be monotone: {last:?} -> {stats:?}"
                );
                assert!(
                    stats.resident_bytes <= budget + THREADS * BLOCK_SLACK,
                    "mid-flight resident {} exceeds budget {budget} + slack",
                    stats.resident_bytes
                );
                last = stats;
                std::thread::yield_now();
            }
        });
    });

    let stats = budgeted.index().cache_stats();
    assert!(
        stats.resident_bytes <= budget,
        "quiescent resident {} exceeds the {budget}-byte budget",
        stats.resident_bytes
    );
    assert!(stats.hits > 0, "repeated queries must hit: {stats:?}");
    assert!(stats.misses > 0);
    assert!(
        stats.evictions > 0,
        "a 25% budget under concurrent traffic must evict: {stats:?}"
    );
}
