//! Batch updates over static RSSE schemes (Section 7 of the paper).
//!
//! Dynamic SSE schemes handle updates with purpose-built dynamic indexes;
//! the paper instead adopts the bulk-loading strategy of large-scale
//! analytic databases (Vertica): updates arrive in **batches**, every batch
//! becomes an independent *static* RSSE instance under a **fresh key**, and
//! instances are periodically **consolidated** (merged, filtered of
//! deletions, and re-encrypted) following a log-structured-merge schedule
//! controlled by the consolidation step `s`.
//!
//! The approach gives *forward privacy* for free: a trapdoor issued against
//! the indexes that existed at time `t` is useless against any index created
//! after `t`, because later batches are encrypted under independent keys.
//! The cost is that a query must be sent to every active instance — the
//! manager keeps their number at `O(s·log_s b)` for `b` ingested batches.
//!
//! [`UpdateManager`] is generic over any [`RangeScheme`], exactly as the
//! paper's mechanism is generic over any static RSSE construction. Every
//! batch build and consolidation rebuild is routed through
//! [`RangeScheme::build_sharded`], so an [`UpdateConfig::shard_bits`]
//! setting gives the manager sharded dictionaries (parallel rebuild
//! assembly, lock-free concurrent searches) for every scheme with a
//! sharded server layout — Logarithmic-BRC/URC, Constant-BRC/URC,
//! Logarithmic-SRC and SRC-i. Schemes without one (Quadratic, PB, the
//! plain-SSE baseline) fall back to the trait's default, which ignores
//! the knob and builds unsharded.
//!
//! [`RangeScheme`]: rsse_core::RangeScheme
//! [`RangeScheme::build_sharded`]: rsse_core::RangeScheme::build_sharded

pub mod batch;
pub mod manager;

pub use batch::{UpdateEntry, UpdateOp};
pub use manager::{UpdateConfig, UpdateManager};
