//! Streaming-updates scenario: nightly batches of inserts, edits and
//! deletions over an encrypted, range-searchable dataset with forward
//! privacy (Section 7 of the paper) — plus a **process restart**: the
//! manager is dropped mid-stream and reopened from its storage root with
//! [`UpdateManager::open_root`], answering byte-identically.
//!
//! Each batch becomes a fresh static index under a fresh key; the manager
//! consolidates batches hierarchically (log-structured merge, step `s`), so
//! the number of live indexes — and therefore per-query overhead — stays
//! logarithmic in the number of batches. With a storage root configured,
//! every instance persists to its own directory next to a `manager.meta`
//! manifest and an encrypted `owner.meta` sidecar per instance, so the
//! owner's whole state survives the process (see `docs/FORMATS.md`).
//!
//! Run with:
//! ```sh
//! cargo run --release --example streaming_updates
//! ```

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse::core::schemes::log_brc_urc::LogScheme;
use rsse::prelude::*;

fn main() {
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let domain = Domain::new(1 << 16);
    let root = std::env::temp_dir().join(format!("rsse-streaming-updates-{}", std::process::id()));
    // The master key sealing the owner's durable state: with the root
    // directory, it is everything a restarted process needs.
    let key = OwnerKey::generate(&mut rng);
    let config = UpdateConfig {
        consolidation_step: 4,
        // Consolidation rebuilds go through the sharded BuildIndex: 2^4
        // label-prefix shards assemble in parallel on every merge.
        shard_bits: 4,
        // Persist every level of the merge hierarchy under one root: each
        // instance streams to its own subdirectory during the build and is
        // served from disk via paged reads.
        storage_root: Some(root.clone()),
        // Bound the resident ciphertext blocks of each persisted instance.
        cache_budget: Some(4 << 20),
        // No memory-budgeted external builds in this small demo; large
        // consolidation rebuilds would set `Some(BuildBudget::with_memory(..))`.
        build_budget: None,
        // Consolidate structurally: merged levels are assembled by copying
        // the input instances' ciphertext verbatim (no decrypt/re-encrypt);
        // schemes that can't merge structurally fall back to rebuilds.
        consolidation_mode: ConsolidationMode::Structural,
    };
    let mut manager: UpdateManager<LogScheme> =
        UpdateManager::with_key(key.clone(), domain, config.clone());

    println!("ingesting 20 nightly batches (consolidation step s = 4, structural merges)\n");
    println!(
        "{:<8} {:>10} {:>16} {:>14} {:>12} {:>10}",
        "night", "live ids", "active indexes", "index entries", "structural", "rebuilds"
    );

    let mut next_id: u64 = 0;
    let mut live: Vec<(u64, u64)> = Vec::new(); // (id, value) the owner knows

    for night in 1..=20u32 {
        let mut batch: Vec<UpdateEntry> = Vec::new();

        // 200 new readings per night.
        for _ in 0..200 {
            let value = rng.gen_range(0..domain.size());
            batch.push(UpdateEntry::insert(next_id, value));
            live.push((next_id, value));
            next_id += 1;
        }
        // A few corrections…
        for _ in 0..5 {
            if live.is_empty() {
                break;
            }
            let idx = rng.gen_range(0..live.len());
            let new_value = rng.gen_range(0..domain.size());
            live[idx].1 = new_value;
            batch.push(UpdateEntry::modify(live[idx].0, new_value));
        }
        // …and a few deletions.
        for _ in 0..10 {
            if live.is_empty() {
                break;
            }
            let idx = rng.gen_range(0..live.len());
            let (id, value) = live.swap_remove(idx);
            batch.push(UpdateEntry::delete(id, value));
        }

        manager.ingest_batch(batch, &mut rng);
        println!(
            "{:<8} {:>10} {:>16} {:>14} {:>12} {:>10}",
            night,
            live.len(),
            manager.active_instances(),
            manager.index_stats().entries,
            manager.structural_consolidations(),
            manager.rebuild_consolidations()
        );
    }

    // Verify a few range queries against the owner's plaintext bookkeeping.
    println!("\nverifying query results against the plaintext state:");
    let check_ranges = [(0u64, 1 << 15), (1 << 14, 3 << 14), (60_000, 65_535)];
    let mut pre_restart: Vec<QueryOutcome> = Vec::new();
    for &(lo, hi) in &check_ranges {
        let range = Range::new(lo, hi);
        let outcome = manager.query(range);
        let mut expected: Vec<u64> = live
            .iter()
            .filter(|(_, v)| range.contains(*v))
            .map(|(id, _)| *id)
            .collect();
        expected.sort_unstable();
        let mut got = outcome.ids.clone();
        got.sort_unstable();
        assert_eq!(got, expected, "range {range} disagreed with ground truth");
        println!(
            "  {range}: {} tuples, {} tokens across {} active indexes",
            expected.len(),
            outcome.stats.tokens_sent,
            manager.active_instances()
        );
        pre_restart.push(outcome);
    }

    // --- Process restart -------------------------------------------------
    // Drop the manager (the "process dies") and reopen the whole thing
    // from the storage root + master key alone: manifest, instance
    // directories and encrypted owner sidecars are all it needs. The
    // reopened manager answers byte-identically — same ids, same order,
    // same per-query stats.
    let instances_before = manager.active_instances();
    drop(manager);
    println!(
        "\nprocess restart: reopening {} instances from {}",
        instances_before,
        root.display()
    );
    let mut manager: UpdateManager<LogScheme> =
        UpdateManager::open_root(key, &root, config).expect("reopen from the storage root");
    assert_eq!(manager.active_instances(), instances_before);
    for (&(lo, hi), expected) in check_ranges.iter().zip(&pre_restart) {
        let outcome = manager.query(Range::new(lo, hi));
        assert_eq!(
            &outcome, expected,
            "reopened manager must answer byte-identically"
        );
    }
    println!(
        "  all {} verification queries answered byte-identically after reopen",
        check_ranges.len()
    );

    // The reopened manager keeps ingesting — night 21 lands in the same
    // merge hierarchy.
    let value = rng.gen_range(0..domain.size());
    manager.ingest_batch(vec![UpdateEntry::insert(next_id, value)], &mut rng);
    live.push((next_id, value));
    println!(
        "  night 21 ingested after the restart: {} active indexes, {} batches total",
        manager.active_instances(),
        manager.batches_ingested()
    );

    println!(
        "\nForward privacy: every batch is encrypted under its own key, so search\n\
         tokens issued before a batch existed cannot decrypt anything inside it.\n\
         Structural consolidation merges levels by copying ciphertext verbatim —\n\
         zero payload decrypt/encrypt calls on the merge path — while the owner's\n\
         sidecar compacts to the deduped latest-per-id update log.\n\
         Durability: the owner's state (seeds + update logs) persists encrypted\n\
         under the master key next to each index — kill the process at any\n\
         point and UpdateManager::open_root self-heals from the root."
    );
    let _ = std::fs::remove_dir_all(&root);
}
