//! Semantically secure symmetric encryption.
//!
//! The schemes need a probabilistic (IND-CPA secure) cipher for two jobs:
//! encrypting the per-document payloads stored in the SSE index, and
//! encrypting the records themselves before outsourcing. The paper uses
//! AES-128-CBC; we use a counter-mode stream cipher whose keystream blocks
//! are PRF evaluations over `(nonce, block counter)` — the textbook
//! PRF-to-IND-CPA construction, so the security argument carries over
//! unchanged.

use crate::prf::{Key, Prf, KEY_LEN};
use rand::{CryptoRng, RngCore};
use std::sync::atomic::{AtomicU64, Ordering};

/// Length of the random per-message nonce, in bytes.
pub const NONCE_LEN: usize = 16;

/// Process-wide count of payload encryption operations (see
/// [`encrypt_call_count`]).
static ENCRYPT_CALLS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of payload decryption operations (see
/// [`decrypt_call_count`]).
static DECRYPT_CALLS: AtomicU64 = AtomicU64::new(0);

/// Number of [`StreamCipher`] encryption operations performed by this
/// process so far, across all threads.
///
/// Instrumentation for tests that pin *where* ciphertext is produced —
/// e.g. that a structural index merge copies ciphertext without
/// re-encrypting. Each of [`StreamCipher::encrypt`],
/// [`StreamCipher::encrypt_to`] and [`StreamCipher::encrypt_with_nonce`]
/// counts as one operation (the randomized entry points delegate to the
/// nonce-explicit one, which is counted exactly once per message). The
/// counter is monotone and relaxed — read a delta around the region under
/// test rather than an absolute value.
pub fn encrypt_call_count() -> u64 {
    ENCRYPT_CALLS.load(Ordering::Relaxed)
}

/// Number of [`StreamCipher`] decryption operations performed by this
/// process so far, across all threads.
///
/// Counterpart of [`encrypt_call_count`]: [`StreamCipher::decrypt`] and
/// [`StreamCipher::decrypt_into`] each count as one operation, whether or
/// not the ciphertext turns out to be well-formed.
pub fn decrypt_call_count() -> u64 {
    DECRYPT_CALLS.load(Ordering::Relaxed)
}

/// Counter-mode stream cipher keyed by a PRF.
#[derive(Clone, Debug)]
pub struct StreamCipher {
    prf: Prf,
}

impl StreamCipher {
    /// Creates a cipher instance under `key`.
    pub fn new(key: &Key) -> Self {
        Self { prf: Prf::new(key) }
    }

    /// Encrypts `plaintext` with a fresh random nonce drawn from `rng`.
    ///
    /// The ciphertext layout is `nonce || (plaintext XOR keystream)`, so it
    /// is exactly `NONCE_LEN` bytes longer than the plaintext.
    pub fn encrypt<R: RngCore + CryptoRng>(&self, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        self.encrypt_with_nonce(&nonce, plaintext)
    }

    /// Encrypts `plaintext` appending the ciphertext to `out` (no per-entry
    /// allocation — the hot path the arena-backed index builds on).
    /// Returns the ciphertext length appended.
    pub fn encrypt_to<R: RngCore + CryptoRng>(
        &self,
        rng: &mut R,
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) -> usize {
        ENCRYPT_CALLS.fetch_add(1, Ordering::Relaxed);
        let start = out.len();
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        out.extend_from_slice(&nonce);
        out.extend_from_slice(plaintext);
        self.xor_keystream(&nonce, &mut out[start + NONCE_LEN..]);
        out.len() - start
    }

    /// Deterministic encryption under an explicit nonce.
    ///
    /// Callers must never reuse a nonce under the same key for different
    /// plaintexts; the randomized [`encrypt`](Self::encrypt) is the default
    /// entry point and the schemes only use this variant in tests.
    pub fn encrypt_with_nonce(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8]) -> Vec<u8> {
        ENCRYPT_CALLS.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::with_capacity(NONCE_LEN + plaintext.len());
        out.extend_from_slice(nonce);
        out.extend_from_slice(plaintext);
        self.xor_keystream(nonce, &mut out[NONCE_LEN..]);
        out
    }

    /// Decrypts a ciphertext produced by [`encrypt`](Self::encrypt).
    ///
    /// Returns `None` if the ciphertext is too short to contain a nonce.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Option<Vec<u8>> {
        DECRYPT_CALLS.fetch_add(1, Ordering::Relaxed);
        if ciphertext.len() < NONCE_LEN {
            return None;
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&ciphertext[..NONCE_LEN]);
        let mut plain = ciphertext[NONCE_LEN..].to_vec();
        self.xor_keystream(&nonce, &mut plain);
        Some(plain)
    }

    /// Buffer-reusing variant of [`decrypt`](Self::decrypt): writes the
    /// plaintext into `out` (cleared first) and returns `false` if the
    /// ciphertext is too short to contain a nonce.
    ///
    /// This is the batched-search hot path: a server answering a whole token
    /// vector decrypts thousands of entries with one scratch buffer instead
    /// of one heap allocation per entry.
    pub fn decrypt_into(&self, ciphertext: &[u8], out: &mut Vec<u8>) -> bool {
        DECRYPT_CALLS.fetch_add(1, Ordering::Relaxed);
        if ciphertext.len() < NONCE_LEN {
            return false;
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&ciphertext[..NONCE_LEN]);
        out.clear();
        out.extend_from_slice(&ciphertext[NONCE_LEN..]);
        self.xor_keystream(&nonce, out);
        true
    }

    /// Ciphertext expansion for a plaintext of `len` bytes.
    pub fn ciphertext_len(len: usize) -> usize {
        len + NONCE_LEN
    }

    fn xor_keystream(&self, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
        let mut block = [0u8; KEY_LEN];
        let mut block_index = 0u64;
        let mut offset = 0usize;
        while offset < data.len() {
            self.prf
                .eval_parts_into(&[nonce, &block_index.to_le_bytes()], &mut block);
            let take = (data.len() - offset).min(KEY_LEN);
            for i in 0..take {
                data[offset + i] ^= block[i];
            }
            offset += take;
            block_index += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn cipher(byte: u8) -> StreamCipher {
        StreamCipher::new(&Key::from_bytes([byte; KEY_LEN]))
    }

    #[test]
    fn roundtrip_small_and_empty() {
        let c = cipher(1);
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        for msg in [&b""[..], b"a", b"hello world", &[0u8; 100]] {
            let ct = c.encrypt(&mut rng, msg);
            assert_eq!(c.decrypt(&ct).unwrap(), msg);
            assert_eq!(ct.len(), StreamCipher::ciphertext_len(msg.len()));
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let c = cipher(2);
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let a = c.encrypt(&mut rng, b"same message");
        let b = c.encrypt(&mut rng, b"same message");
        assert_ne!(a, b, "two encryptions of the same plaintext must differ");
    }

    #[test]
    fn wrong_key_garbles_plaintext() {
        let c1 = cipher(3);
        let c2 = cipher(4);
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let ct = c1.encrypt(&mut rng, b"secret value");
        let wrong = c2.decrypt(&ct).unwrap();
        assert_ne!(wrong, b"secret value");
    }

    #[test]
    fn too_short_ciphertext_is_rejected() {
        let c = cipher(5);
        assert!(c.decrypt(&[0u8; NONCE_LEN - 1]).is_none());
    }

    #[test]
    fn spans_multiple_keystream_blocks() {
        let c = cipher(6);
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let msg = vec![0xA5u8; 3 * KEY_LEN + 7];
        let ct = c.encrypt(&mut rng, &msg);
        assert_eq!(c.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn decrypt_into_matches_decrypt_and_reuses_buffer() {
        let c = cipher(10);
        let mut rng = ChaCha20Rng::seed_from_u64(10);
        let mut scratch = Vec::new();
        for msg in [&b""[..], b"x", b"a longer message spanning blocks....."] {
            let ct = c.encrypt(&mut rng, msg);
            assert!(c.decrypt_into(&ct, &mut scratch));
            assert_eq!(scratch, c.decrypt(&ct).unwrap());
        }
        // Too-short ciphertexts are rejected without touching the contract.
        assert!(!c.decrypt_into(&[0u8; NONCE_LEN - 1], &mut scratch));
    }

    #[test]
    fn call_counters_track_every_entry_point_once() {
        let c = cipher(11);
        let mut rng = ChaCha20Rng::seed_from_u64(11);
        let (e0, d0) = (encrypt_call_count(), decrypt_call_count());
        let ct = c.encrypt(&mut rng, b"counted"); // delegates, counts once
        let mut buf = Vec::new();
        c.encrypt_to(&mut rng, b"counted", &mut buf);
        c.encrypt_with_nonce(&[1u8; NONCE_LEN], b"counted");
        // Other tests in this binary run concurrently and also encrypt, so
        // the deltas are lower bounds; the monotone >= checks still pin
        // that each entry point is counted.
        assert!(encrypt_call_count() >= e0 + 3);
        c.decrypt(&ct).unwrap();
        c.decrypt_into(&ct, &mut buf);
        assert!(decrypt_call_count() >= d0 + 2);
    }

    #[test]
    fn nonce_reuse_is_deterministic() {
        let c = cipher(7);
        let nonce = [9u8; NONCE_LEN];
        assert_eq!(
            c.encrypt_with_nonce(&nonce, b"abc"),
            c.encrypt_with_nonce(&nonce, b"abc")
        );
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..512), seed in any::<u64>()) {
            let c = cipher(8);
            let mut rng = ChaCha20Rng::seed_from_u64(seed);
            let ct = c.encrypt(&mut rng, &data);
            prop_assert_eq!(c.decrypt(&ct).unwrap(), data);
        }

        #[test]
        fn ciphertext_hides_plaintext_prefix(data in proptest::collection::vec(any::<u8>(), 32..64)) {
            // The ciphertext body must not equal the plaintext (keystream is
            // never the all-zero string for a random key).
            let c = cipher(9);
            let mut rng = ChaCha20Rng::seed_from_u64(99);
            let ct = c.encrypt(&mut rng, &data);
            prop_assert_ne!(&ct[NONCE_LEN..], &data[..]);
        }
    }
}
