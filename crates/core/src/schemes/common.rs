//! Helpers shared by the scheme implementations.

use crate::dataset::{decode_id_payload, DocId};
use rand::{CryptoRng, RngCore};
use rayon::prelude::*;
use rsse_cover::{Domain, Range};
use rsse_sse::{
    EncryptedIndex, IndexLookup, SearchToken, ShardedIndex, SseKey, SseScheme, StorageConfig,
    StorageError,
};

/// Token counts at or above this run the per-token searches on all cores.
/// Below it (the Logarithmic schemes' `O(log R)` token vectors) threading
/// overhead would exceed the scan work.
const PARALLEL_SEARCH_TOKENS: usize = 64;

/// Which exact range-covering technique a BRC/URC-based scheme uses for its
/// trapdoors (Section 2.2 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoverKind {
    /// Best Range Cover — minimum number of nodes, leaks range position
    /// through the level profile of the cover.
    Brc,
    /// Uniform Range Cover — worst-case decomposition, level profile depends
    /// only on the range size.
    Urc,
}

impl CoverKind {
    /// Computes the cover of `range` with the selected technique.
    pub fn cover(&self, domain: &Domain, range: Range) -> Vec<rsse_cover::Node> {
        match self {
            CoverKind::Brc => rsse_cover::brc(domain, range),
            CoverKind::Urc => rsse_cover::urc(domain, range),
        }
    }

    /// Scheme-name suffix used in reports ("BRC" / "URC").
    pub fn label(&self) -> &'static str {
        match self {
            CoverKind::Brc => "BRC",
            CoverKind::Urc => "URC",
        }
    }
}

/// Clamps a query range to the domain. Queries entirely outside the domain
/// are answered with `None` (empty result) without contacting the server.
pub fn clamp_query(domain: &Domain, range: Range) -> Option<Range> {
    domain.clamp(range)
}

/// Runs an SSE search for each token and decodes the id payloads, returning
/// the flattened ids together with the per-token group sizes (the result
/// partitioning the server observes). The first storage failure aborts the
/// whole query with its typed error — a failed block read is an error, not
/// an empty group.
///
/// Generic over the dictionary layout ([`EncryptedIndex`] or
/// [`ShardedIndex`]). Large token vectors — the Constant schemes expand a
/// trapdoor into one token per domain value of the range — are searched in
/// parallel; results are merged in token order either way, so the outcome
/// is deterministic.
pub fn try_search_ids<I>(
    index: &I,
    tokens: &[SearchToken],
) -> Result<(Vec<DocId>, Vec<usize>), I::Error>
where
    I: IndexLookup + Sync,
    I::Error: Send,
{
    type TokenResult<E> = Vec<Result<(Vec<DocId>, usize), E>>;
    let per_token: TokenResult<I::Error> = if tokens.len() >= PARALLEL_SEARCH_TOKENS {
        tokens
            .par_iter()
            .map(|token| search_one(index, token))
            .collect()
    } else {
        tokens
            .iter()
            .map(|token| search_one(index, token))
            .collect()
    };
    let mut ids = Vec::new();
    let mut groups = Vec::with_capacity(tokens.len());
    for result in per_token {
        let (token_ids, matched) = result?;
        groups.push(matched);
        ids.extend(token_ids);
    }
    Ok((ids, groups))
}

/// Infallible convenience wrapper over [`try_search_ids`] for analysis
/// helpers and in-memory paths: **panics** if the storage backend fails
/// (which an in-memory index cannot).
pub fn search_ids<I>(index: &I, tokens: &[SearchToken]) -> (Vec<DocId>, Vec<usize>)
where
    I: IndexLookup + Sync,
    I::Error: Send + std::fmt::Debug,
{
    try_search_ids(index, tokens).expect("storage backend failed during search")
}

/// One token's scan: decoded ids plus the raw match count (group sizes
/// count matched entries, decodable or not — e.g. padding dummies).
fn search_one<I: IndexLookup>(
    index: &I,
    token: &SearchToken,
) -> Result<(Vec<DocId>, usize), I::Error> {
    let payloads = SseScheme::search(index, token)?;
    let matched = payloads.len();
    let ids = payloads
        .iter()
        .filter_map(|payload| decode_id_payload(payload))
        .collect();
    Ok((ids, matched))
}

/// Builds an encrypted index from flat `(keyword, payload)` entries with
/// fixed-size keywords and payloads — the BuildIndex fast path shared by
/// the replication-based schemes.
///
/// Semantically equivalent to filling an [`rsse_sse::SseDatabase`], calling
/// `shuffle_lists`, and running `SseScheme::build_index`, but without the
/// byte-keyed `BTreeMap` and the two heap allocations per entry: entries
/// are grouped by one cache-friendly sort of flat arrays, each group is
/// shuffled with the same `(shuffle_key, keyword)`-keyed permutation, and
/// the fixed-stride SSE build encrypts straight out of the payload arrays.
pub fn grouped_fixed_index<const K: usize, const P: usize, R: RngCore + CryptoRng>(
    key: &SseKey,
    shuffle_key: &rsse_crypto::Key,
    entries: Vec<([u8; K], [u8; P])>,
    rng: &mut R,
) -> EncryptedIndex {
    SseScheme::build_index_fixed(key, &grouped_lists(shuffle_key, entries), rng)
}

/// Sharded variant of [`grouped_fixed_index`]: identical grouping, keyed
/// shuffle and per-keyword encryption (and identical RNG consumption, so
/// ciphertexts match byte-for-byte across `shard_bits` values), with the
/// entries distributed over `2^shard_bits` in-memory label-prefix shards
/// assembled in parallel.
pub fn grouped_fixed_index_sharded<const K: usize, const P: usize, R: RngCore + CryptoRng>(
    key: &SseKey,
    shuffle_key: &rsse_crypto::Key,
    entries: Vec<([u8; K], [u8; P])>,
    shard_bits: u32,
    rng: &mut R,
) -> ShardedIndex {
    grouped_fixed_index_stored(
        key,
        shuffle_key,
        entries,
        &StorageConfig::in_memory(shard_bits),
        rng,
    )
    .expect("in-memory build cannot fail")
}

/// Storage-dispatching variant of [`grouped_fixed_index_sharded`]:
/// identical grouping, keyed shuffle, per-keyword encryption and RNG
/// consumption, with the shards assembled in memory or streamed straight to
/// their serialized files as the [`StorageConfig`] backend selects.
///
/// When the configuration carries a [`BuildBudget`](rsse_sse::BuildBudget),
/// the sort-and-group runs through the external-memory spill/merge pipeline
/// instead of in RAM — byte-identical output, peak RSS bounded by the
/// budget rather than `entries.len()`.
pub fn grouped_fixed_index_stored<const K: usize, const P: usize, R: RngCore + CryptoRng>(
    key: &SseKey,
    shuffle_key: &rsse_crypto::Key,
    entries: Vec<([u8; K], [u8; P])>,
    config: &StorageConfig,
    rng: &mut R,
) -> Result<ShardedIndex, StorageError> {
    if config.build_budget.is_some() {
        return rsse_sse::build_index_fixed_external(key, shuffle_key, entries, config, rng);
    }
    SseScheme::build_index_fixed_stored(key, &grouped_lists(shuffle_key, entries), config, rng)
}

/// Streaming variant of [`grouped_fixed_index_stored`] for budgeted
/// builds: takes the `(keyword, payload)` entries as an iterator, so the
/// caller never materializes the transformed corpus at all (the Log/SRC
/// schemes generate entries on the fly from records × covering nodes).
/// Falls back to collecting into the in-RAM grouped build when the
/// configuration carries no budget.
pub fn grouped_fixed_index_external<const K: usize, const P: usize, R: RngCore + CryptoRng>(
    key: &SseKey,
    shuffle_key: &rsse_crypto::Key,
    entries: impl IntoIterator<Item = ([u8; K], [u8; P])>,
    config: &StorageConfig,
    rng: &mut R,
) -> Result<ShardedIndex, StorageError> {
    if config.build_budget.is_some() {
        return rsse_sse::build_index_fixed_external(key, shuffle_key, entries, config, rng);
    }
    grouped_fixed_index_stored(key, shuffle_key, entries.into_iter().collect(), config, rng)
}

/// The grouping core shared by the two builds above: sort flat entries by
/// (keyword, payload) — groups become contiguous and the total order keeps
/// the build deterministic — then apply the `(shuffle_key, keyword)`-keyed
/// permutation that sets each list's final storage order, exactly as
/// `SseDatabase::shuffle_lists` did.
fn grouped_lists<const K: usize, const P: usize>(
    shuffle_key: &rsse_crypto::Key,
    mut entries: Vec<([u8; K], [u8; P])>,
) -> Vec<(Vec<u8>, Vec<[u8; P]>)> {
    entries.sort_unstable();
    let mut lists: Vec<(Vec<u8>, Vec<[u8; P]>)> = Vec::new();
    for (keyword, payload) in entries {
        match lists.last_mut() {
            Some((last, payloads)) if last.as_slice() == keyword.as_slice() => {
                payloads.push(payload);
            }
            _ => lists.push((keyword.to_vec(), vec![payload])),
        }
    }
    for (keyword, payloads) in lists.iter_mut() {
        rsse_crypto::permute::keyed_shuffle(shuffle_key, keyword, payloads);
    }
    lists
}

/// Encodes a `(value, start, end)` triple — the "(domain value, tuple
/// range)" documents indexed by Logarithmic-SRC-i's first index — as a
/// 24-byte payload.
pub fn encode_value_span(value: u64, start: u64, end: u64) -> Vec<u8> {
    encode_value_span_array(value, start, end).to_vec()
}

/// Allocation-free variant of [`encode_value_span`] for the fixed-stride
/// BuildIndex fast path.
pub fn encode_value_span_array(value: u64, start: u64, end: u64) -> [u8; 24] {
    let mut out = [0u8; 24];
    out[0..8].copy_from_slice(&value.to_le_bytes());
    out[8..16].copy_from_slice(&start.to_le_bytes());
    out[16..24].copy_from_slice(&end.to_le_bytes());
    out
}

/// Decodes a payload produced by [`encode_value_span`].
pub fn decode_value_span(payload: &[u8]) -> Option<(u64, u64, u64)> {
    if payload.len() != 24 {
        return None;
    }
    let value = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let start = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let end = u64::from_le_bytes(payload[16..24].try_into().ok()?);
    Some((value, start, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rsse_sse::SseDatabase;

    #[test]
    fn cover_kind_dispatches() {
        let domain = Domain::new(8);
        let range = Range::new(2, 7);
        assert_eq!(CoverKind::Brc.cover(&domain, range).len(), 2);
        assert_eq!(CoverKind::Urc.cover(&domain, range).len(), 4);
        assert_eq!(CoverKind::Brc.label(), "BRC");
        assert_eq!(CoverKind::Urc.label(), "URC");
    }

    #[test]
    fn clamp_query_filters_out_of_domain() {
        let domain = Domain::new(10);
        assert_eq!(
            clamp_query(&domain, Range::new(5, 100)),
            Some(Range::new(5, 9))
        );
        assert_eq!(clamp_query(&domain, Range::new(50, 100)), None);
    }

    #[test]
    fn value_span_roundtrip() {
        let encoded = encode_value_span(7, 100, 200);
        assert_eq!(encoded.len(), 24);
        assert_eq!(decode_value_span(&encoded), Some((7, 100, 200)));
        assert_eq!(decode_value_span(b"short"), None);
    }

    #[test]
    fn search_ids_groups_by_token() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let key = SseScheme::setup(&mut rng);
        let mut db = SseDatabase::new();
        db.add(b"a".to_vec(), 1u64.to_le_bytes().to_vec());
        db.add(b"a".to_vec(), 2u64.to_le_bytes().to_vec());
        db.add(b"b".to_vec(), 3u64.to_le_bytes().to_vec());
        let index = SseScheme::build_index(&key, &db, &mut rng);
        let tokens = vec![
            SseScheme::trapdoor(&key, b"a"),
            SseScheme::trapdoor(&key, b"b"),
            SseScheme::trapdoor(&key, b"missing"),
        ];
        let (ids, groups) = search_ids(&index, &tokens);
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(groups, vec![2, 1, 0]);
    }
}
