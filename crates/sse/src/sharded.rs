//! Label-prefix sharding of the encrypted dictionary.
//!
//! [`ShardedIndex`] splits the flat dictionary of
//! [`EncryptedIndex`] into `2^k` **shards keyed by
//! the top `k` bits of the label**: shard `s` owns every entry whose label
//! prefix is `s`, with its own ciphertext arena and offset table. Because
//! labels are owner-side PRF outputs (computationally indistinguishable
//! from uniform — see the [`pibas`](crate::pibas) module docs), the prefix
//! partition is automatically balanced, and revealing which shard an entry
//! lives in reveals exactly the label prefix the server could read off the
//! flat dictionary anyway: sharding changes the storage layout, not the
//! leakage profile.
//!
//! What sharding buys:
//!
//! * **Fully parallel BuildIndex assembly.** The single-arena build ends in
//!   one sequential "append every chunk to the arena" pass; the sharded
//!   build replaces it with one *independent* assembly job per shard (after
//!   a cheap index-scatter pass), so the byte-copying and table insertion
//!   fan out across cores with no final single-threaded append.
//! * **Lock-free concurrent reads.** Shards are plain immutable structs
//!   behind `&self`; any number of query threads can probe any shards
//!   simultaneously with no synchronization whatsoever.
//! * **Bounded arenas.** Each shard has its own 4 GiB arena limit, so
//!   `k` shard bits raise the per-index ciphertext capacity `2^k`-fold.
//! * **Probe locality for batched search.** [`IndexLookup::get_many`]
//!   groups a probe vector by shard, so consecutive lookups hit the same
//!   (much smaller) table.
//!
//! With `k = 0` the index is a single shard whose arena and table are
//! **byte-identical** to the unsharded [`EncryptedIndex`] build — the
//! property test `unsharded_is_byte_identical_to_plain_arena` pins this, so
//! the sharded type is a strict generalization, not a fork.

use crate::database::SseDatabase;
use crate::pibas::{
    merge_chunks, EncryptedIndex, IndexLookup, KeywordChunk, Label, SearchToken, SseKey,
    SseScheme,
};
use rand::{CryptoRng, RngCore};
use rayon::prelude::*;

/// Maximum supported shard bits (`2^16` shards). Past this point per-shard
/// bookkeeping dominates any conceivable parallelism win.
pub const MAX_SHARD_BITS: u32 = 16;

/// Returns the shard (top `bits` bits of the label, read big-endian) an
/// entry with this label belongs to. `bits == 0` maps everything to shard 0.
fn shard_of_label(label: &Label, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    let prefix = u64::from_be_bytes(label[..8].try_into().expect("labels are 16 bytes"));
    (prefix >> (64 - bits)) as usize
}

/// An encrypted dictionary split into `2^k` label-prefix-keyed shards, each
/// an independent ciphertext arena plus offset table.
///
/// Searched with the exact same tokens and algorithms as the flat
/// [`EncryptedIndex`] — every search entry point is generic over
/// [`IndexLookup`] — and guaranteed to hold the same `(label, ciphertext)`
/// pairs for the same build inputs, whatever `k` is.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rsse_sse::{SseDatabase, SseScheme};
///
/// let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(1);
/// let key = SseScheme::setup(&mut rng);
/// let mut db = SseDatabase::new();
/// for i in 0..100u64 {
///     db.add(b"w".to_vec(), i.to_le_bytes().to_vec());
/// }
///
/// // 2^4 = 16 shards; entries distribute by label prefix.
/// let index = SseScheme::build_index_sharded(&key, &db, 4, &mut rng);
/// assert_eq!(index.shard_count(), 16);
/// assert_eq!(index.len(), 100);
///
/// // Same search API as the unsharded index.
/// let token = SseScheme::trapdoor(&key, b"w");
/// assert_eq!(SseScheme::search(&index, &token).len(), 100);
/// ```
#[derive(Clone, Debug)]
pub struct ShardedIndex {
    /// Number of label-prefix bits selecting the shard (`k`).
    bits: u32,
    /// The `2^k` shards, indexed by label prefix.
    shards: Vec<EncryptedIndex>,
}

impl Default for ShardedIndex {
    /// An empty unsharded (`k = 0`) index.
    fn default() -> Self {
        Self {
            bits: 0,
            shards: vec![EncryptedIndex::default()],
        }
    }
}

impl ShardedIndex {
    /// The number of label-prefix bits selecting a shard (`k`).
    pub fn shard_bits(&self) -> u32 {
        self.bits
    }

    /// The number of shards (`2^k`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, indexed by label prefix.
    pub fn shards(&self) -> &[EncryptedIndex] {
        &self.shards
    }

    /// The shard an entry with this label would live in.
    pub fn shard_of(&self, label: &Label) -> usize {
        shard_of_label(label, self.bits)
    }

    /// Total number of entries across all shards (the index-size leakage,
    /// identical to the unsharded build's).
    pub fn len(&self) -> usize {
        self.shards.iter().map(EncryptedIndex::len).sum()
    }

    /// Whether no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(EncryptedIndex::is_empty)
    }

    /// Approximate server-side storage footprint in bytes
    /// (labels + encrypted payloads, summed over shards).
    pub fn storage_bytes(&self) -> usize {
        self.shards.iter().map(EncryptedIndex::storage_bytes).sum()
    }

    /// Looks up the ciphertext stored under `label` in its shard.
    pub fn get(&self, label: &Label) -> Option<&[u8]> {
        self.shards[self.shard_of(label)].get(label)
    }

    /// Iterates over all stored ciphertexts (shard order; used by
    /// leakage-oriented tests).
    pub fn ciphertexts(&self) -> impl Iterator<Item = &[u8]> {
        self.shards.iter().flat_map(EncryptedIndex::ciphertexts)
    }
}

impl IndexLookup for ShardedIndex {
    fn get(&self, label: &Label) -> Option<&[u8]> {
        ShardedIndex::get(self, label)
    }

    /// Shard-grouped probe resolution: large probe vectors are visited in
    /// shard order so consecutive lookups hit the same (small) table, then
    /// results are written back in probe order. Small rounds — where the
    /// grouping bookkeeping would cost more than the locality buys — probe
    /// directly in input order.
    fn get_many<'a>(&'a self, labels: &[Label], out: &mut Vec<Option<&'a [u8]>>) {
        /// Probe counts below this skip the sort-by-shard pass.
        const GROUP_THRESHOLD: usize = 64;

        out.clear();
        if self.bits == 0 || labels.len() < GROUP_THRESHOLD {
            out.extend(labels.iter().map(|label| self.get(label)));
            return;
        }
        out.resize(labels.len(), None);
        let mut order: Vec<(u32, u32)> = labels
            .iter()
            .enumerate()
            .map(|(slot, label)| (self.shard_of(label) as u32, slot as u32))
            .collect();
        order.sort_unstable();
        for (shard, slot) in order {
            out[slot as usize] = self.shards[shard as usize].get(&labels[slot as usize]);
        }
    }
}

/// Distributes per-keyword chunks over `2^bits` shards and assembles every
/// shard's arena + table **in parallel**.
///
/// Three passes:
/// 1. per-entry shard ids, computed in parallel across chunks;
/// 2. a cheap sequential scatter building each shard's member list (indices
///    only — no ciphertext bytes move here) together with its exact entry
///    and byte tallies;
/// 3. one independent assembly job per shard, in parallel: append the
///    member ciphertexts to the shard arena (pre-sized exactly) and insert
///    the labels.
///
/// Entries keep the global `(keyword, counter)` order within each shard, so
/// the result is deterministic regardless of thread scheduling, and with
/// `bits == 0` the single shard is produced by the exact same
/// [`merge_chunks`] pass as the unsharded build — byte-identical output.
pub(crate) fn shard_chunks(bits: u32, chunks: Vec<KeywordChunk>) -> ShardedIndex {
    assert!(
        bits <= MAX_SHARD_BITS,
        "shard bits {bits} exceeds MAX_SHARD_BITS ({MAX_SHARD_BITS})"
    );
    if bits == 0 {
        return ShardedIndex {
            bits,
            shards: vec![merge_chunks(chunks)],
        };
    }
    let shard_count = 1usize << bits;

    // Pass 1: per-entry shard ids (parallel across chunks).
    let shard_ids: Vec<Vec<u16>> = chunks
        .par_iter()
        .map(|chunk| {
            chunk
                .labels
                .iter()
                .map(|label| shard_of_label(label, bits) as u16)
                .collect()
        })
        .collect();

    // Pass 2: index scatter. Only (chunk, entry) index pairs move here —
    // O(entries) u32 writes — not ciphertext bytes; the byte copying below
    // is fully parallel per shard.
    let mut members: Vec<Vec<(u32, u32)>> = (0..shard_count).map(|_| Vec::new()).collect();
    let mut arena_bytes: Vec<usize> = vec![0; shard_count];
    for (c, ids) in shard_ids.iter().enumerate() {
        for (e, &shard) in ids.iter().enumerate() {
            members[shard as usize].push((c as u32, e as u32));
            arena_bytes[shard as usize] += chunks[c].spans[e].1 as usize;
        }
    }

    // Pass 3: per-shard assembly (parallel across shards, lock-free — each
    // job reads the shared chunks and writes only its own shard).
    let jobs: Vec<(Vec<(u32, u32)>, usize)> = members.into_iter().zip(arena_bytes).collect();
    let shards: Vec<EncryptedIndex> = jobs
        .into_par_iter()
        .map(|(member_list, bytes)| {
            let mut shard = EncryptedIndex::with_capacity(member_list.len(), bytes);
            for (c, e) in member_list {
                let chunk = &chunks[c as usize];
                let (offset, len) = chunk.spans[e as usize];
                shard.append_entry(
                    chunk.labels[e as usize],
                    &chunk.buf[offset as usize..(offset + len) as usize],
                );
            }
            shard
        })
        .collect();
    ShardedIndex { bits, shards }
}

impl SseScheme {
    /// Sharded variant of [`build_index`](Self::build_index): same
    /// per-keyword encryption (and the same RNG consumption — one nonce
    /// seed per keyword, so ciphertexts are identical for every
    /// `shard_bits`), but the entries are distributed over `2^shard_bits`
    /// label-prefix shards assembled in parallel.
    pub fn build_index_sharded<R: RngCore + CryptoRng>(
        key: &SseKey,
        database: &SseDatabase,
        shard_bits: u32,
        rng: &mut R,
    ) -> ShardedIndex {
        shard_chunks(shard_bits, Self::chunks_from_database(key, database, rng))
    }

    /// Sharded variant of
    /// [`build_index_from_token_lists`](Self::build_index_from_token_lists).
    pub fn build_index_from_token_lists_sharded<R: RngCore + CryptoRng>(
        lists: &[(SearchToken, Vec<Vec<u8>>)],
        shard_bits: u32,
        rng: &mut R,
    ) -> ShardedIndex {
        shard_chunks(shard_bits, Self::chunks_from_token_lists(lists, rng))
    }

    /// Sharded variant of [`build_index_fixed`](Self::build_index_fixed) —
    /// the fast path the range schemes' sharded constructors use.
    pub fn build_index_fixed_sharded<const P: usize, R: RngCore + CryptoRng>(
        key: &SseKey,
        lists: &[(Vec<u8>, Vec<[u8; P]>)],
        shard_bits: u32,
        rng: &mut R,
    ) -> ShardedIndex {
        shard_chunks(shard_bits, Self::chunks_from_fixed(key, lists, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pibas::LABEL_LEN;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rsse_crypto::{Key, KEY_LEN};

    fn db_from(entries: &[(Vec<u8>, Vec<u8>)]) -> SseDatabase {
        let mut db = SseDatabase::new();
        for (k, v) in entries {
            db.add(k.clone(), v.clone());
        }
        db
    }

    #[test]
    fn shard_of_label_uses_top_bits() {
        let mut label = [0u8; LABEL_LEN];
        label[0] = 0b1010_0000;
        assert_eq!(shard_of_label(&label, 0), 0);
        assert_eq!(shard_of_label(&label, 1), 1);
        assert_eq!(shard_of_label(&label, 3), 0b101);
        assert_eq!(shard_of_label(&label, 8), 0b1010_0000);
    }

    #[test]
    fn default_is_an_empty_unsharded_index() {
        let index = ShardedIndex::default();
        assert_eq!(index.shard_bits(), 0);
        assert_eq!(index.shard_count(), 1);
        assert!(index.is_empty());
        assert_eq!(index.len(), 0);
        assert_eq!(index.get(&[0u8; LABEL_LEN]), None);
    }

    #[test]
    fn entries_land_in_their_prefix_shard() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let key = SseScheme::setup(&mut rng);
        let db = db_from(
            &(0..64u64)
                .map(|i| (format!("kw{}", i % 8).into_bytes(), i.to_le_bytes().to_vec()))
                .collect::<Vec<_>>(),
        );
        let index = SseScheme::build_index_sharded(&key, &db, 4, &mut rng);
        assert_eq!(index.shard_count(), 16);
        assert_eq!(index.len(), 64);
        // Every shard's entries carry that shard's label prefix, and every
        // keyword remains fully searchable across the shard split.
        for shard in index.shards() {
            for label in shard.table_raw().keys() {
                assert_eq!(&index.shards()[index.shard_of(label)] as *const _, shard as *const _);
            }
        }
        for kw in 0..8u64 {
            let token = SseScheme::trapdoor(&key, format!("kw{kw}").as_bytes());
            assert_eq!(SseScheme::search(&index, &token).len(), 8);
        }
    }

    #[test]
    fn search_batch_scan_counts_match_per_token_counts() {
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let key = SseScheme::setup(&mut rng);
        let db = db_from(
            &(0..40u64)
                .map(|i| (format!("kw{}", i % 5).into_bytes(), i.to_le_bytes().to_vec()))
                .collect::<Vec<_>>(),
        );
        let index = SseScheme::build_index_sharded(&key, &db, 3, &mut rng);
        let tokens: Vec<SearchToken> = (0..6u64)
            .map(|kw| SseScheme::trapdoor(&key, format!("kw{kw}").as_bytes()))
            .collect();
        let counts = SseScheme::search_batch_scan(&index, &tokens, |_, _| {});
        let expected: Vec<usize> = tokens
            .iter()
            .map(|t| SseScheme::search_count(&index, t))
            .collect();
        assert_eq!(counts, expected);
        assert_eq!(counts, vec![8, 8, 8, 8, 8, 0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The ISSUE's acceptance property: a `shard_bits = 0` ShardedIndex
        /// is **byte-identical** to the PR 1 arena-backed `EncryptedIndex` —
        /// same arena bytes, same offset table — given the same key and RNG
        /// stream.
        #[test]
        fn unsharded_is_byte_identical_to_plain_arena(entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..6),
             proptest::collection::vec(any::<u8>(), 0..32)), 0..60),
            seed in any::<u64>())
        {
            let db = db_from(&entries);
            let key = SseScheme::key_from(Key::from_bytes([0x5A; KEY_LEN]));

            let mut rng_flat = ChaCha20Rng::seed_from_u64(seed);
            let flat = SseScheme::build_index(&key, &db, &mut rng_flat);
            let mut rng_sharded = ChaCha20Rng::seed_from_u64(seed);
            let sharded = SseScheme::build_index_sharded(&key, &db, 0, &mut rng_sharded);

            prop_assert_eq!(sharded.shard_count(), 1);
            let shard = &sharded.shards()[0];
            prop_assert_eq!(shard.arena_bytes_raw(), flat.arena_bytes_raw(),
                "k=0 shard arena must be byte-identical to the flat arena");
            prop_assert_eq!(shard.table_raw(), flat.table_raw(),
                "k=0 shard offset table must equal the flat table");
        }

        /// Sharding is layout-only: for arbitrary multimaps and any k, the
        /// sharded index stores the same (label, ciphertext) pairs as the
        /// k=0 build and answers every keyword search identically.
        #[test]
        fn sharded_search_equals_unsharded_for_random_datasets(entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..5),
             proptest::collection::vec(any::<u8>(), 0..24)), 0..50),
            bits in 1u32..9,
            seed in any::<u64>())
        {
            let db = db_from(&entries);
            let key = SseScheme::key_from(Key::from_bytes([0xC3; KEY_LEN]));

            let mut rng_flat = ChaCha20Rng::seed_from_u64(seed);
            let flat = SseScheme::build_index_sharded(&key, &db, 0, &mut rng_flat);
            let mut rng_sharded = ChaCha20Rng::seed_from_u64(seed);
            let sharded = SseScheme::build_index_sharded(&key, &db, bits, &mut rng_sharded);

            prop_assert_eq!(sharded.len(), flat.len());
            prop_assert_eq!(sharded.storage_bytes(), flat.storage_bytes());
            // Entry-level equality: every label resolves to the same bytes.
            for shard in flat.shards() {
                for label in shard.table_raw().keys() {
                    prop_assert_eq!(sharded.get(label), flat.get(label));
                }
            }
            // Search-level equality, per-token and batched.
            let tokens: Vec<SearchToken> = db.iter()
                .map(|(kw, _)| SseScheme::trapdoor(&key, kw))
                .collect();
            for token in &tokens {
                prop_assert_eq!(
                    SseScheme::search(&sharded, token),
                    SseScheme::search(&flat, token)
                );
            }
            let batched = SseScheme::search_batch(&sharded, &tokens);
            let per_token: Vec<Vec<Vec<u8>>> = tokens.iter()
                .map(|t| SseScheme::search(&flat, t))
                .collect();
            prop_assert_eq!(batched, per_token);
        }

        /// Regression: `search_batch` on a *shuffled* token vector returns,
        /// per token, exactly what per-token `search` returns — so the
        /// result multiset over the whole vector is independent of token
        /// order and of batching.
        #[test]
        fn search_batch_on_shuffled_tokens_matches_per_token_search(
            entries in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..4),
                 proptest::collection::vec(any::<u8>(), 0..16)), 0..40),
            bits in 0u32..7,
            by in 0usize..13,
            seed in any::<u64>())
        {
            let db = db_from(&entries);
            let mut rng = ChaCha20Rng::seed_from_u64(seed);
            let key = SseScheme::setup(&mut rng);
            let index = SseScheme::build_index_sharded(&key, &db, bits, &mut rng);

            // Tokens for every keyword plus two absent ones, then shuffled
            // (deterministic rotation + reversal keeps proptest shrinking sane).
            let mut tokens: Vec<SearchToken> = db.iter()
                .map(|(kw, _)| SseScheme::trapdoor(&key, kw))
                .collect();
            tokens.push(SseScheme::trapdoor(&key, b"absent-1"));
            tokens.push(SseScheme::trapdoor(&key, b"absent-2"));
            let split = by % tokens.len().max(1);
            tokens.rotate_left(split);
            tokens.reverse();

            let batched = SseScheme::search_batch(&index, &tokens);
            let per_token: Vec<Vec<Vec<u8>>> = tokens.iter()
                .map(|t| SseScheme::search(&index, t))
                .collect();
            prop_assert_eq!(&batched, &per_token, "per-token results must be identical");

            // Multiset equality over the flattened result vector.
            let mut flat_batched: Vec<Vec<u8>> = batched.into_iter().flatten().collect();
            let mut flat_single: Vec<Vec<u8>> = per_token.into_iter().flatten().collect();
            flat_batched.sort();
            flat_single.sort();
            prop_assert_eq!(flat_batched, flat_single);
        }
    }
}
