//! Keyed pseudorandom permutations of in-memory sequences.
//!
//! Several places in the paper require a *random permutation* whose
//! randomness must not be visible to the server: the documents associated
//! with the same keyword are shuffled before `BuildIndex` (Logarithmic
//! schemes, SRC-i), and the token vectors output by `Trpdr` are shuffled so
//! the server cannot tell which sub-range each token corresponds to.
//!
//! [`keyed_shuffle`] implements a Fisher–Yates shuffle driven by a PRF
//! keystream, so the permutation is (a) pseudorandom to anyone without the
//! key and (b) reproducible by the owner, which keeps `BuildIndex`
//! deterministic given its key — convenient for testing and for the
//! update-manager's re-build during consolidation.
//! [`rng_shuffle`] is the plain randomized variant used when the permutation
//! never needs to be reproduced.

use crate::prf::{Key, Prf};
use rand::seq::SliceRandom;
use rand::RngCore;

/// Deterministically shuffles `items` using a PRF keyed by `key` and
/// domain-separated by `label`.
///
/// Swap indices come from a PRF *keystream* — each 32-byte PRF output
/// yields four `u64` draws — rather than one PRF evaluation per swap, so a
/// length-`n` shuffle costs `⌈(n−1)/4⌉` PRF calls on a cached key state.
/// The Logarithmic schemes shuffle every keyword list during BuildIndex
/// (`n · log m` elements in total), which makes this one of the three
/// PRF-bound build phases.
pub fn keyed_shuffle<T>(key: &Key, label: &[u8], items: &mut [T]) {
    if items.len() <= 1 {
        return;
    }
    let prf = Prf::new(key);
    let mut block = [0u8; 32];
    let mut block_index = 0u64;
    let mut used = 4usize; // draws consumed from `block`; 4 = refill needed
                           // Fisher–Yates: for i from n-1 down to 1, swap items[i] with items[j],
                           // j uniform in 0..=i derived from the PRF stream.
    for i in (1..items.len()).rev() {
        if used == 4 {
            prf.eval_parts_into(&[label, &block_index.to_le_bytes()], &mut block);
            block_index += 1;
            used = 0;
        }
        let mut word = [0u8; 8];
        word.copy_from_slice(&block[8 * used..8 * used + 8]);
        used += 1;
        let j = (u64::from_le_bytes(word) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Shuffles `items` with a caller-provided RNG (non-reproducible variant).
pub fn rng_shuffle<T, R: RngCore>(rng: &mut R, items: &mut [T]) {
    items.shuffle(rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prf::KEY_LEN;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use std::collections::HashSet;

    fn key(byte: u8) -> Key {
        Key::from_bytes([byte; KEY_LEN])
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut items: Vec<u32> = (0..100).collect();
        keyed_shuffle(&key(1), b"docs", &mut items);
        let set: HashSet<_> = items.iter().copied().collect();
        assert_eq!(set.len(), 100);
        assert!((0..100).all(|v| set.contains(&v)));
    }

    #[test]
    fn shuffle_is_deterministic_per_key_and_label() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        keyed_shuffle(&key(2), b"x", &mut a);
        keyed_shuffle(&key(2), b"x", &mut b);
        assert_eq!(a, b);

        let mut c: Vec<u32> = (0..50).collect();
        keyed_shuffle(&key(2), b"y", &mut c);
        assert_ne!(a, c, "different labels must give different permutations");

        let mut d: Vec<u32> = (0..50).collect();
        keyed_shuffle(&key(3), b"x", &mut d);
        assert_ne!(a, d, "different keys must give different permutations");
    }

    #[test]
    fn tiny_inputs_are_handled() {
        let mut empty: Vec<u8> = vec![];
        keyed_shuffle(&key(4), b"l", &mut empty);
        assert!(empty.is_empty());
        let mut one = vec![42];
        keyed_shuffle(&key(4), b"l", &mut one);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn rng_shuffle_is_a_permutation() {
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let mut items: Vec<u32> = (0..64).collect();
        rng_shuffle(&mut rng, &mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_actually_moves_elements() {
        // With 64 elements the probability that a pseudorandom permutation is
        // the identity is negligible; treat identity as a failure.
        let mut items: Vec<u32> = (0..64).collect();
        keyed_shuffle(&key(6), b"move", &mut items);
        assert_ne!(items, (0..64).collect::<Vec<_>>());
    }

    proptest! {
        #[test]
        fn arbitrary_inputs_stay_permutations(mut items in proptest::collection::vec(any::<u16>(), 0..128),
                                              key_byte in any::<u8>()) {
            let mut original = items.clone();
            keyed_shuffle(&key(key_byte), b"prop", &mut items);
            original.sort_unstable();
            items.sort_unstable();
            prop_assert_eq!(items, original);
        }
    }
}
