//! # rsse — Practical Private Range Search
//!
//! A Rust implementation of the Range Searchable Symmetric Encryption (RSSE)
//! framework of *Practical Private Range Search Revisited* (Demertzis,
//! Papadopoulos, Papapetrou, Deligiannakis, Garofalakis — SIGMOD 2016).
//!
//! This umbrella crate re-exports the public API of the workspace crates so
//! downstream users need a single dependency:
//!
//! * [`core`](mod@core) — the RSSE schemes (Quadratic, Constant-BRC/URC,
//!   Logarithmic-BRC/URC/SRC/SRC-i, the PB baseline and a per-value SSE
//!   baseline), the [`RangeScheme`] trait, datasets and metrics;
//! * [`cover`] — range-covering structures (BRC, URC, TDAG, SRC);
//! * [`sse`] — the underlying single-keyword SSE (encrypted multimap);
//! * [`crypto`] — PRF, GGM, delegatable PRF, stream cipher;
//! * [`bloom`] — keyed Bloom filters (used by the PB baseline);
//! * [`serve`] — the resilient serving layer (admission control, deadlines,
//!   retry budgets, per-shard circuit breakers);
//! * [`updates`] — batch updates with forward privacy (LSM consolidation);
//! * [`workload`] — synthetic Gowalla-like / USPS-like dataset and query
//!   generators used by the experiment harness.
//!
//! ## Quick start
//!
//! ```
//! use rsse::prelude::*;
//! use rand::SeedableRng;
//!
//! // A dataset of (id, value) tuples over a 2^16-value domain.
//! let domain = Domain::new(1 << 16);
//! let records: Vec<Record> = (0..1000).map(|i| Record::new(i, (i * 61) % (1 << 16))).collect();
//! let dataset = Dataset::new(domain, records).unwrap();
//!
//! // Build the paper's recommended scheme (Logarithmic-SRC-i) and query it.
//! let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(7);
//! let scheme = AnyScheme::build(SchemeKind::LogarithmicSrcI, &dataset, &mut rng);
//! let outcome = scheme.query(Range::new(100, 5_000));
//!
//! // Every matching tuple is returned (false positives are possible, false
//! // negatives are not).
//! let expected = dataset.matching_ids(Range::new(100, 5_000));
//! let eval = Evaluation::compare(&outcome.ids, &expected);
//! assert!(eval.is_complete());
//! ```

#![deny(missing_docs)]

pub use rsse_bloom as bloom;
pub use rsse_core as core;
pub use rsse_cover as cover;
pub use rsse_crypto as crypto;
pub use rsse_serve as serve;
pub use rsse_sse as sse;
pub use rsse_updates as updates;
pub use rsse_workload as workload;

pub use rsse_core::RangeScheme;
pub use rsse_core::{Dataset, DocId, Evaluation, IndexStats, QueryOutcome, QueryStats, Record};
pub use rsse_cover::{Domain, Range};

/// The most common imports, bundled.
pub mod prelude {
    pub use rsse_core::schemes::{AnyScheme, CoverKind, SchemeKind};
    pub use rsse_core::{
        Dataset, DocId, Evaluation, IndexStats, QueryOutcome, QueryServer, QueryStats, RangeScheme,
        Record,
    };
    pub use rsse_cover::{Domain, Range};
    pub use rsse_serve::{ResilientServer, ServeConfig, ServeError};
    pub use rsse_sse::ShardedIndex;
    pub use rsse_updates::{
        ConsolidationMode, OwnerKey, UpdateConfig, UpdateEntry, UpdateManager, UpdateOp,
    };
    pub use rsse_workload::{gowalla_like, usps_like, DatasetProfile};
}
