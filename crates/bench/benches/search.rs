//! Criterion micro-bench behind Figure 7: server search time per scheme, on
//! a near-uniform and a skewed dataset, for a small and a large range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse_core::schemes::{AnyScheme, SchemeKind};
use rsse_cover::Range;
use rsse_workload::{gowalla_like, usps_like};
use std::time::Duration;

fn bench_search(c: &mut Criterion) {
    let mut rng = ChaCha20Rng::seed_from_u64(3);
    let domain_size = 1u64 << 16;
    let datasets = [
        ("gowalla", gowalla_like(4_000, domain_size, &mut rng)),
        ("usps", usps_like(4_000, domain_size, &mut rng)),
    ];
    let kinds = [
        SchemeKind::ConstantBrc,
        SchemeKind::LogarithmicBrc,
        SchemeKind::LogarithmicUrc,
        SchemeKind::LogarithmicSrc,
        SchemeKind::LogarithmicSrcI,
        SchemeKind::Pb,
    ];

    for (label, dataset) in &datasets {
        let schemes: Vec<AnyScheme> = kinds
            .iter()
            .map(|k| AnyScheme::build(*k, dataset, &mut rng))
            .collect();
        let mut group = c.benchmark_group(format!("search_{label}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
        // 1% and 10% of the domain, placed mid-domain.
        for pct in [1u64, 10] {
            let len = domain_size * pct / 100;
            let lo = domain_size / 3;
            let query = Range::new(lo, lo + len - 1);
            for scheme in &schemes {
                group.bench_with_input(
                    BenchmarkId::new(scheme.name(), format!("{pct}%")),
                    &query,
                    |b, query| b.iter(|| scheme.query(*query)),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
