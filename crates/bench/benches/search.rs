//! Criterion micro-bench behind Figure 7: server search time per scheme, on
//! a near-uniform and a skewed dataset, for a small and a large range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse_core::schemes::{AnyScheme, SchemeKind};
use rsse_cover::Range;
use rsse_workload::{gowalla_like, usps_like};
use std::time::Duration;

fn bench_search(c: &mut Criterion) {
    let mut rng = ChaCha20Rng::seed_from_u64(3);
    let domain_size = 1u64 << 16;
    let datasets = [
        ("gowalla", gowalla_like(4_000, domain_size, &mut rng)),
        ("usps", usps_like(4_000, domain_size, &mut rng)),
    ];
    let kinds = [
        SchemeKind::ConstantBrc,
        SchemeKind::LogarithmicBrc,
        SchemeKind::LogarithmicUrc,
        SchemeKind::LogarithmicSrc,
        SchemeKind::LogarithmicSrcI,
        SchemeKind::Pb,
    ];

    for (label, dataset) in &datasets {
        let schemes: Vec<AnyScheme> = kinds
            .iter()
            .map(|k| AnyScheme::build(*k, dataset, &mut rng))
            .collect();
        let mut group = c.benchmark_group(format!("search_{label}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));
        // 1% and 10% of the domain, placed mid-domain.
        for pct in [1u64, 10] {
            let len = domain_size * pct / 100;
            let lo = domain_size / 3;
            let query = Range::new(lo, lo + len - 1);
            for scheme in &schemes {
                group.bench_with_input(
                    BenchmarkId::new(scheme.name(), format!("{pct}%")),
                    &query,
                    |b, query| b.iter(|| scheme.query(*query)),
                );
            }
        }
        group.finish();
    }
}

/// The PR-gating perf target: search over a 100k-record uniform dataset
/// (see BENCH_pr1.json for the tracked before/after numbers).
fn bench_search_100k(c: &mut Criterion) {
    let kinds = [
        SchemeKind::ConstantBrc,
        SchemeKind::LogarithmicBrc,
        SchemeKind::LogarithmicSrc,
    ];
    // The setup (100k-record dataset + three index builds) dwarfs the
    // measurements; skip it entirely when BENCH_FILTER excludes the group.
    let ids = kinds
        .iter()
        .flat_map(|k| [1u64, 10].map(|pct| format!("search_100k/{}/{pct}%", k.name())));
    if !criterion::any_id_matches(ids) {
        return;
    }
    let mut rng = ChaCha20Rng::seed_from_u64(5);
    let domain_size = 1u64 << 20;
    let dataset = gowalla_like(100_000, domain_size, &mut rng);
    let schemes: Vec<AnyScheme> = kinds
        .iter()
        .map(|k| AnyScheme::build(*k, &dataset, &mut rng))
        .collect();
    let mut group = c.benchmark_group("search_100k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for pct in [1u64, 10] {
        let len = domain_size * pct / 100;
        let lo = domain_size / 3;
        let query = Range::new(lo, lo + len - 1);
        for scheme in &schemes {
            group.bench_with_input(
                BenchmarkId::new(scheme.name(), format!("{pct}%")),
                &query,
                |b, query| b.iter(|| scheme.query(*query)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_search, bench_search_100k);
criterion_main!(benches);
