//! Experiment scales.
//!
//! The paper runs on up to 5M tuples over a ~10^8-value domain on a 16 GB
//! i7. The harness defaults to a laptop/CI scale that finishes in minutes
//! while preserving every comparative trend (who wins, by what shape); the
//! `--scale large` flag moves closer to the paper's sizes.

/// Which of the two evaluation datasets a figure uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Gowalla-like: near-uniform, ~95% distinct values.
    Gowalla,
    /// USPS-like: heavily skewed, ~5% distinct values.
    Usps,
}

impl DatasetKind {
    /// Display name used in report headers.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Gowalla => "Gowalla-like",
            DatasetKind::Usps => "USPS-like",
        }
    }
}

/// Sizing knobs for all experiments.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Dataset sizes swept in Figure 5.
    pub fig5_sizes: Vec<usize>,
    /// Dataset size for Table 1 and Figure 5's fixed-size runs.
    pub gowalla_n: usize,
    /// Domain size for Gowalla-like datasets (Table 1, Figure 5, Figure 8).
    pub gowalla_domain: u64,
    /// Dataset size for Table 2.
    pub usps_n: usize,
    /// Domain size for USPS-like datasets (Table 2).
    pub usps_domain: u64,
    /// Dataset size for the range-size sweeps of Figures 6–7. Kept separate
    /// because the Constant schemes' O(R) search makes full-domain sweeps
    /// over the Figure-5 domain prohibitively slow at laptop scale.
    pub sweep_n: usize,
    /// Domain size for the Figure 6–7 sweeps.
    pub sweep_domain: u64,
    /// Queries averaged per sweep point (the paper uses 200K).
    pub queries_per_point: usize,
    /// Range sizes (% of the domain) swept in Figures 6–7.
    pub range_percents: Vec<f64>,
    /// Absolute range sizes swept in Figure 8.
    pub fig8_range_sizes: Vec<u64>,
    /// RNG seed so every run is reproducible.
    pub seed: u64,
}

impl Scale {
    /// The default laptop/CI scale (finishes in a few minutes in release).
    pub fn small() -> Self {
        Self {
            fig5_sizes: vec![5_000, 10_000, 20_000],
            gowalla_n: 10_000,
            gowalla_domain: 1 << 20,
            usps_n: 8_000,
            usps_domain: 1 << 18,
            sweep_n: 10_000,
            sweep_domain: 1 << 16,
            queries_per_point: 30,
            range_percents: vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0],
            fig8_range_sizes: vec![1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
            seed: 2016,
        }
    }

    /// A larger scale, closer in spirit to the paper's sweeps (tens of
    /// minutes in release).
    pub fn large() -> Self {
        Self {
            fig5_sizes: vec![25_000, 50_000, 100_000, 200_000],
            gowalla_n: 100_000,
            gowalla_domain: 1 << 24,
            usps_n: 50_000,
            usps_domain: 1 << 19,
            sweep_n: 50_000,
            sweep_domain: 1 << 18,
            queries_per_point: 100,
            ..Self::small()
        }
    }

    /// A tiny smoke-test scale used by unit tests of the harness itself.
    pub fn smoke() -> Self {
        Self {
            fig5_sizes: vec![200, 400],
            gowalla_n: 400,
            gowalla_domain: 1 << 12,
            usps_n: 400,
            usps_domain: 1 << 12,
            sweep_n: 400,
            sweep_domain: 1 << 10,
            queries_per_point: 5,
            range_percents: vec![10.0, 50.0, 100.0],
            fig8_range_sizes: vec![1, 10, 100],
            seed: 7,
        }
    }

    /// Parses `small` / `large` from the command line.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "small" => Some(Self::small()),
            "large" => Some(Self::large()),
            "smoke" => Some(Self::smoke()),
            _ => None,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_known_scales() {
        assert!(Scale::parse("small").is_some());
        assert!(Scale::parse("large").is_some());
        assert!(Scale::parse("smoke").is_some());
        assert!(Scale::parse("huge").is_none());
    }

    #[test]
    fn large_scale_is_larger() {
        let small = Scale::small();
        let large = Scale::large();
        assert!(large.gowalla_n > small.gowalla_n);
        assert!(large.fig5_sizes.last() > small.fig5_sizes.last());
    }

    #[test]
    fn dataset_kind_names() {
        assert_eq!(DatasetKind::Gowalla.name(), "Gowalla-like");
        assert_eq!(DatasetKind::Usps.name(), "USPS-like");
    }
}
