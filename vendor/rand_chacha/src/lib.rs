//! Vendored ChaCha20-based RNG (offline stand-in for `rand_chacha`).
//!
//! Implements the RFC 8439 ChaCha20 block function with a 64-bit block
//! counter, exposed through the vendored `rand` traits. Output does not
//! bit-match the real `rand_chacha` crate (which nobody in this workspace
//! relies on — tests only require determinism), but the generator is a
//! genuine ChaCha20 keystream: seeded from 256 bits of key material and
//! suitable as a `CryptoRng`.

use rand::{CryptoRng, RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// ChaCha20 keystream generator.
#[derive(Clone, Debug)]
pub struct ChaCha20Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u8; 64],
    /// Next unconsumed byte in `buffer`; 64 means "refill needed".
    cursor: usize,
}

impl ChaCha20Rng {
    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(state.iter()) {
            *w = w.wrapping_add(*s);
        }
        for (i, word) in working.iter().enumerate() {
            self.buffer[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }

    fn take(&mut self, n: usize, out: &mut [u8]) {
        debug_assert!(n <= 8 && out.len() >= n);
        if self.cursor + n > 64 {
            self.refill();
        }
        out[..n].copy_from_slice(&self.buffer[self.cursor..self.cursor + n]);
        self.cursor += n;
    }
}

fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha20Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        }
        Self {
            key,
            counter: 0,
            buffer: [0u8; 64],
            cursor: 64,
        }
    }
}

impl RngCore for ChaCha20Rng {
    fn next_u32(&mut self) -> u32 {
        let mut out = [0u8; 4];
        self.take(4, &mut out);
        u32::from_le_bytes(out)
    }

    fn next_u64(&mut self) -> u64 {
        let mut out = [0u8; 8];
        self.take(8, &mut out);
        u64::from_le_bytes(out)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.cursor == 64 {
                self.refill();
            }
            let take = (dest.len() - filled).min(64 - self.cursor);
            dest[filled..filled + take]
                .copy_from_slice(&self.buffer[self.cursor..self.cursor + take]);
            self.cursor += take;
            filled += take;
        }
    }
}

impl CryptoRng for ChaCha20Rng {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2 with nonce/stream-id fixed to zero is not directly
        // comparable (the RFC vector uses counter=1 and a nonce), so pin the
        // keystream of the all-zero key instead, which is the well-known
        // ChaCha20 test vector: first block of ChaCha20(key=0^32, nonce=0,
        // counter=0).
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let mut block = [0u8; 16];
        rng.fill_bytes(&mut block);
        let expected: [u8; 16] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28,
        ];
        assert_eq!(block, expected);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha20Rng::seed_from_u64(7);
        let mut b = ChaCha20Rng::seed_from_u64(7);
        let mut c = ChaCha20Rng::seed_from_u64(8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn fill_bytes_spans_blocks_consistently() {
        let mut a = ChaCha20Rng::seed_from_u64(3);
        let mut big = [0u8; 200];
        a.fill_bytes(&mut big);

        let mut b = ChaCha20Rng::seed_from_u64(3);
        let mut parts = [0u8; 200];
        let (first, rest) = parts.split_at_mut(33);
        b.fill_bytes(first);
        b.fill_bytes(rest);
        assert_eq!(big, parts);
    }

    #[test]
    fn mixed_width_draws_are_deterministic() {
        let mut a = ChaCha20Rng::seed_from_u64(5);
        let seq_a = (a.next_u32(), a.next_u64(), a.next_u32());
        let mut b = ChaCha20Rng::seed_from_u64(5);
        let seq_b = (b.next_u32(), b.next_u64(), b.next_u32());
        assert_eq!(seq_a, seq_b);
    }
}
