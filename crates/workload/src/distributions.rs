//! Value distributions used by the dataset generators.

use rand::Rng;
use rsse_cover::Domain;

/// A source of attribute values over a domain.
pub trait ValueDistribution {
    /// Samples one attribute value in `[0, domain.size())`.
    fn sample<R: Rng + ?Sized>(&self, domain: &Domain, rng: &mut R) -> u64;
}

/// Uniform values over the whole domain — the "Gowalla is relatively uniform
/// on A" profile.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformValues;

impl ValueDistribution for UniformValues {
    fn sample<R: Rng + ?Sized>(&self, domain: &Domain, rng: &mut R) -> u64 {
        rng.gen_range(0..domain.size())
    }
}

/// A Zipf-like distribution over a fixed set of *support points*: a small
/// number of distinct values receive most of the mass — the "USPS is heavily
/// skewed, 5% distinct values" profile.
#[derive(Clone, Debug)]
pub struct Zipf {
    support: Vec<u64>,
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution with the given support points (distinct
    /// values) and exponent `s` (s = 0 degenerates to uniform over the
    /// support; s ≈ 1 is classic Zipf).
    pub fn new(support: Vec<u64>, s: f64) -> Self {
        assert!(!support.is_empty(), "Zipf needs at least one support point");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let weights: Vec<f64> = (1..=support.len())
            .map(|rank| 1.0 / (rank as f64).powf(s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall on the last bucket.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self {
            support,
            cumulative,
        }
    }

    /// The number of distinct values this distribution can produce.
    pub fn support_size(&self) -> usize {
        self.support.len()
    }
}

impl ValueDistribution for Zipf {
    fn sample<R: Rng + ?Sized>(&self, domain: &Domain, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.support.len() - 1);
        let value = self.support[idx];
        debug_assert!(domain.contains(value));
        value.min(domain.size() - 1)
    }
}

/// Values drawn near a set of cluster centres with small jitter — produces
/// data with moderate skew and locality (e.g. timestamps concentrated around
/// working hours).
#[derive(Clone, Debug)]
pub struct ClusteredValues {
    centres: Vec<u64>,
    spread: u64,
}

impl ClusteredValues {
    /// Creates a clustered distribution around `centres`, each sample jittered
    /// uniformly within ±`spread`.
    pub fn new(centres: Vec<u64>, spread: u64) -> Self {
        assert!(!centres.is_empty(), "need at least one cluster centre");
        Self { centres, spread }
    }
}

impl ValueDistribution for ClusteredValues {
    fn sample<R: Rng + ?Sized>(&self, domain: &Domain, rng: &mut R) -> u64 {
        let centre = self.centres[rng.gen_range(0..self.centres.len())];
        let jitter = rng.gen_range(0..=2 * self.spread) as i64 - self.spread as i64;
        let value = centre as i64 + jitter;
        value.clamp(0, domain.size() as i64 - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use std::collections::HashMap;

    #[test]
    fn uniform_spreads_over_domain() {
        let domain = Domain::new(1000);
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let dist = UniformValues;
        let samples: Vec<u64> = (0..2000).map(|_| dist.sample(&domain, &mut rng)).collect();
        assert!(samples.iter().all(|&v| v < 1000));
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(distinct.len() > 700, "uniform sampling should be diverse");
    }

    #[test]
    fn zipf_concentrates_mass_on_top_ranks() {
        let domain = Domain::new(10_000);
        let support: Vec<u64> = (0..100).map(|i| i * 97).collect();
        let zipf = Zipf::new(support.clone(), 1.2);
        assert_eq!(zipf.support_size(), 100);
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for _ in 0..5000 {
            *counts.entry(zipf.sample(&domain, &mut rng)).or_default() += 1;
        }
        // Every sampled value comes from the support.
        assert!(counts.keys().all(|v| support.contains(v)));
        // The most frequent value dominates (heavy head).
        let max = *counts.values().max().unwrap();
        assert!(
            max > 5000 / 10,
            "head value should take a large share, got {max}"
        );
    }

    #[test]
    fn zipf_with_zero_exponent_is_roughly_uniform_over_support() {
        let domain = Domain::new(1000);
        let zipf = Zipf::new((0..10).collect(), 0.0);
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&domain, &mut rng) as usize] += 1;
        }
        for count in counts {
            assert!(
                (700..1300).contains(&count),
                "count {count} far from uniform"
            );
        }
    }

    #[test]
    fn clustered_values_stay_near_centres_and_in_domain() {
        let domain = Domain::new(1000);
        let dist = ClusteredValues::new(vec![5, 500, 995], 10);
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = dist.sample(&domain, &mut rng);
            assert!(v < 1000);
            assert!(
                v <= 15 || (490..=510).contains(&v) || v >= 985,
                "sample {v} not near any centre"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one support point")]
    fn empty_zipf_support_rejected() {
        let _ = Zipf::new(vec![], 1.0);
    }
}
