//! Owner-state persistence for the update manager.
//!
//! The durable footprint of an [`UpdateManager`](crate::UpdateManager) is:
//!
//! * one **`manager.meta`** manifest at the storage root — public
//!   bookkeeping (scheme kind and parameters, counters, the level table
//!   with per-instance sequence numbers and operation counts), serialized
//!   by [`rsse_sse::storage`]'s `ManagerManifest` codec;
//! * one **`owner.meta`** sidecar per instance directory — the instance's
//!   identity plus an encrypted, authenticated payload holding the
//!   owner's secrets for that instance: the 32-byte **build seed** (from
//!   which the instance's whole key material re-derives) and the
//!   plaintext **update log** (the entries the instance indexes, needed
//!   for result refinement and future consolidations).
//!
//! This module implements the payload cryptography and codec. The payload
//! is encrypted with the workspace [`StreamCipher`] under a key derived
//! from the owner's master key and the instance's build number, then
//! authenticated encrypt-then-MAC with a PRF tag under an independently
//! derived key. A wrong master key, a bit flip, or a sidecar transplanted
//! from another instance all fail the tag check and surface as typed
//! [`StorageError`]s — recovery never acts on unauthenticated owner state.

use crate::batch::{UpdateEntry, UpdateOp};
use rsse_core::{Record, StorageError};
use rsse_crypto::{cipher::NONCE_LEN, Key, KeyChain, Prf, StreamCipher, KEY_LEN};
use std::path::Path;

/// Length of the per-instance build seed (a full ChaCha20 seed).
pub const SEED_LEN: usize = 32;

/// Bytes per serialized update entry: id + value + op tag.
const ENTRY_LEN: usize = 17;

/// The authentication tag is a full PRF output.
const TAG_LEN: usize = KEY_LEN;

/// Derives the payload encryption key for one instance.
fn payload_cipher(chain: &KeyChain, build_id: u64) -> StreamCipher {
    StreamCipher::new(&chain.derive_indexed(b"owner-meta-enc", build_id))
}

/// Derives the payload MAC for one instance.
fn payload_mac(chain: &KeyChain, build_id: u64) -> Prf {
    Prf::new(&chain.derive_indexed(b"owner-meta-mac", build_id))
}

/// Serializes, encrypts, and authenticates one instance's owner secrets
/// (`seed` + update log) into the opaque `owner.meta` payload.
///
/// Keys are unique per `(master key, build id)` pair and the payload is
/// written exactly once per instance, so a fixed all-zero nonce is safe
/// and keeps the output deterministic.
pub(crate) fn seal_payload(
    chain: &KeyChain,
    build_id: u64,
    seed: &[u8; SEED_LEN],
    entries: &[UpdateEntry],
) -> Vec<u8> {
    let mut plain = Vec::with_capacity(SEED_LEN + 8 + entries.len() * ENTRY_LEN);
    plain.extend_from_slice(seed);
    plain.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for entry in entries {
        plain.extend_from_slice(&entry.record.id.to_le_bytes());
        plain.extend_from_slice(&entry.record.value.to_le_bytes());
        plain.push(match entry.op {
            UpdateOp::Insert => 0,
            UpdateOp::Modify => 1,
            UpdateOp::Delete => 2,
        });
    }
    let mut sealed = payload_cipher(chain, build_id).encrypt_with_nonce(&[0u8; NONCE_LEN], &plain);
    let tag = payload_mac(chain, build_id).eval(&sealed);
    sealed.extend_from_slice(&tag);
    sealed
}

/// Verifies and decrypts one instance's owner payload back into its build
/// seed and update log.
///
/// # Errors
///
/// A failed tag check (wrong master key, tampering, or a sidecar copied
/// from a different instance) and every structural inconsistency surface
/// as typed [`StorageError::CorruptDirectory`]s naming `dir`.
pub(crate) fn open_payload(
    chain: &KeyChain,
    build_id: u64,
    dir: &Path,
    payload: &[u8],
) -> Result<([u8; SEED_LEN], Vec<UpdateEntry>), StorageError> {
    let corrupt = |detail: String| StorageError::CorruptDirectory {
        path: dir.join(rsse_sse::storage::OWNER_META_FILE),
        detail,
    };
    if payload.len() < TAG_LEN + NONCE_LEN {
        return Err(corrupt(format!(
            "owner payload of {} bytes is shorter than nonce + tag",
            payload.len()
        )));
    }
    let (sealed, tag) = payload.split_at(payload.len() - TAG_LEN);
    let expected = payload_mac(chain, build_id).eval(sealed);
    // Not constant-time; the comparison guards the owner's own local state
    // against corruption, not a remote oracle.
    if tag != expected {
        return Err(corrupt(
            "owner payload failed authentication — wrong owner key, tampered \
             sidecar, or a sidecar copied from another instance"
                .to_string(),
        ));
    }
    let plain = payload_cipher(chain, build_id)
        .decrypt(sealed)
        .ok_or_else(|| corrupt("owner payload shorter than its nonce".to_string()))?;
    if plain.len() < SEED_LEN + 8 {
        return Err(corrupt(format!(
            "owner payload plaintext of {} bytes is shorter than seed + count",
            plain.len()
        )));
    }
    let mut seed = [0u8; SEED_LEN];
    seed.copy_from_slice(&plain[..SEED_LEN]);
    let count = u64::from_le_bytes(plain[SEED_LEN..SEED_LEN + 8].try_into().expect("8 bytes"));
    let body = &plain[SEED_LEN + 8..];
    if body.len() as u64 != count.saturating_mul(ENTRY_LEN as u64) {
        return Err(corrupt(format!(
            "owner payload claims {count} entries but holds {} body bytes",
            body.len()
        )));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for chunk in body.chunks_exact(ENTRY_LEN) {
        let id = u64::from_le_bytes(chunk[..8].try_into().expect("8 bytes"));
        let value = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));
        let op = match chunk[16] {
            0 => UpdateOp::Insert,
            1 => UpdateOp::Modify,
            2 => UpdateOp::Delete,
            other => {
                return Err(corrupt(format!("unknown update-op tag {other}")));
            }
        };
        entries.push(UpdateEntry {
            record: Record::new(id, value),
            op,
        });
    }
    Ok((seed, entries))
}

/// The owner's master key: the single secret from which every durable
/// manager state re-derives — payload encryption and MAC keys per
/// instance. Losing it orphans the storage root (the encrypted indexes
/// stay intact but the owner can no longer interpret them); it should be
/// stored like any other long-term symmetric key.
pub type OwnerKey = Key;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn chain() -> KeyChain {
        KeyChain::new(Key::from_bytes([7u8; KEY_LEN]))
    }

    #[test]
    fn payload_round_trips() {
        let seed = [42u8; SEED_LEN];
        let entries = vec![
            UpdateEntry::insert(1, 10),
            UpdateEntry::modify(2, 20),
            UpdateEntry::delete(3, 30),
        ];
        let sealed = seal_payload(&chain(), 5, &seed, &entries);
        let (got_seed, got_entries) =
            open_payload(&chain(), 5, Path::new("/x"), &sealed).expect("round trip");
        assert_eq!(got_seed, seed);
        assert_eq!(got_entries, entries);
    }

    #[test]
    fn wrong_key_fails_authentication() {
        let sealed = seal_payload(&chain(), 1, &[1u8; SEED_LEN], &[UpdateEntry::insert(1, 1)]);
        let mut rng = ChaCha20Rng::seed_from_u64(9);
        let other = KeyChain::generate(&mut rng);
        let err = open_payload(&other, 1, Path::new("/x"), &sealed).expect_err("must fail");
        assert!(matches!(err, StorageError::CorruptDirectory { .. }));
    }

    #[test]
    fn wrong_build_id_fails_authentication() {
        // A sidecar transplanted into another instance's directory must not
        // authenticate: the MAC key is bound to the build id.
        let sealed = seal_payload(&chain(), 1, &[1u8; SEED_LEN], &[]);
        assert!(open_payload(&chain(), 2, Path::new("/x"), &sealed).is_err());
    }

    #[test]
    fn bit_flips_fail_authentication() {
        let mut sealed = seal_payload(&chain(), 3, &[9u8; SEED_LEN], &[UpdateEntry::insert(4, 4)]);
        for at in [0, sealed.len() / 2, sealed.len() - 1] {
            sealed[at] ^= 1;
            assert!(
                open_payload(&chain(), 3, Path::new("/x"), &sealed).is_err(),
                "flip at {at} must fail"
            );
            sealed[at] ^= 1;
        }
        assert!(open_payload(&chain(), 3, Path::new("/x"), &sealed).is_ok());
    }
}
