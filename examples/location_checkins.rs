//! Gowalla-style scenario: a location-based service outsources its check-in
//! log and runs time-window analytics over the encrypted data.
//!
//! This mirrors the paper's Gowalla evaluation profile: a large,
//! near-uniform timestamp domain where ~95% of tuples carry distinct values.
//! On such data Logarithmic-SRC already has few false positives, and the
//! Constant/Logarithmic BRC-URC schemes return exact results; the example
//! compares them on sliding time-window queries.
//!
//! Run with:
//! ```sh
//! cargo run --release --example location_checkins
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse::prelude::*;

fn main() {
    let mut rng = ChaCha20Rng::seed_from_u64(2009);

    // One year of check-ins at second granularity, scaled down to keep the
    // example fast: a 2^20-value "timestamp" domain, 20,000 check-ins.
    let domain_size = 1u64 << 20;
    let dataset = gowalla_like(20_000, domain_size, &mut rng);
    let profile = DatasetProfile::of(&dataset);
    println!(
        "check-in log: {} events, domain {} ticks, {:.1}% distinct timestamps\n",
        profile.n,
        profile.domain_size,
        100.0 * profile.distinct_ratio
    );

    // The analyst owns the key; the storage provider holds only encrypted
    // indexes. Build the two schemes the paper recommends for this profile.
    let src = AnyScheme::build(SchemeKind::LogarithmicSrc, &dataset, &mut rng);
    let src_i = AnyScheme::build(SchemeKind::LogarithmicSrcI, &dataset, &mut rng);
    let urc = AnyScheme::build(SchemeKind::LogarithmicUrc, &dataset, &mut rng);

    println!(
        "{:<20} {:>14} {:>12}",
        "scheme", "index entries", "storage MiB"
    );
    for scheme in [&urc, &src, &src_i] {
        let stats = scheme.index_stats();
        println!(
            "{:<20} {:>14} {:>12.2}",
            scheme.name(),
            stats.entries,
            stats.storage_mib()
        );
    }

    // Sliding "activity in the last window" queries of growing width.
    println!("\nsliding time-window queries:");
    println!(
        "{:<14} {:>8} | {:>22} | {:>22} | {:>22}",
        "window", "matches", "Log-URC (tok, fp)", "Log-SRC (tok, fp)", "Log-SRC-i (tok, fp)"
    );
    for window_pct in [1u64, 5, 10, 25] {
        let window = domain_size * window_pct / 100;
        let end = domain_size - 1;
        let query = Range::new(end - window + 1, end);
        let expected = dataset.matching_ids(query);

        let mut row = format!(
            "{:<14} {:>8} |",
            format!("last {window_pct}%"),
            expected.len()
        );
        for scheme in [&urc, &src, &src_i] {
            let outcome = scheme.query(query);
            let eval = Evaluation::compare(&outcome.ids, &expected);
            assert!(eval.is_complete(), "{} missed check-ins", scheme.name());
            row.push_str(&format!(
                " {:>13} tok, {:>4} fp |",
                outcome.stats.tokens_sent, eval.false_positives
            ));
        }
        println!("{row}");
    }

    println!(
        "\nOn near-uniform data the single-token SRC schemes pay only a small\n\
         false-positive overhead, while URC needs O(log R) tokens but is exact —\n\
         the trade-off of the paper's Figure 6(a)/7(a)."
    );
}
