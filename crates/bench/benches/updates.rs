//! Criterion micro-bench for the batch-update manager: ingestion (including
//! any triggered consolidations) and querying across active instances, for
//! two consolidation steps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse_core::schemes::log_brc_urc::LogScheme;
use rsse_cover::{Domain, Range};
use rsse_updates::{UpdateConfig, UpdateEntry, UpdateManager};
use std::time::Duration;

fn ingest(batches: usize, batch_size: usize, step: usize) -> UpdateManager<LogScheme> {
    let domain = Domain::new(1 << 16);
    let mut rng = ChaCha20Rng::seed_from_u64(5);
    let mut manager: UpdateManager<LogScheme> = UpdateManager::new(
        domain,
        UpdateConfig {
            consolidation_step: step,
            ..UpdateConfig::default()
        },
    );
    let mut id = 0u64;
    for b in 0..batches {
        let entries: Vec<UpdateEntry> = (0..batch_size)
            .map(|i| {
                id += 1;
                UpdateEntry::insert(id, ((b * 131 + i * 17) as u64) % (1 << 16))
            })
            .collect();
        manager.ingest_batch(entries, &mut rng);
    }
    manager
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("updates");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for step in [0usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("ingest_16_batches", format!("s={step}")),
            &step,
            |b, &step| b.iter(|| ingest(16, 200, step)),
        );
        let manager = ingest(16, 200, step);
        let query = Range::new(10_000, 30_000);
        group.bench_with_input(
            BenchmarkId::new("query_across_instances", format!("s={step}")),
            &query,
            |b, query| b.iter(|| manager.query(*query)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
