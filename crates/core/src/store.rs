//! The encrypted record store and owner-side result refinement.
//!
//! The RSSE indexes only ever return *tuple ids*. The records themselves are
//! encrypted with a semantically secure cipher, stored at the server keyed
//! by id, and fetched after the search — "the server can send the
//! corresponding document to the owner, who decrypts in a final step that is
//! orthogonal to the SSE instantiation" (Section 2.2). This module provides
//! that final step so that the examples and the update workflow can run the
//! complete end-to-end protocol:
//!
//! * [`RecordStoreOwner`] encrypts [`StoredRecord`]s (attribute value plus an
//!   opaque body) before outsourcing and decrypts fetched ciphertexts;
//! * [`EncryptedRecordStore`] is the server-side id → ciphertext map;
//! * [`RecordStoreOwner::refine`] fetches the ids returned by a range query,
//!   decrypts them and drops false positives — the owner-side filtering the
//!   SRC family and PB rely on.

use crate::dataset::{Dataset, DocId, Record};
use crate::traits::QueryOutcome;
use rand::{CryptoRng, RngCore};
use rsse_cover::Range;
use rsse_crypto::{Key, StreamCipher};
use std::collections::HashMap;

/// A full record as the owner sees it: the indexed attribute value plus an
/// arbitrary encrypted body (the remaining columns of the tuple).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredRecord {
    /// Unique tuple id, shared with the RSSE index.
    pub id: DocId,
    /// Query-attribute value.
    pub value: u64,
    /// Opaque record body (all non-indexed columns, serialized).
    pub body: Vec<u8>,
}

impl StoredRecord {
    /// Creates a record.
    pub fn new(id: DocId, value: u64, body: impl Into<Vec<u8>>) -> Self {
        Self {
            id,
            value,
            body: body.into(),
        }
    }

    /// The `(id, value)` pair indexed by the RSSE schemes.
    pub fn index_record(&self) -> Record {
        Record::new(self.id, self.value)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.body.len());
        out.extend_from_slice(&self.value.to_le_bytes());
        out.extend_from_slice(&(self.body.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    fn decode(id: DocId, bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 {
            return None;
        }
        let value = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let body_len = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
        if bytes.len() != 16 + body_len {
            return None;
        }
        Some(Self {
            id,
            value,
            body: bytes[16..].to_vec(),
        })
    }
}

/// Server-side storage of the individually encrypted records.
#[derive(Clone, Debug, Default)]
pub struct EncryptedRecordStore {
    records: HashMap<DocId, Vec<u8>>,
}

impl EncryptedRecordStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate server-side storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.records.values().map(|c| c.len() + 8).sum()
    }

    /// Stores (or replaces) a ciphertext under an id. Called with
    /// owner-produced ciphertexts only.
    pub fn put(&mut self, id: DocId, ciphertext: Vec<u8>) {
        self.records.insert(id, ciphertext);
    }

    /// Fetches the ciphertext of one id, as requested by the owner after a
    /// search.
    pub fn get(&self, id: DocId) -> Option<&[u8]> {
        self.records.get(&id).map(Vec::as_slice)
    }

    /// Removes a record (used by the update manager's consolidation).
    pub fn remove(&mut self, id: DocId) -> bool {
        self.records.remove(&id).is_some()
    }
}

/// The owner's keys and helpers for the record store.
#[derive(Clone, Debug)]
pub struct RecordStoreOwner {
    cipher: StreamCipher,
}

impl RecordStoreOwner {
    /// Creates an owner with a fresh record-encryption key.
    pub fn generate<R: RngCore + CryptoRng>(rng: &mut R) -> Self {
        Self {
            cipher: StreamCipher::new(&Key::generate(rng)),
        }
    }

    /// Creates an owner from an existing key (e.g. derived from the master
    /// key chain of a scheme deployment).
    pub fn from_key(key: &Key) -> Self {
        Self {
            cipher: StreamCipher::new(key),
        }
    }

    /// Encrypts one record for outsourcing.
    pub fn encrypt<R: RngCore + CryptoRng>(&self, rng: &mut R, record: &StoredRecord) -> Vec<u8> {
        self.cipher.encrypt(rng, &record.encode())
    }

    /// Encrypts a whole collection into a server-side store and returns the
    /// plaintext [`Dataset`] to feed into a scheme's `BuildIndex`.
    pub fn outsource<R: RngCore + CryptoRng>(
        &self,
        records: &[StoredRecord],
        domain: rsse_cover::Domain,
        rng: &mut R,
    ) -> Result<(Dataset, EncryptedRecordStore), crate::dataset::DatasetError> {
        let mut store = EncryptedRecordStore::new();
        for record in records {
            store.put(record.id, self.encrypt(rng, record));
        }
        let dataset = Dataset::new(
            domain,
            records.iter().map(StoredRecord::index_record).collect(),
        )?;
        Ok((dataset, store))
    }

    /// Decrypts one fetched ciphertext.
    pub fn decrypt(&self, id: DocId, ciphertext: &[u8]) -> Option<StoredRecord> {
        let plaintext = self.cipher.decrypt(ciphertext)?;
        StoredRecord::decode(id, &plaintext)
    }

    /// The owner-side refinement step: fetch every id a query returned,
    /// decrypt it, and keep only the records that actually satisfy the
    /// range — eliminating the false positives of the SRC family and PB.
    pub fn refine(
        &self,
        outcome: &QueryOutcome,
        range: Range,
        store: &EncryptedRecordStore,
    ) -> Vec<StoredRecord> {
        let mut results = Vec::with_capacity(outcome.ids.len());
        for &id in &outcome.ids {
            let Some(ciphertext) = store.get(id) else {
                continue;
            };
            let Some(record) = self.decrypt(id, ciphertext) else {
                continue;
            };
            if range.contains(record.value) {
                results.push(record);
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::log_src::LogSrcScheme;
    use crate::schemes::testutil;
    use crate::traits::RangeScheme;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rsse_cover::Domain;

    fn sample_records() -> Vec<StoredRecord> {
        (0..50u64)
            .map(|i| StoredRecord::new(i, (i * 13) % 64, format!("row-{i}").into_bytes()))
            .collect()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let record = StoredRecord::new(7, 42, b"hello".to_vec());
        let decoded = StoredRecord::decode(7, &record.encode()).unwrap();
        assert_eq!(decoded, record);
        assert!(StoredRecord::decode(7, b"short").is_none());
        // Length mismatch is rejected.
        let mut bytes = record.encode();
        bytes.push(0);
        assert!(StoredRecord::decode(7, &bytes).is_none());
    }

    #[test]
    fn outsource_encrypt_fetch_decrypt_roundtrip() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let owner = RecordStoreOwner::generate(&mut rng);
        let records = sample_records();
        let (dataset, store) = owner
            .outsource(&records, Domain::new(64), &mut rng)
            .unwrap();
        assert_eq!(dataset.len(), 50);
        assert_eq!(store.len(), 50);
        assert!(!store.is_empty());
        assert!(store.storage_bytes() > 50 * 16);
        for record in &records {
            let fetched = owner
                .decrypt(record.id, store.get(record.id).unwrap())
                .unwrap();
            assert_eq!(&fetched, record);
        }
    }

    #[test]
    fn ciphertexts_hide_record_contents() {
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let owner = RecordStoreOwner::generate(&mut rng);
        let record = StoredRecord::new(1, 3, b"super secret payroll entry".to_vec());
        let ciphertext = owner.encrypt(&mut rng, &record);
        assert!(!ciphertext
            .windows(record.body.len())
            .any(|w| w == record.body.as_slice()));
        // A different owner cannot decrypt it into the same record.
        let other = RecordStoreOwner::generate(&mut rng);
        assert_ne!(other.decrypt(1, &ciphertext), Some(record));
    }

    #[test]
    fn refine_removes_false_positives_end_to_end() {
        // Full pipeline: outsource records, index them with the SRC scheme
        // (which produces false positives under skew), query, fetch and
        // refine — the refined result must equal the plaintext ground truth.
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let owner = RecordStoreOwner::generate(&mut rng);
        let dataset = testutil::skewed_dataset();
        let records: Vec<StoredRecord> = dataset
            .records()
            .iter()
            .map(|r| StoredRecord::new(r.id, r.value, format!("body-{}", r.id).into_bytes()))
            .collect();
        let (index_dataset, store) = owner
            .outsource(&records, *dataset.domain(), &mut rng)
            .unwrap();
        let (client, server) = LogSrcScheme::build(&index_dataset, &mut rng);

        let range = Range::new(3, 5);
        let outcome = client.query(&server, range);
        // The raw outcome over-approximates under skew…
        assert!(outcome.ids.len() > dataset.result_size(range));
        // …but refinement restores the exact answer.
        let refined = owner.refine(&outcome, range, &store);
        let mut refined_ids: Vec<DocId> = refined.iter().map(|r| r.id).collect();
        refined_ids.sort_unstable();
        let mut expected = dataset.matching_ids(range);
        expected.sort_unstable();
        assert_eq!(refined_ids, expected);
        for record in refined {
            assert!(range.contains(record.value));
            assert!(record.body.starts_with(b"body-"));
        }
    }

    #[test]
    fn refine_skips_missing_and_corrupt_entries() {
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let owner = RecordStoreOwner::generate(&mut rng);
        let mut store = EncryptedRecordStore::new();
        store.put(
            1,
            owner.encrypt(&mut rng, &StoredRecord::new(1, 5, b"ok".to_vec())),
        );
        store.put(2, vec![0u8; 4]); // corrupt
        let outcome = QueryOutcome {
            ids: vec![1, 2, 3], // 3 is missing entirely
            stats: Default::default(),
        };
        let refined = owner.refine(&outcome, Range::new(0, 10), &store);
        assert_eq!(refined.len(), 1);
        assert_eq!(refined[0].id, 1);
    }

    #[test]
    fn remove_and_replace() {
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let owner = RecordStoreOwner::generate(&mut rng);
        let mut store = EncryptedRecordStore::new();
        store.put(
            9,
            owner.encrypt(&mut rng, &StoredRecord::new(9, 1, b"v1".to_vec())),
        );
        store.put(
            9,
            owner.encrypt(&mut rng, &StoredRecord::new(9, 2, b"v2".to_vec())),
        );
        assert_eq!(store.len(), 1);
        let fetched = owner.decrypt(9, store.get(9).unwrap()).unwrap();
        assert_eq!(fetched.body, b"v2");
        assert!(store.remove(9));
        assert!(!store.remove(9));
        assert!(store.get(9).is_none());
    }

    #[test]
    fn from_key_is_deterministic_across_sessions() {
        let key = Key::from_bytes([7u8; 32]);
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let session1 = RecordStoreOwner::from_key(&key);
        let ciphertext = session1.encrypt(&mut rng, &StoredRecord::new(1, 2, b"x".to_vec()));
        // A later session with the same key can still decrypt.
        let session2 = RecordStoreOwner::from_key(&key);
        assert_eq!(
            session2.decrypt(1, &ciphertext),
            Some(StoredRecord::new(1, 2, b"x".to_vec()))
        );
    }
}
