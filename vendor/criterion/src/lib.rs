//! Vendored minimal benchmark harness (offline stand-in for `criterion`).
//!
//! Supports the subset the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Each benchmark prints a single line
//! `bench: <group>/<id>  median <t> (n=<samples>)` and appends a JSON
//! record to `target/criterion-shim/results.jsonl`, which the repo's
//! `BENCH_*.json` before/after evidence is assembled from.
//!
//! Environment knobs (used by CI's smoke run):
//! * `BENCH_SMOKE=1` — clamp to 5 samples × ≤200 ms measurement per bench;
//! * `BENCH_FILTER=<substring>` — run only matching benchmark ids.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value helper preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Measures `routine`, collecting `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and iteration-count calibration.
        let warm_up_end = Instant::now() + self.warm_up;
        let mut calib_iters = 0u64;
        let calib_start = Instant::now();
        loop {
            black_box(routine());
            calib_iters += 1;
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        let per_iter = calib_start.elapsed() / calib_iters.max(1) as u32;

        // Pick iterations per sample so that all samples fit the
        // measurement budget, at least 1.
        let budget_per_sample = self.measurement / self.sample_size.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted.get(sorted.len() / 2).copied().unwrap_or_default()
    }
}

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn filter_matches(id: &str) -> bool {
    match std::env::var("BENCH_FILTER") {
        Ok(f) if !f.is_empty() => id.contains(&f),
        _ => true,
    }
}

/// Whether `BENCH_FILTER` would admit at least one of `ids`. Benches with
/// expensive setup (dataset generation, index builds) gate it on this so a
/// filtered-out group costs nothing — the shim itself can only filter at
/// measurement time, after setup already ran.
pub fn any_id_matches<I, S>(ids: I) -> bool
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    ids.into_iter().any(|id| filter_matches(id.as_ref()))
}

fn record(id: &str, median: Duration, samples: usize) {
    println!("bench: {id:<55} median {:>12.3?} (n={samples})", median);
    // Benches run with the defining crate as cwd; BENCH_OUT lets callers
    // collect results at a stable absolute path instead.
    let dir = std::env::var("BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("target/criterion-shim"));
    if std::fs::create_dir_all(&dir).is_ok() {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("results.jsonl"))
        {
            let _ = writeln!(
                f,
                "{{\"id\":\"{id}\",\"median_ns\":{},\"samples\":{samples}}}",
                median.as_nanos()
            );
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    fn effective(&self) -> (usize, Duration, Duration) {
        if smoke() {
            (
                5,
                Duration::from_millis(50),
                self.measurement.min(Duration::from_millis(200)),
            )
        } else {
            (self.sample_size, self.warm_up, self.measurement)
        }
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        if !filter_matches(&id) {
            return self;
        }
        let (sample_size, warm_up, measurement) = self.effective();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
            warm_up,
            measurement,
        };
        f(&mut bencher);
        record(&id, bencher.median(), bencher.samples.len());
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function(BenchmarkId::from(""), f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness arguments cargo passes (e.g. `--bench`).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_test");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("tiny", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        criterion_group!(benches, run_one);
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
