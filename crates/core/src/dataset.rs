//! Plaintext datasets: tuples of (id, query-attribute value).
//!
//! The paper abstracts every tuple `d ∈ D` as a pair `(id, a)` where `id` is
//! a unique identifier and `a = d.a` is the value of the single query
//! attribute. The records themselves are encrypted independently with a
//! semantically secure cipher and fetched by id after the search — that
//! retrieval step is orthogonal to RSSE and therefore not modelled here.

use rsse_cover::{Domain, Range};
use std::collections::BTreeSet;
use std::fmt;

/// A tuple identifier.
pub type DocId = u64;

/// One tuple of the outsourced dataset: `(id, value)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Record {
    /// Unique tuple identifier (`d.id`).
    pub id: DocId,
    /// Value of the query attribute (`d.a`).
    pub value: u64,
}

impl Record {
    /// Creates a record.
    pub fn new(id: DocId, value: u64) -> Self {
        Self { id, value }
    }

    /// Serializes the record id as an 8-byte SSE payload.
    pub(crate) fn id_payload(&self) -> Vec<u8> {
        self.id.to_le_bytes().to_vec()
    }

    /// Allocation-free variant of [`id_payload`](Self::id_payload) for the
    /// fixed-stride BuildIndex fast path.
    pub(crate) fn id_payload_array(&self) -> [u8; 8] {
        self.id.to_le_bytes()
    }
}

/// Decodes an 8-byte SSE payload back into a [`DocId`].
pub(crate) fn decode_id_payload(payload: &[u8]) -> Option<DocId> {
    let bytes: [u8; 8] = payload.try_into().ok()?;
    Some(DocId::from_le_bytes(bytes))
}

/// Errors raised when constructing a [`Dataset`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatasetError {
    /// A record's value lies outside the declared domain.
    ValueOutOfDomain {
        /// The offending record id.
        id: DocId,
        /// The offending value.
        value: u64,
        /// The domain size it violates.
        domain_size: u64,
    },
    /// Two records share the same id.
    DuplicateId(DocId),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::ValueOutOfDomain {
                id,
                value,
                domain_size,
            } => write!(
                f,
                "record {id} has value {value} outside domain of size {domain_size}"
            ),
            DatasetError::DuplicateId(id) => write!(f, "duplicate record id {id}"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// The owner's plaintext dataset, validated against its domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dataset {
    domain: Domain,
    records: Vec<Record>,
}

impl Dataset {
    /// Creates a dataset, checking that every value lies in the domain and
    /// ids are unique.
    pub fn new(domain: Domain, records: Vec<Record>) -> Result<Self, DatasetError> {
        let mut seen = BTreeSet::new();
        for record in &records {
            if !domain.contains(record.value) {
                return Err(DatasetError::ValueOutOfDomain {
                    id: record.id,
                    value: record.value,
                    domain_size: domain.size(),
                });
            }
            if !seen.insert(record.id) {
                return Err(DatasetError::DuplicateId(record.id));
            }
        }
        Ok(Self { domain, records })
    }

    /// The query attribute domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of tuples (`n` in the paper).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct attribute values present — the quantity that
    /// drives the size of Logarithmic-SRC-i's auxiliary index (and is leaked
    /// by it).
    pub fn distinct_values(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.value)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Ground truth: the ids of the tuples whose value falls in `range`.
    /// Used by the evaluation harness to count false positives.
    pub fn matching_ids(&self, range: Range) -> Vec<DocId> {
        self.records
            .iter()
            .filter(|r| range.contains(r.value))
            .map(|r| r.id)
            .collect()
    }

    /// Number of tuples matching `range` (the paper's `r`).
    pub fn result_size(&self, range: Range) -> usize {
        self.records
            .iter()
            .filter(|r| range.contains(r.value))
            .count()
    }

    /// Records sorted by attribute value (stable, so equal values keep their
    /// input order); used by Logarithmic-SRC-i.
    pub fn sorted_by_value(&self) -> Vec<Record> {
        let mut sorted = self.records.clone();
        sorted.sort_by_key(|r| r.value);
        sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::new(
            Domain::new(16),
            vec![
                Record::new(1, 2),
                Record::new(2, 2),
                Record::new(3, 7),
                Record::new(4, 15),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_domain_membership() {
        let err = Dataset::new(Domain::new(4), vec![Record::new(1, 9)]).unwrap_err();
        assert_eq!(
            err,
            DatasetError::ValueOutOfDomain {
                id: 1,
                value: 9,
                domain_size: 4
            }
        );
        assert!(err.to_string().contains("outside domain"));
    }

    #[test]
    fn construction_rejects_duplicate_ids() {
        let err =
            Dataset::new(Domain::new(4), vec![Record::new(1, 0), Record::new(1, 1)]).unwrap_err();
        assert_eq!(err, DatasetError::DuplicateId(1));
    }

    #[test]
    fn ground_truth_matches_filter() {
        let ds = small();
        assert_eq!(ds.matching_ids(Range::new(0, 3)), vec![1, 2]);
        assert_eq!(ds.matching_ids(Range::new(7, 15)), vec![3, 4]);
        assert_eq!(ds.result_size(Range::new(0, 15)), 4);
        assert!(ds.matching_ids(Range::new(8, 14)).is_empty());
    }

    #[test]
    fn distinct_values_counts_unique() {
        assert_eq!(small().distinct_values(), 3);
    }

    #[test]
    fn sorted_by_value_is_stable() {
        let ds = small();
        let sorted = ds.sorted_by_value();
        assert_eq!(
            sorted.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn payload_roundtrip() {
        let record = Record::new(0xDEADBEEF, 3);
        assert_eq!(decode_id_payload(&record.id_payload()), Some(0xDEADBEEF));
        assert_eq!(decode_id_payload(b"short"), None);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let ds = Dataset::new(Domain::new(8), vec![]).unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.distinct_values(), 0);
        assert!(ds.matching_ids(Range::new(0, 7)).is_empty());
    }
}
