//! External-memory `BuildIndex`: sorted-run spilling plus a streaming
//! merge-encrypt-scatter pass, bounded by a [`BuildBudget`].
//!
//! The in-RAM grouped build (`sort_unstable` over every `(keyword,
//! payload)` entry, then one encrypted chunk per keyword, then the shard
//! scatter) holds the whole transformed corpus in memory at once — fine up
//! to tens of millions of entries, a hard wall past that. This module
//! replaces the *sort* and the *scatter staging* with disk, keeping the
//! cryptographic pipeline — and therefore every output byte — identical:
//!
//! ```text
//!              pass 1: spill                      pass 2: merge + encrypt
//!  entries ──▶ budget-sized buffer ──sort──▶ run-00000.spl ─┐
//!  (streamed)  budget-sized buffer ──sort──▶ run-00001.spl ─┤  k-way merge
//!              …                                 …          ├─▶ keyword groups
//!              spill.meta (RSSE-SPM, committed last) ───────┘      │
//!                                                    shuffle + trapdoor + nonce seed
//!                                                                  │
//!                                                     batched parallel encryption
//!                                                                  │
//!                                              label-prefix scatter into shard sinks
//!                                                   │                    │
//!                                            in-memory arenas    staged shard files
//!                                                              (stage-*.tmp ─▶ shard-*.shd)
//! ```
//!
//! **Byte identity.** The merge yields keywords in exactly the order the
//! in-RAM sort would produce, so the per-keyword nonce seeds are drawn from
//! the caller's RNG in the same sequence, the keyed shuffle sees the same
//! payload order, and `encrypt_payloads` is a pure function of (token,
//! payloads, seed). Entries then reach each shard in the same global
//! (keyword, counter) order the in-RAM scatter uses. The property tests at
//! the bottom of this module (and `tests/external_build.rs` at the scheme
//! level) pin `build_external ≡ build_stored` byte for byte, for any
//! budget, on both backends.
//!
//! **Crash safety.** Spill artifacts live in a dedicated directory
//! ([`SPILL_DIR`] inside the index directory for on-disk builds, a unique
//! temp directory otherwise) and follow the workspace's `.tmp` + rename
//! commit protocol; `spill.meta` is written last, as pass 1's commit
//! record. Cleanup — before a restarted build, after success, and from
//! [`cleanup_partial_index`](crate::storage::cleanup_partial_index) — only
//! ever removes *recognized* spill file names and then the directory if
//! that left it empty, so foreign files can never be collateral damage.
//! The final index directory itself keeps the exact commit discipline of
//! the in-RAM on-disk build (manifest first, every shard file atomic).

use crate::pibas::{encrypt_payloads, EncryptedIndex, Label, SearchToken, SseKey, SseScheme};
use crate::sharded::{shard_of_label, Shard, ShardedIndex, MAX_SHARD_BITS};
use crate::storage::{
    check_header, shard_file_name, write_file_atomic, write_manifest, write_shard_header,
    BlockCache, BuildBudget, FileShard, StorageBackend, StorageConfig, StorageError,
    FORMAT_VERSION,
};
use rand::{CryptoRng, RngCore};
use rayon::prelude::*;
use rsse_crypto::{StreamCipher, KEY_LEN};
use std::cell::Cell;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Name of the spill directory an on-disk external build creates inside
/// its index directory. The `.tmp` suffix marks it as never part of a
/// committed index: reopen paths ignore it and cleanup may sweep it.
pub const SPILL_DIR: &str = "spill.tmp";

/// Magic bytes opening every spill run file (`run-NNNNN.spl`).
pub const SPILL_RUN_MAGIC: [u8; 8] = *b"RSSE-SPL";

/// Magic bytes opening the spill manifest (`spill.meta`).
pub const SPILL_MANIFEST_MAGIC: [u8; 8] = *b"RSSE-SPM";

/// File name of the spill manifest inside a spill directory.
pub const SPILL_MANIFEST_FILE: &str = "spill.meta";

/// Fixed spill-run header length in bytes.
const RUN_HEADER_LEN: u64 = 32;

/// Fixed-length prefix of the spill manifest, before the run table.
const SPILL_MANIFEST_HEADER_LEN: u64 = 40;

/// Bytes per run-table row in the spill manifest.
const RUN_TABLE_ROW_LEN: u64 = 16;

/// One fixed-stride spill entry: keyword plus payload.
type SpillEntry<const K: usize, const P: usize> = ([u8; K], [u8; P]);

/// Keyword groups staged for one parallel encrypt batch: per group, the
/// search token, the shuffled payloads, and the nonce seed drawn for it.
type EncryptBatch<const P: usize> = Vec<(SearchToken, Vec<[u8; P]>, [u8; KEY_LEN])>;

/// File name of spill run `i` inside a spill directory.
pub fn run_file_name(run: usize) -> String {
    format!("run-{run:05}.spl")
}

/// File name of the staged label/length frames of shard `i` during the
/// scatter phase.
fn stage_dir_name(shard: usize) -> String {
    format!("stage-{shard:05}.dir.tmp")
}

/// File name of the staged ciphertext region of shard `i` during the
/// scatter phase.
fn stage_region_name(shard: usize) -> String {
    format!("stage-{shard:05}.region.tmp")
}

/// Whether `name` is a file the external build may have created inside a
/// spill directory (including the `.tmp` siblings of its atomic writes).
/// Cleanup removes exactly these and nothing else.
fn is_spill_file(name: &str) -> bool {
    let base = name.strip_suffix(".tmp").unwrap_or(name);
    if base == SPILL_MANIFEST_FILE {
        return true;
    }
    if let Some(rest) = base.strip_prefix("run-") {
        if let Some(digits) = rest.strip_suffix(".spl") {
            return !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit());
        }
    }
    if let Some(rest) = name.strip_prefix("stage-") {
        if let Some(digits) = rest
            .strip_suffix(".dir.tmp")
            .or_else(|| rest.strip_suffix(".region.tmp"))
        {
            return !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit());
        }
    }
    false
}

/// Best-effort removal of every *recognized* spill file under `dir`,
/// followed by the directory itself only if that left it empty. Foreign
/// files — anything whose name the external build would not have written —
/// are never touched, mirroring the refusal discipline of the index
/// save/cleanup paths. A missing directory is a no-op.
pub(crate) fn sweep_spill_dir(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_spill_file(name) {
            let _ = fs::remove_file(entry.path());
        }
    }
    let _ = fs::remove_dir(dir);
}

// ---------------------------------------------------------------------------
// Kill points (test support)
// ---------------------------------------------------------------------------

/// Crash windows of the external build, for kill-point tests.
///
/// Not part of the API contract: `tests/external_build.rs` uses these to
/// prove that a build killed in any window leaves debris the next build
/// (or `cleanup_partial_index`) heals without touching foreign files, and
/// that the restarted build converges byte-identically.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExternalKillPoint {
    /// After the first sorted run is committed, before the spill manifest.
    MidSpill,
    /// After `spill.meta` is committed, before any index output.
    AfterSpill,
    /// After the index manifest and the first final shard file are
    /// committed, before the remaining shards.
    MidShardWrite,
}

thread_local! {
    /// The next kill point armed on this thread, if any.
    static KILL_AT: Cell<Option<ExternalKillPoint>> = const { Cell::new(None) };
    /// Whether the current build died at a kill point (in which case the
    /// error path must *not* clean up — a real crash would not have).
    static KILLED: Cell<bool> = const { Cell::new(false) };
}

/// Arms (or with `None` disarms) a one-shot kill point for the next
/// external build on this thread.
#[doc(hidden)]
pub fn kill_at(point: Option<ExternalKillPoint>) {
    KILL_AT.with(|k| k.set(point));
}

/// Fires the armed kill point if it matches, simulating a crash: the build
/// aborts with an error and skips its cleanup.
fn check_kill(point: ExternalKillPoint) -> Result<(), StorageError> {
    let fire = KILL_AT.with(|k| {
        if k.get() == Some(point) {
            k.set(None);
            true
        } else {
            false
        }
    });
    if fire {
        KILLED.with(|k| k.set(true));
        return Err(StorageError::Unsupported(
            "external build killed at test kill point",
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Spill order
// ---------------------------------------------------------------------------

/// How the spill pass orders entries — i.e. which in-RAM grouping the
/// external build must reproduce exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpillOrder {
    /// Full lexicographic order on `(keyword, payload)` — the external
    /// equivalent of the grouped build's `sort_unstable` over entry pairs
    /// (Logarithmic-BRC/URC/SRC and SRC-i).
    ByKeywordAndPayload,
    /// Stable order on the keyword alone: payloads of equal keywords keep
    /// their arrival order (each run sorts stably, the merge breaks ties
    /// by run index). The external equivalent of grouping via an ordered
    /// map keyed by keyword with insertion-order lists (Constant-BRC/URC).
    ByKeyword,
}

impl SpillOrder {
    /// On-disk encoding in the spill manifest.
    fn code(self) -> u32 {
        match self {
            SpillOrder::ByKeywordAndPayload => 0,
            SpillOrder::ByKeyword => 1,
        }
    }

    /// Decodes the manifest encoding.
    fn from_code(code: u32) -> Option<Self> {
        match code {
            0 => Some(SpillOrder::ByKeywordAndPayload),
            1 => Some(SpillOrder::ByKeyword),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 1: sorted-run spilling
// ---------------------------------------------------------------------------

/// Per-run row of the spill manifest.
struct RunInfo {
    /// Entries in the run.
    entries: u64,
    /// Total file length in bytes (header + entries).
    bytes: u64,
}

/// Streams entries into sorted, budget-sized run files.
struct Spiller<'a, const K: usize, const P: usize> {
    dir: &'a Path,
    order: SpillOrder,
    /// Entries per run (the bounded write buffer).
    limit: usize,
    buf: Vec<([u8; K], [u8; P])>,
    runs: Vec<RunInfo>,
}

impl<'a, const K: usize, const P: usize> Spiller<'a, K, P> {
    fn new(dir: &'a Path, order: SpillOrder, limit: usize) -> Self {
        Self {
            dir,
            order,
            limit,
            buf: Vec::new(),
            runs: Vec::new(),
        }
    }

    fn push(&mut self, entry: ([u8; K], [u8; P])) -> Result<(), StorageError> {
        self.buf.push(entry);
        if self.buf.len() >= self.limit {
            self.flush()?;
        }
        Ok(())
    }

    /// Sorts the buffered entries and commits them as the next run file.
    fn flush(&mut self) -> Result<(), StorageError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        match self.order {
            // Unstable is fine: equal (keyword, payload) pairs are
            // interchangeable.
            SpillOrder::ByKeywordAndPayload => self.buf.sort_unstable(),
            // Stable by keyword: arrival order within a keyword survives
            // the run sort, and the merge's run-index tie-break preserves
            // it globally.
            SpillOrder::ByKeyword => self.buf.sort_by_key(|entry| entry.0),
        }
        let path = self.dir.join(run_file_name(self.runs.len()));
        let entries = self.buf.len() as u64;
        let bytes = RUN_HEADER_LEN + entries * (K + P) as u64;
        let buf = &self.buf;
        write_file_atomic(&path, |writer| {
            writer.write_all(&SPILL_RUN_MAGIC)?;
            writer.write_all(&FORMAT_VERSION.to_le_bytes())?;
            writer.write_all(&0u32.to_le_bytes())?;
            writer.write_all(&entries.to_le_bytes())?;
            writer.write_all(&(K as u32).to_le_bytes())?;
            writer.write_all(&(P as u32).to_le_bytes())?;
            for (keyword, payload) in buf {
                writer.write_all(keyword)?;
                writer.write_all(payload)?;
            }
            Ok(())
        })?;
        self.runs.push(RunInfo { entries, bytes });
        self.buf.clear();
        if self.runs.len() == 1 {
            check_kill(ExternalKillPoint::MidSpill)?;
        }
        Ok(())
    }

    /// Flushes the final partial run and commits the spill manifest —
    /// pass 1's atomic commit record, written last.
    fn finish(mut self) -> Result<(), StorageError> {
        self.flush()?;
        let path = self.dir.join(SPILL_MANIFEST_FILE);
        let total: u64 = self.runs.iter().map(|r| r.entries).sum();
        let mut bytes = Vec::with_capacity(
            (SPILL_MANIFEST_HEADER_LEN + self.runs.len() as u64 * RUN_TABLE_ROW_LEN) as usize,
        );
        bytes.extend_from_slice(&SPILL_MANIFEST_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&self.order.code().to_le_bytes());
        bytes.extend_from_slice(&(K as u32).to_le_bytes());
        bytes.extend_from_slice(&(P as u32).to_le_bytes());
        bytes.extend_from_slice(&(self.runs.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&total.to_le_bytes());
        for run in &self.runs {
            bytes.extend_from_slice(&run.entries.to_le_bytes());
            bytes.extend_from_slice(&run.bytes.to_le_bytes());
        }
        write_file_atomic(&path, |writer| writer.write_all(&bytes))
    }
}

/// The decoded spill manifest pass 2 rebuilds its state from.
struct SpillMeta {
    order: SpillOrder,
    total_entries: u64,
    runs: Vec<RunInfo>,
}

/// Reads and validates the spill manifest against the build's expected
/// entry geometry.
fn read_spill_meta<const K: usize, const P: usize>(
    dir: &Path,
    order: SpillOrder,
) -> Result<SpillMeta, StorageError> {
    let path = dir.join(SPILL_MANIFEST_FILE);
    let mut bytes = Vec::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|error| StorageError::Io {
            path: path.clone(),
            error,
        })?;
    check_header(
        &path,
        &bytes,
        &SPILL_MANIFEST_MAGIC,
        SPILL_MANIFEST_HEADER_LEN,
    )?;
    let corrupt = |detail: String| StorageError::CorruptDirectory {
        path: path.clone(),
        detail,
    };
    let read_u32 = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let read_u64 = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let got_order = SpillOrder::from_code(read_u32(12))
        .ok_or_else(|| corrupt(format!("unknown spill sort mode {}", read_u32(12))))?;
    if got_order != order {
        return Err(corrupt(format!(
            "spill sort mode {:?} does not match this build ({order:?})",
            got_order
        )));
    }
    if read_u32(16) != K as u32 || read_u32(20) != P as u32 {
        return Err(corrupt(format!(
            "spill entry geometry ({}, {}) does not match this build ({K}, {P})",
            read_u32(16),
            read_u32(20)
        )));
    }
    let run_count = read_u64(24);
    let total_entries = read_u64(32);
    let expected_len = SPILL_MANIFEST_HEADER_LEN + run_count * RUN_TABLE_ROW_LEN;
    if bytes.len() as u64 != expected_len {
        return Err(corrupt(format!(
            "run table length {} does not match run count {run_count}",
            bytes.len() as u64 - SPILL_MANIFEST_HEADER_LEN
        )));
    }
    let runs: Vec<RunInfo> = (0..run_count as usize)
        .map(|i| {
            let off = SPILL_MANIFEST_HEADER_LEN as usize + i * RUN_TABLE_ROW_LEN as usize;
            RunInfo {
                entries: read_u64(off),
                bytes: read_u64(off + 8),
            }
        })
        .collect();
    if runs.iter().map(|r| r.entries).sum::<u64>() != total_entries {
        return Err(corrupt(
            "run table entry counts do not sum to the recorded total".to_string(),
        ));
    }
    Ok(SpillMeta {
        order,
        total_entries,
        runs,
    })
}

// ---------------------------------------------------------------------------
// Pass 2: k-way merge
// ---------------------------------------------------------------------------

/// Sequential reader over one committed spill run.
struct RunReader<const K: usize, const P: usize> {
    path: PathBuf,
    reader: BufReader<File>,
    remaining: u64,
}

impl<const K: usize, const P: usize> RunReader<K, P> {
    /// Opens run `run`, validating its header and length against the
    /// manifest row.
    fn open(dir: &Path, run: usize, info: &RunInfo, buffer: usize) -> Result<Self, StorageError> {
        let path = dir.join(run_file_name(run));
        let io = |error| StorageError::Io {
            path: path.clone(),
            error,
        };
        let file = File::open(&path).map_err(io)?;
        let actual = file.metadata().map_err(io)?.len();
        if actual != info.bytes {
            return Err(StorageError::Truncated {
                path,
                expected: info.bytes,
                actual,
            });
        }
        let mut reader = BufReader::with_capacity(buffer, file);
        let mut header = [0u8; RUN_HEADER_LEN as usize];
        reader.read_exact(&mut header).map_err(io)?;
        check_header(&path, &header, &SPILL_RUN_MAGIC, RUN_HEADER_LEN)?;
        let entries = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let keyword_len = u32::from_le_bytes(header[24..28].try_into().unwrap());
        let payload_len = u32::from_le_bytes(header[28..32].try_into().unwrap());
        if entries != info.entries || keyword_len != K as u32 || payload_len != P as u32 {
            return Err(StorageError::CorruptDirectory {
                path,
                detail: format!(
                    "run header ({entries} entries, geometry ({keyword_len}, {payload_len})) \
                     disagrees with the spill manifest ({} entries, ({K}, {P}))",
                    info.entries
                ),
            });
        }
        Ok(Self {
            path,
            reader,
            remaining: entries,
        })
    }

    /// The next entry, or `None` once the run is exhausted.
    fn next_entry(&mut self) -> Result<Option<SpillEntry<K, P>>, StorageError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut keyword = [0u8; K];
        let mut payload = [0u8; P];
        self.reader
            .read_exact(&mut keyword)
            .and_then(|()| self.reader.read_exact(&mut payload))
            .map_err(|error| StorageError::Io {
                path: self.path.clone(),
                error,
            })?;
        self.remaining -= 1;
        Ok(Some((keyword, payload)))
    }
}

/// One head-of-run entry in the merge heap.
struct HeapEntry<const K: usize, const P: usize> {
    keyword: [u8; K],
    payload: [u8; P],
    run: usize,
    /// Whether the payload participates in the order (see [`SpillOrder`]).
    full: bool,
}

impl<const K: usize, const P: usize> Ord for HeapEntry<K, P> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.keyword
            .cmp(&other.keyword)
            .then_with(|| {
                if self.full {
                    self.payload.cmp(&other.payload)
                } else {
                    Ordering::Equal
                }
            })
            // The run-index tie-break is what makes the ByKeyword merge
            // stable (runs are numbered in arrival order).
            .then_with(|| self.run.cmp(&other.run))
    }
}

impl<const K: usize, const P: usize> PartialOrd for HeapEntry<K, P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const K: usize, const P: usize> PartialEq for HeapEntry<K, P> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<const K: usize, const P: usize> Eq for HeapEntry<K, P> {}

// ---------------------------------------------------------------------------
// Shard sinks
// ---------------------------------------------------------------------------

/// One shard's scatter state during pass 2 of an on-disk build: bounded
/// in-memory frames, overflowing into append-only stage files.
struct StageShard {
    entries: u64,
    region_len: u64,
    /// Buffered 20-byte `(label, ciphertext length)` frames.
    dir_buf: Vec<u8>,
    /// Buffered ciphertext bytes, parallel to `dir_buf`.
    region_buf: Vec<u8>,
    /// Whether any frames have already overflowed to the stage files.
    staged: bool,
}

/// Where merged, encrypted entries land: in-memory arenas or staged shard
/// files that finalize into the exact serialized shard format.
enum Sink<'a> {
    /// In-memory backend: one growing arena per shard.
    Memory { shards: Vec<EncryptedIndex> },
    /// On-disk backend: per-shard bounded buffers spilling to stage files
    /// in the spill directory, finalized into `shard-NNNNN.shd`.
    Disk {
        dir: &'a Path,
        spill: &'a Path,
        flush_bytes: usize,
        shards: Vec<StageShard>,
    },
}

impl<'a> Sink<'a> {
    fn new(
        config: &'a StorageConfig,
        spill: &'a Path,
        budget: &BuildBudget,
    ) -> Result<Self, StorageError> {
        let count = 1usize << config.shard_bits;
        match &config.backend {
            StorageBackend::InMemory => Ok(Sink::Memory {
                shards: (0..count).map(|_| EncryptedIndex::default()).collect(),
            }),
            StorageBackend::OnDisk(dir) => {
                // Same commit discipline as the in-RAM on-disk build: the
                // index manifest goes in first, shard files follow.
                write_manifest(dir, config.shard_bits)?;
                // A quarter of the budget across all shard buffers, floored
                // so very high shard counts degrade to more frequent
                // appends rather than per-byte syscalls.
                let flush_bytes = (budget.memory_bytes / 4 / count).clamp(4 << 10, 1 << 20);
                Ok(Sink::Disk {
                    dir,
                    spill,
                    flush_bytes,
                    shards: (0..count)
                        .map(|_| StageShard {
                            entries: 0,
                            region_len: 0,
                            dir_buf: Vec::new(),
                            region_buf: Vec::new(),
                            staged: false,
                        })
                        .collect(),
                })
            }
        }
    }

    /// Accepts the next entry in global (keyword, counter) order.
    fn accept(&mut self, bits: u32, label: Label, ciphertext: &[u8]) -> Result<(), StorageError> {
        let shard = shard_of_label(&label, bits);
        match self {
            Sink::Memory { shards } => {
                shards[shard].append_entry(label, ciphertext);
                Ok(())
            }
            Sink::Disk {
                spill,
                flush_bytes,
                shards,
                ..
            } => {
                let stage = &mut shards[shard];
                stage.dir_buf.extend_from_slice(&label);
                stage
                    .dir_buf
                    .extend_from_slice(&(ciphertext.len() as u32).to_le_bytes());
                stage.region_buf.extend_from_slice(ciphertext);
                stage.entries += 1;
                stage.region_len += ciphertext.len() as u64;
                if stage.dir_buf.len() + stage.region_buf.len() >= *flush_bytes {
                    stage_overflow(spill, shard, stage)?;
                }
                Ok(())
            }
        }
    }

    /// Finalizes every shard and assembles the index.
    fn finish(self, bits: u32, cache_budget: Option<usize>) -> Result<ShardedIndex, StorageError> {
        match self {
            Sink::Memory { shards } => Ok(ShardedIndex::from_parts(
                bits,
                shards.into_iter().map(Shard::Memory).collect(),
            )),
            Sink::Disk {
                dir, spill, shards, ..
            } => {
                let cache = cache_budget.map(|budget| std::sync::Arc::new(BlockCache::new(budget)));
                let mut out = Vec::with_capacity(shards.len());
                for (i, stage) in shards.into_iter().enumerate() {
                    let path = dir.join(shard_file_name(i));
                    finalize_shard(&path, spill, i, stage)?;
                    if i == 0 {
                        check_kill(ExternalKillPoint::MidShardWrite)?;
                    }
                    let shard = match &cache {
                        Some(cache) => {
                            FileShard::open_cached(&path, i as u32, std::sync::Arc::clone(cache))?
                        }
                        None => FileShard::open(&path)?,
                    };
                    out.push(Shard::File(shard));
                }
                Ok(ShardedIndex::from_parts(bits, out))
            }
        }
    }
}

/// Appends a shard's buffered frames to its stage files and clears the
/// buffers.
fn stage_overflow(spill: &Path, shard: usize, stage: &mut StageShard) -> Result<(), StorageError> {
    let append = |name: String, bytes: &[u8]| -> Result<(), StorageError> {
        let path = spill.join(name);
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(bytes))
            .map_err(|error| StorageError::Io { path, error })
    };
    append(stage_dir_name(shard), &stage.dir_buf)?;
    append(stage_region_name(shard), &stage.region_buf)?;
    stage.dir_buf.clear();
    stage.region_buf.clear();
    stage.staged = true;
    Ok(())
}

/// Writes shard `shard`'s final serialized file from its staged frames —
/// header, label directory (offsets as the running length sum, exactly the
/// in-RAM layout), then the ciphertext region — and removes the stage
/// files. Small shards that never overflowed serialize straight from
/// their buffers.
fn finalize_shard(
    path: &Path,
    spill: &Path,
    shard: usize,
    mut stage: StageShard,
) -> Result<(), StorageError> {
    assert!(
        stage.region_len <= u32::MAX as u64,
        "arena limited to 4 GiB per index; shard the dataset first"
    );
    if stage.staged {
        // Flush the tail so the stage files hold everything.
        stage_overflow(spill, shard, &mut stage)?;
    }
    let dir_tmp = spill.join(stage_dir_name(shard));
    let region_tmp = spill.join(stage_region_name(shard));
    write_file_atomic(path, |writer| {
        write_shard_header(writer, stage.entries, stage.region_len)?;
        if stage.staged {
            // Stream the directory from the staged frames: read each
            // 20-byte (label, len) frame, emit the 24-byte directory entry
            // with the running offset.
            let mut frames = BufReader::new(File::open(&dir_tmp)?);
            let mut running = 0u32;
            let mut frame = [0u8; 20];
            for _ in 0..stage.entries {
                frames.read_exact(&mut frame)?;
                let len = u32::from_le_bytes(frame[16..20].try_into().unwrap());
                writer.write_all(&frame[..16])?;
                writer.write_all(&running.to_le_bytes())?;
                writer.write_all(&len.to_le_bytes())?;
                running += len;
            }
            io::copy(&mut BufReader::new(File::open(&region_tmp)?), writer)?;
        } else {
            let mut running = 0u32;
            for frame in stage.dir_buf.chunks_exact(20) {
                let len = u32::from_le_bytes(frame[16..20].try_into().unwrap());
                writer.write_all(&frame[..16])?;
                writer.write_all(&running.to_le_bytes())?;
                writer.write_all(&len.to_le_bytes())?;
                running += len;
            }
            writer.write_all(&stage.region_buf)?;
        }
        Ok(())
    })?;
    let _ = fs::remove_file(&dir_tmp);
    let _ = fs::remove_file(&region_tmp);
    Ok(())
}

// ---------------------------------------------------------------------------
// The build driver
// ---------------------------------------------------------------------------

/// Monotonic counter naming the spill directories of in-memory builds.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Where this build spills: inside the index directory for on-disk
/// backends, under the budget's spill root (or the OS temp dir) otherwise.
fn spill_dir_for(config: &StorageConfig, budget: &BuildBudget) -> PathBuf {
    match &config.backend {
        StorageBackend::OnDisk(dir) => dir.join(SPILL_DIR),
        StorageBackend::InMemory => {
            let root = budget.spill_root.clone().unwrap_or_else(std::env::temp_dir);
            let n = SPILL_COUNTER.fetch_add(1, AtomicOrdering::Relaxed);
            root.join(format!("rsse-spill-{}-{n}", std::process::id()))
        }
    }
}

/// External-memory equivalent of the grouped fixed-stride build
/// (`grouped_fixed_index_stored` in `rsse-core`): sorts `(keyword,
/// payload)` entries on disk, then per keyword group applies the keyed
/// shuffle, derives the trapdoor from `key`, and encrypts — byte-identical
/// output to the in-RAM path at bounded peak RSS.
pub fn build_index_fixed_external<const K: usize, const P: usize, R: RngCore + CryptoRng>(
    key: &SseKey,
    shuffle_key: &rsse_crypto::Key,
    entries: impl IntoIterator<Item = ([u8; K], [u8; P])>,
    config: &StorageConfig,
    rng: &mut R,
) -> Result<ShardedIndex, StorageError> {
    build_index_external_with(
        entries,
        SpillOrder::ByKeywordAndPayload,
        |keyword: &[u8; K], payloads: &mut Vec<[u8; P]>| {
            rsse_crypto::permute::keyed_shuffle(shuffle_key, keyword, payloads);
            SseScheme::trapdoor(key, keyword)
        },
        config,
        rng,
    )
}

/// The generic external-memory `BuildIndex`: spill, merge, and hand each
/// keyword group to `group_token`, which may reorder the payloads (keyed
/// shuffle) and must return the group's [`SearchToken`]. Schemes whose
/// tokens come from a delegatable PRF rather than the SSE master key
/// (Constant-BRC/URC) use this directly.
///
/// RNG consumption is one 32-byte nonce seed per keyword group, drawn in
/// merged keyword order — exactly the in-RAM build's sequence, which is
/// what makes the output bit-identical for the same `rng` stream.
pub fn build_index_external_with<const K: usize, const P: usize, R, F>(
    entries: impl IntoIterator<Item = ([u8; K], [u8; P])>,
    order: SpillOrder,
    mut group_token: F,
    config: &StorageConfig,
    rng: &mut R,
) -> Result<ShardedIndex, StorageError>
where
    R: RngCore + CryptoRng,
    F: FnMut(&[u8; K], &mut Vec<[u8; P]>) -> SearchToken,
{
    let bits = config.shard_bits;
    assert!(
        bits <= MAX_SHARD_BITS,
        "shard bits {bits} exceeds MAX_SHARD_BITS ({MAX_SHARD_BITS})"
    );
    let budget = config.build_budget.clone().unwrap_or_default();
    let spill = spill_dir_for(config, &budget);
    KILLED.with(|k| k.set(false));
    fs::create_dir_all(&spill).map_err(|error| StorageError::Io {
        path: spill.clone(),
        error,
    })?;
    // Heal leftovers of a previously crashed build before reusing the
    // directory: stale runs would shadow this build's manifest, and stale
    // stage files would corrupt the append-only scatter. Foreign files
    // survive the sweep (and the directory, therefore, survives too).
    sweep_stale_spill_files(&spill);

    let built = (|| {
        // Pass 1: stream entries into sorted runs.
        let mut spiller = Spiller::<K, P>::new(&spill, order, budget.run_entry_limit(K + P));
        for entry in entries {
            spiller.push(entry)?;
        }
        spiller.finish()?;
        check_kill(ExternalKillPoint::AfterSpill)?;

        // Pass 2: k-way merge the runs back, group, encrypt, scatter.
        let meta = read_spill_meta::<K, P>(&spill, order)?;
        let run_buffer =
            (budget.memory_bytes / 4 / meta.runs.len().max(1)).clamp(16 << 10, 1 << 20);
        let mut readers: Vec<RunReader<K, P>> = meta
            .runs
            .iter()
            .enumerate()
            .map(|(i, info)| RunReader::open(&spill, i, info, run_buffer))
            .collect::<Result<_, _>>()?;
        let full = meta.order == SpillOrder::ByKeywordAndPayload;
        let mut heap = BinaryHeap::with_capacity(readers.len());
        for (run, reader) in readers.iter_mut().enumerate() {
            if let Some((keyword, payload)) = reader.next_entry()? {
                heap.push(Reverse(HeapEntry {
                    keyword,
                    payload,
                    run,
                    full,
                }));
            }
        }

        let mut sink = Sink::new(config, &spill, &budget)?;
        let batch_bytes_limit = budget.encrypt_batch_bytes();
        let mut batch: EncryptBatch<P> = Vec::new();
        let mut batch_bytes = 0usize;
        let mut group: Option<([u8; K], Vec<[u8; P]>)> = None;
        let mut merged = 0u64;

        // Closes the current keyword group: shuffle + token + nonce seed
        // (drawn here, sequentially, in merged keyword order).
        let mut close_group = |group: ([u8; K], Vec<[u8; P]>),
                               batch: &mut EncryptBatch<P>,
                               batch_bytes: &mut usize,
                               rng: &mut R| {
            let (keyword, mut payloads) = group;
            let token = group_token(&keyword, &mut payloads);
            let mut seed = [0u8; KEY_LEN];
            rng.fill_bytes(&mut seed);
            *batch_bytes += payloads.len() * StreamCipher::ciphertext_len(P);
            batch.push((token, payloads, seed));
        };
        // Encrypts a full batch in parallel and scatters the chunks in
        // order — entries reach each shard in global (keyword, counter)
        // order, same as the in-RAM scatter.
        let flush_batch = |batch: &mut EncryptBatch<P>,
                           batch_bytes: &mut usize,
                           sink: &mut Sink<'_>|
         -> Result<(), StorageError> {
            let chunks: Vec<_> = std::mem::take(batch)
                .into_par_iter()
                .map(|(token, payloads, seed)| {
                    encrypt_payloads(
                        &token,
                        payloads.iter().map(|p| p.as_slice()),
                        payloads.len(),
                        payloads.len() * StreamCipher::ciphertext_len(P),
                        seed,
                    )
                })
                .collect();
            *batch_bytes = 0;
            for chunk in chunks {
                for (label, (offset, len)) in chunk.labels.iter().zip(&chunk.spans) {
                    let span = &chunk.buf[*offset as usize..(*offset + *len) as usize];
                    sink.accept(bits, *label, span)?;
                }
            }
            Ok(())
        };

        while let Some(Reverse(head)) = heap.pop() {
            if let Some((keyword, payload)) = readers[head.run].next_entry()? {
                heap.push(Reverse(HeapEntry {
                    keyword,
                    payload,
                    run: head.run,
                    full,
                }));
            }
            merged += 1;
            match &mut group {
                Some((keyword, payloads)) if *keyword == head.keyword => {
                    payloads.push(head.payload);
                }
                _ => {
                    if let Some(done) = group.take() {
                        close_group(done, &mut batch, &mut batch_bytes, rng);
                        if batch_bytes >= batch_bytes_limit {
                            flush_batch(&mut batch, &mut batch_bytes, &mut sink)?;
                        }
                    }
                    group = Some((head.keyword, vec![head.payload]));
                }
            }
        }
        if let Some(done) = group.take() {
            close_group(done, &mut batch, &mut batch_bytes, rng);
        }
        flush_batch(&mut batch, &mut batch_bytes, &mut sink)?;
        if merged != meta.total_entries {
            return Err(StorageError::CorruptDirectory {
                path: spill.join(SPILL_MANIFEST_FILE),
                detail: format!(
                    "merged {merged} entries but the spill manifest records {}",
                    meta.total_entries
                ),
            });
        }
        sink.finish(bits, config.cache_budget)
    })();

    match &built {
        Ok(_) => sweep_spill_dir(&spill),
        Err(_) if !KILLED.with(Cell::get) => match &config.backend {
            // cleanup_partial_index sweeps the embedded spill directory.
            StorageBackend::OnDisk(dir) => {
                crate::storage::cleanup_partial_index(dir, 1usize << bits)
            }
            StorageBackend::InMemory => sweep_spill_dir(&spill),
        },
        // A fired kill point simulates a crash: leave all debris behind.
        Err(_) => {}
    }
    built
}

/// Start-of-build variant of [`sweep_spill_dir`]: removes stale recognized
/// files but keeps the directory (this build is about to use it).
fn sweep_stale_spill_files(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_spill_file(name) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pibas::SseScheme;
    use crate::storage::test_support::TempDir;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rsse_crypto::Key;
    use std::cell::RefCell;

    /// The 13-byte `[tag, level, index]` keyword layout the range schemes
    /// feed the grouped build, so the tests sort exactly what they sort.
    fn keyword(level: u32, index: u64) -> [u8; 13] {
        let mut k = [0u8; 13];
        k[0] = b'B';
        k[1..5].copy_from_slice(&level.to_le_bytes());
        k[5..13].copy_from_slice(&index.to_le_bytes());
        k
    }

    /// The in-RAM reference: `grouped_lists` from `rsse-core` replicated
    /// inline (sort, group, keyed shuffle), then the streaming stored build.
    fn in_ram_reference(
        key: &SseKey,
        shuffle_key: &Key,
        mut entries: Vec<([u8; 13], [u8; 8])>,
        config: &StorageConfig,
        rng: &mut ChaCha20Rng,
    ) -> ShardedIndex {
        entries.sort_unstable();
        let mut lists: Vec<(Vec<u8>, Vec<[u8; 8]>)> = Vec::new();
        for (keyword, payload) in entries {
            match lists.last_mut() {
                Some((last, payloads)) if last.as_slice() == keyword.as_slice() => {
                    payloads.push(payload);
                }
                _ => lists.push((keyword.to_vec(), vec![payload])),
            }
        }
        for (keyword, payloads) in lists.iter_mut() {
            rsse_crypto::permute::keyed_shuffle(shuffle_key, keyword, payloads);
        }
        SseScheme::build_index_fixed_stored(key, &lists, config, rng).unwrap()
    }

    fn dirs_equal(a: &Path, b: &Path) -> bool {
        let list = |dir: &Path| -> Vec<String> {
            let mut names: Vec<String> = fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .collect();
            names.sort();
            names
        };
        let names = list(a);
        if names != list(b) {
            return false;
        }
        names
            .iter()
            .all(|name| fs::read(a.join(name)).unwrap() == fs::read(b.join(name)).unwrap())
    }

    /// Converts raw generated triples to entries over a small keyword
    /// space (collisions guaranteed); the generated vectors are long enough
    /// to spill several runs at the minimum run size.
    fn to_entries(raw: Vec<(u32, u64, u64)>) -> Vec<([u8; 13], [u8; 8])> {
        raw.into_iter()
            .map(|(level, index, payload)| (keyword(level, index), payload.to_le_bytes()))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The byte-identity contract: for any entries, seed, budget, and
        /// shard count, the external build produces bit-identical shard
        /// files to the in-RAM build — on both backends.
        #[test]
        fn external_build_is_byte_identical(
            raw in proptest::collection::vec((0u32..5, 0u64..4, any::<u64>()), 0..1400),
            seed in any::<u64>(),
            shard_bits in 0u32..3,
            budget_bytes in 1usize..(64 << 10),
        ) {
            let entries = to_entries(raw);
            let mut key_rng = ChaCha20Rng::seed_from_u64(seed ^ 0x5eed);
            let key = SseScheme::setup(&mut key_rng);
            let shuffle_key = Key::generate(&mut key_rng);
            let spill_root = TempDir::new("ext-prop-spill");
            let budget = BuildBudget::with_memory(budget_bytes)
                .with_spill_root(spill_root.path());

            // In-memory backend: build both ways, serialize, compare bytes.
            let ref_idx = in_ram_reference(
                &key,
                &shuffle_key,
                entries.clone(),
                &StorageConfig::in_memory(shard_bits),
                &mut ChaCha20Rng::seed_from_u64(seed),
            );
            let ext_idx = build_index_fixed_external(
                &key,
                &shuffle_key,
                entries.iter().copied(),
                &StorageConfig::in_memory(shard_bits).with_build_budget(budget.clone()),
                &mut ChaCha20Rng::seed_from_u64(seed),
            )
            .unwrap();
            let ref_dir = TempDir::new("ext-prop-ref");
            let ext_dir = TempDir::new("ext-prop-ext");
            ref_idx.save_to_dir(ref_dir.path()).unwrap();
            ext_idx.save_to_dir(ext_dir.path()).unwrap();
            prop_assert!(dirs_equal(ref_dir.path(), ext_dir.path()));
            // The in-memory spill directory is swept away on success.
            prop_assert_eq!(spill_root.subdir_count(), 0);

            // On-disk backend: both streaming builds write directly; the
            // index directories must match file for file.
            let disk_ref = TempDir::new("ext-prop-dref");
            let disk_ext = TempDir::new("ext-prop-dext");
            in_ram_reference(
                &key,
                &shuffle_key,
                entries.clone(),
                &StorageConfig::on_disk(shard_bits, disk_ref.path()),
                &mut ChaCha20Rng::seed_from_u64(seed),
            );
            build_index_fixed_external(
                &key,
                &shuffle_key,
                entries.iter().copied(),
                &StorageConfig::on_disk(shard_bits, disk_ext.path())
                    .with_build_budget(budget),
                &mut ChaCha20Rng::seed_from_u64(seed),
            )
            .unwrap();
            prop_assert!(dirs_equal(disk_ref.path(), disk_ext.path()));
        }
    }

    /// `ByKeyword` must preserve arrival order across run boundaries: the
    /// stable per-run sort plus the merge's run-index tie-break reproduce
    /// the insertion-order lists of an ordered-map grouping.
    #[test]
    fn by_keyword_merge_preserves_arrival_order() {
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let key = SseScheme::setup(&mut rng);
        // Two interleaved keywords, payloads in a deliberately non-sorted
        // arrival order, enough entries for three runs at the minimum size.
        let entries: Vec<([u8; 8], [u8; 8])> = (0..1300u64)
            .map(|i| {
                let kw = (i % 2).to_be_bytes();
                ((kw), (1300 - i).to_le_bytes())
            })
            .collect();
        let spill_root = TempDir::new("ext-stable-spill");
        let config = StorageConfig::in_memory(0)
            .with_build_budget(BuildBudget::with_memory(1).with_spill_root(spill_root.path()));
        let seen: RefCell<Vec<(u64, Vec<u64>)>> = RefCell::new(Vec::new());
        build_index_external_with(
            entries.iter().copied(),
            SpillOrder::ByKeyword,
            |keyword: &[u8; 8], payloads: &mut Vec<[u8; 8]>| {
                seen.borrow_mut().push((
                    u64::from_be_bytes(*keyword),
                    payloads.iter().map(|p| u64::from_le_bytes(*p)).collect(),
                ));
                SseScheme::trapdoor(&key, keyword)
            },
            &config,
            &mut rng,
        )
        .unwrap();
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 2, "one group per keyword");
        for (kw, payloads) in seen {
            // Arrival order for keyword kw: 1300-kw, 1298-kw, … descending.
            let expected: Vec<u64> = (0..1300u64)
                .filter(|i| i % 2 == kw)
                .map(|i| 1300 - i)
                .collect();
            assert_eq!(payloads, expected, "keyword {kw} lost arrival order");
        }
    }

    /// Empty input is a valid build: no runs, an empty manifest, and an
    /// index with the requested shard count, identical to the in-RAM one.
    #[test]
    fn empty_entry_stream_builds_empty_index() {
        let mut rng = ChaCha20Rng::seed_from_u64(9);
        let key = SseScheme::setup(&mut rng);
        let shuffle_key = Key::generate(&mut rng);
        let spill_root = TempDir::new("ext-empty-spill");
        let config = StorageConfig::in_memory(2)
            .with_build_budget(BuildBudget::with_memory(1).with_spill_root(spill_root.path()));
        let idx = build_index_fixed_external::<13, 8, _>(
            &key,
            &shuffle_key,
            std::iter::empty(),
            &config,
            &mut ChaCha20Rng::seed_from_u64(1),
        )
        .unwrap();
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.shard_count(), 4);
        let reference = in_ram_reference(
            &key,
            &shuffle_key,
            Vec::new(),
            &StorageConfig::in_memory(2),
            &mut ChaCha20Rng::seed_from_u64(1),
        );
        let a = TempDir::new("ext-empty-a");
        let b = TempDir::new("ext-empty-b");
        idx.save_to_dir(a.path()).unwrap();
        reference.save_to_dir(b.path()).unwrap();
        assert!(dirs_equal(a.path(), b.path()));
        assert_eq!(spill_root.subdir_count(), 0);
    }

    /// Shared scaffolding of the kill-point tests: build once uninterrupted
    /// (the reference bytes), then once with `point` armed (crash), assert
    /// debris + foreign-file survival, then build again and require byte
    /// convergence with the reference.
    fn crash_and_converge(point: ExternalKillPoint) {
        let mut rng = ChaCha20Rng::seed_from_u64(11);
        let key = SseScheme::setup(&mut rng);
        let shuffle_key = Key::generate(&mut rng);
        let entries: Vec<([u8; 13], [u8; 8])> = (0..1400u64)
            .map(|i| (keyword((i % 3) as u32, i % 7), i.to_le_bytes()))
            .collect();
        let budget = BuildBudget::with_memory(1);
        let build = |dir: &Path, seed: u64| {
            build_index_fixed_external(
                &key,
                &shuffle_key,
                entries.iter().copied(),
                &StorageConfig::on_disk(2, dir).with_build_budget(budget.clone()),
                &mut ChaCha20Rng::seed_from_u64(seed),
            )
        };

        let reference = TempDir::new("ext-kill-ref");
        build(reference.path(), 42).unwrap();

        let dir = TempDir::new("ext-kill");
        // A foreign file inside the spill directory: neither the crashed
        // build's skipped cleanup nor the restart's sweep may touch it.
        let spill = dir.path().join(SPILL_DIR);
        fs::create_dir_all(&spill).unwrap();
        let foreign = spill.join("operator-notes.txt");
        fs::write(&foreign, b"do not delete").unwrap();

        kill_at(Some(point));
        let err = build(dir.path(), 42).unwrap_err();
        assert!(matches!(err, StorageError::Unsupported(_)), "{err:?}");
        // The simulated crash leaves debris behind (spill dir and, for the
        // later windows, partial index files).
        assert!(spill.exists(), "crash must not clean up");
        match point {
            ExternalKillPoint::MidSpill => {
                assert!(spill.join(run_file_name(0)).exists());
                assert!(!spill.join(SPILL_MANIFEST_FILE).exists());
            }
            ExternalKillPoint::AfterSpill => {
                assert!(spill.join(SPILL_MANIFEST_FILE).exists());
            }
            ExternalKillPoint::MidShardWrite => {
                assert!(dir.path().join(crate::storage::shard_file_name(0)).exists());
            }
        }
        assert_eq!(fs::read(&foreign).unwrap(), b"do not delete");

        // The restarted build heals the debris and converges byte-for-byte.
        kill_at(None);
        build(dir.path(), 42).unwrap();
        assert_eq!(fs::read(&foreign).unwrap(), b"do not delete");
        // Only the foreign file keeps the spill directory alive.
        let leftover: Vec<String> = fs::read_dir(&spill)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(leftover, vec!["operator-notes.txt".to_string()]);
        fs::remove_file(&foreign).unwrap();
        fs::remove_dir(&spill).unwrap();
        assert!(dirs_equal(reference.path(), dir.path()));
    }

    #[test]
    fn killed_mid_spill_restart_converges() {
        crash_and_converge(ExternalKillPoint::MidSpill);
    }

    #[test]
    fn killed_after_spill_restart_converges() {
        crash_and_converge(ExternalKillPoint::AfterSpill);
    }

    #[test]
    fn killed_mid_shard_write_restart_converges() {
        crash_and_converge(ExternalKillPoint::MidShardWrite);
    }
}
