//! The Logarithmic-SRC scheme (Section 6.2).
//!
//! The result-partitioning leakage of Logarithmic-BRC/URC comes from sending
//! one token per covering node. Logarithmic-SRC sends a *single* token: the
//! query range is covered by one node of the TDAG (binary tree plus injected
//! "cousin-bridging" nodes), whose subtree has size at most `4R` (Lemma 1).
//! Each tuple is therefore replicated over its `O(log m)` TDAG ancestors at
//! build time. The scheme degenerates to plain single-keyword SSE — optimal
//! query size and the strongest privacy in the framework — at the cost of
//! false positives: `O(R)` for uniform data, but up to `O(n)` under heavy
//! skew, which motivates Logarithmic-SRC-i.

use crate::dataset::Dataset;
use crate::metrics::{IndexStats, QueryStats};
use crate::schemes::common::{
    clamp_query, grouped_fixed_index_external, grouped_fixed_index_stored, try_search_ids,
};
use crate::traits::{QueryOutcome, RangeScheme};
use rand::{CryptoRng, RngCore};
use rsse_cover::{Range, Tdag};
use rsse_crypto::{Key, KeyChain};
use rsse_sse::{
    padding, SearchToken, ShardedIndex, SseDatabase, SseKey, SseScheme, StorageConfig, StorageError,
};
use std::path::Path;

/// Owner-side state of Logarithmic-SRC.
#[derive(Clone, Debug)]
pub struct LogSrcScheme {
    key: SseKey,
    tdag: Tdag,
}

/// Server-side state: one encrypted multimap with `O(n log m)` entries
/// (sharded by label prefix when built through a `*_sharded` constructor).
#[derive(Clone, Debug)]
pub struct LogSrcServer {
    index: ShardedIndex,
}

impl LogSrcServer {
    /// Number of label-prefix bits sharding the dictionary.
    pub fn shard_bits(&self) -> u32 {
        self.index.shard_bits()
    }

    /// Serializes the server's dictionary into `dir` (see
    /// [`ShardedIndex::save_to_dir`]).
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<(), StorageError> {
        self.index.save_to_dir(dir)
    }

    /// Cold-opens a server over a previously saved (or disk-built)
    /// dictionary; the shards are served via paged reads without a rebuild.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Ok(Self {
            index: ShardedIndex::open_dir(dir)?,
        })
    }
}

/// Chaos-harness support (see the `rsse_sse::fault` module): injected
/// faults wrap this server's dictionary.
impl rsse_sse::FaultInjectable for LogSrcServer {
    fn fault_indexes(&mut self) -> Vec<&mut ShardedIndex> {
        vec![&mut self.index]
    }
}

impl LogSrcScheme {
    /// Builds the scheme, optionally padding the multimap to
    /// `n · (2⌈log m⌉ + 1)` entries.
    pub fn build_full<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        pad: bool,
        rng: &mut R,
    ) -> (Self, LogSrcServer) {
        Self::build_full_sharded(dataset, pad, 0, rng)
    }

    /// Sharded variant of [`build_full`](Self::build_full): the dictionary
    /// is split into `2^shard_bits` in-memory label-prefix shards.
    pub fn build_full_sharded<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        pad: bool,
        shard_bits: u32,
        rng: &mut R,
    ) -> (Self, LogSrcServer) {
        Self::build_full_stored(dataset, pad, &StorageConfig::in_memory(shard_bits), rng)
            .expect("in-memory build cannot fail")
    }

    /// Storage-dispatching variant of [`build_full`](Self::build_full): the
    /// dictionary lives on the backend `config` selects (in-memory arenas
    /// or shard files streamed to disk during BuildIndex).
    pub fn build_full_stored<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        pad: bool,
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<(Self, LogSrcServer), StorageError> {
        let domain = *dataset.domain();
        let tdag = Tdag::new(domain);
        let chain = KeyChain::generate(rng);
        let key = SseScheme::key_from(chain.derive(b"sse"));
        let shuffle_key: Key = chain.derive(b"shuffle");

        let index = if pad {
            let mut db = SseDatabase::new();
            for record in dataset.records() {
                for node in tdag.covering_nodes(record.value) {
                    db.add(node.keyword().to_vec(), record.id_payload());
                }
            }
            db.shuffle_lists(&shuffle_key);
            let target = padding::logarithmic_padding_target(dataset.len(), domain.size(), true);
            padding::pad_to(&mut db, target, 8);
            SseScheme::build_index_stored(&key, &db, config, rng)?
        } else if config.build_budget.is_some() {
            // Budgeted build: stream (TDAG keyword, id) entries straight
            // into the external spill/merge pipeline — nothing
            // corpus-sized is ever collected, output is byte-identical.
            let entries = dataset.records().iter().flat_map(|record| {
                let payload = record.id_payload_array();
                tdag.covering_nodes(record.value)
                    .into_iter()
                    .map(move |node| (node.keyword(), payload))
            });
            grouped_fixed_index_external(&key, &shuffle_key, entries, config, rng)?
        } else {
            // Unpadded fast path: flat (TDAG keyword, id) entries grouped by
            // one sort, keyed-shuffled per keyword inside the helper.
            let mut entries = Vec::with_capacity(dataset.len() * (domain.bits() as usize + 2));
            for record in dataset.records() {
                let payload = record.id_payload_array();
                for node in tdag.covering_nodes(record.value) {
                    entries.push((node.keyword(), payload));
                }
            }
            grouped_fixed_index_stored(&key, &shuffle_key, entries, config, rng)?
        };
        Ok((Self { key, tdag }, LogSrcServer { index }))
    }

    /// `Trpdr`: the single token for the SRC covering node of the range.
    pub fn trapdoor(&self, range: Range) -> Option<SearchToken> {
        let clamped = clamp_query(self.tdag.domain(), range)?;
        let node = self.tdag.src_cover(clamped);
        Some(SseScheme::trapdoor(&self.key, &node.keyword()))
    }

    /// The TDAG this scheme indexes with (used by tests and the cover
    /// ablation bench).
    pub fn tdag(&self) -> &Tdag {
        &self.tdag
    }
}

impl RangeScheme for LogSrcScheme {
    type Server = LogSrcServer;
    const NAME: &'static str = "Logarithmic-SRC";

    fn build<R: RngCore + CryptoRng>(dataset: &Dataset, rng: &mut R) -> (Self, Self::Server) {
        Self::build_full(dataset, false, rng)
    }

    fn build_sharded<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        shard_bits: u32,
        rng: &mut R,
    ) -> (Self, Self::Server) {
        Self::build_full_sharded(dataset, false, shard_bits, rng)
    }

    fn build_stored<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<(Self, Self::Server), StorageError> {
        Self::build_full_stored(dataset, false, config, rng)
    }

    fn try_query(&self, server: &Self::Server, range: Range) -> Result<QueryOutcome, StorageError> {
        let Some(token) = self.trapdoor(range) else {
            return Ok(QueryOutcome::default());
        };
        let (ids, groups) = try_search_ids(&server.index, &[token])?;
        let touched = groups.iter().sum();
        Ok(QueryOutcome {
            ids,
            stats: QueryStats {
                tokens_sent: 1,
                token_bytes: SearchToken::SIZE_BYTES,
                rounds: 1,
                entries_touched: touched,
                result_groups: 1,
            },
        })
    }

    fn index_stats(server: &Self::Server) -> IndexStats {
        IndexStats {
            entries: server.index.len(),
            storage_bytes: server.index.storage_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Record};
    use crate::metrics::Evaluation;
    use crate::schemes::testutil;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rsse_cover::Domain;

    #[test]
    fn results_are_complete_with_bounded_false_positives_on_uniform_data() {
        let dataset = testutil::uniform_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let (client, server) = LogSrcScheme::build(&dataset, &mut rng);
        for range in testutil::query_mix(dataset.domain().size()) {
            let outcome = client.query(&server, range);
            let eval = testutil::assert_complete(&dataset, range, &outcome);
            // Every returned id lies in the SRC covering node's range, which
            // has width at most 4R — so on near-uniform data false positives
            // stay proportional to R (we only check the structural bound
            // here; the quantitative behaviour is Figure 6's experiment).
            let cover = client
                .tdag()
                .src_cover(range.intersection(dataset.domain().full_range()).unwrap());
            let upper = dataset.result_size(cover.range());
            assert!(eval.true_positives + eval.false_positives <= upper);
        }
    }

    #[test]
    fn single_token_and_single_group() {
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let (client, server) = LogSrcScheme::build(&dataset, &mut rng);
        let outcome = client.query(&server, Range::new(3, 50));
        assert_eq!(outcome.stats.tokens_sent, 1);
        assert_eq!(outcome.stats.result_groups, 1);
        assert_eq!(outcome.stats.token_bytes, SearchToken::SIZE_BYTES);
        assert_eq!(outcome.stats.rounds, 1);
    }

    #[test]
    fn skew_can_blow_up_false_positives() {
        // The paper's own worked example (Section 6.2 / Figure 4): most of
        // the dataset sits on value 2; the query [3,5] is covered by
        // N_{2,5}, so the whole pile on value 2 comes back as false
        // positives. This is exactly the weakness SRC-i fixes.
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let (client, server) = LogSrcScheme::build(&dataset, &mut rng);
        let range = Range::new(3, 5);
        let outcome = client.query(&server, range);
        let eval = testutil::assert_complete(&dataset, range, &outcome);
        assert!(
            eval.false_positives >= 10,
            "expected the value-2 pile to be returned as false positives, got {}",
            eval.false_positives
        );
    }

    #[test]
    fn index_entries_match_tdag_replication() {
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let (client, server) = LogSrcScheme::build(&dataset, &mut rng);
        let expected: usize = dataset
            .records()
            .iter()
            .map(|r| client.tdag().covering_nodes(r.value).len())
            .sum();
        assert_eq!(LogSrcScheme::index_stats(&server).entries, expected);
        // TDAG replication is strictly larger than plain-tree replication
        // but still O(n log m).
        let bits = dataset.domain().bits() as usize;
        assert!(expected <= dataset.len() * (2 * bits + 1));
        assert!(expected > dataset.len() * (bits + 1));
    }

    #[test]
    fn padded_build_still_answers_queries() {
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let (client, server) = LogSrcScheme::build_full(&dataset, true, &mut rng);
        let range = Range::new(0, 63);
        testutil::assert_complete(&dataset, range, &client.query(&server, range));
        assert_eq!(
            LogSrcScheme::index_stats(&server).entries,
            dataset.len() * (2 * dataset.domain().bits() as usize + 1)
        );
    }

    #[test]
    fn out_of_domain_query_is_empty() {
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let (client, server) = LogSrcScheme::build(&dataset, &mut rng);
        assert!(client.query(&server, Range::new(100, 200)).is_empty());
    }

    #[test]
    fn disk_built_server_cold_opens_and_answers_identically() {
        let dataset = testutil::skewed_dataset();
        let dir = testutil::TempDir::new("logsrc-disk");
        let mut rng_mem = ChaCha20Rng::seed_from_u64(51);
        let (_, mem_server) = LogSrcScheme::build(&dataset, &mut rng_mem);
        let mut rng_disk = ChaCha20Rng::seed_from_u64(51);
        let (client, disk_server) = LogSrcScheme::build_full_stored(
            &dataset,
            false,
            &StorageConfig::on_disk(3, dir.path()),
            &mut rng_disk,
        )
        .unwrap();
        drop(disk_server);
        let reopened = LogSrcServer::open_dir(dir.path()).unwrap();
        assert_eq!(reopened.shard_bits(), 3);
        for range in testutil::query_mix(dataset.domain().size()) {
            assert_eq!(
                client.query(&reopened, range).ids,
                client.query(&mem_server, range).ids,
                "cold-open must answer like the in-memory server for {range}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn never_misses_and_false_positives_stay_in_cover(
            values in proptest::collection::vec(0u64..200, 1..50),
            lo in 0u64..200,
            len in 1u64..200)
        {
            let domain = Domain::new(200);
            let records: Vec<Record> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| Record::new(i as u64, v))
                .collect();
            let dataset = Dataset::new(domain, records).unwrap();
            let mut rng = ChaCha20Rng::seed_from_u64(7);
            let (client, server) = LogSrcScheme::build(&dataset, &mut rng);
            let hi = (lo + len - 1).min(199);
            let range = Range::new(lo, hi);
            let outcome = client.query(&server, range);
            let expected = dataset.matching_ids(range);
            let eval = Evaluation::compare(&outcome.ids, &expected);
            prop_assert!(eval.is_complete());
            // Everything returned lies inside the SRC node's range.
            let cover = client.tdag().src_cover(range);
            for id in &outcome.ids {
                let record = dataset.records().iter().find(|r| r.id == *id).unwrap();
                prop_assert!(cover.range().contains(record.value));
            }
        }
    }
}
