//! Open-loop trace replay: drive a real server at trace-dictated send
//! times and report what its tails actually look like.
//!
//! The engine ([`replay`]) walks a [`Trace`] with a pool of worker threads.
//! Each worker claims the next event, sleeps until its scheduled send time,
//! fires it at the [`ReplayTarget`], and records the latency **from the
//! scheduled send time**, not from when the call started. A server that
//! falls behind therefore shows the delay in its latency distribution
//! instead of silently slowing the generator down — the standard fix for
//! *coordinated omission*. Late events are never skipped or back-pressured;
//! they fire immediately and their lag counts.
//!
//! Two targets adapt the repo's serving stacks:
//!
//! * [`ResilientTarget`] — query-only replay against a
//!   [`ResilientServer`], trapdoors computed by a caller-supplied closure;
//! * [`ManagedTarget`] — mixed query + insert replay against an
//!   [`UpdateManager`], queries under a shared retry policy, inserts
//!   serialized through a write lock (the owner is single-writer by
//!   design).
//!
//! Every worker keeps its own [`LatencyHistogram`] and per-tenant counters;
//! the engine merges them at the end, so the mergeability property the
//! histogram tests pin down is exactly what the engine relies on.

use crate::histogram::LatencyHistogram;
use crate::trace::{EventKind, Trace};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse_core::{QueryOutcome, RangeScheme};
use rsse_cover::Range;
use rsse_serve::{ResilientServer, RetryPolicy, ServeError, ServeIndex, SystemClock};
use rsse_sse::SearchToken;
use rsse_updates::{UpdateEntry, UpdateManager};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

/// How a replayed query ended, bucketing [`ServeError`] variants into the
/// classes the reports track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryFate {
    /// Full outcome returned.
    Served,
    /// Deadline expired mid-scan; a typed partial outcome came back.
    Partial,
    /// Shed at admission (queue bound or cache pressure).
    Shed,
    /// Failed fast on an open shard breaker.
    Unavailable,
    /// Ran out of retry attempts or budget.
    Exhausted,
    /// The target itself could not issue the query (e.g. no trapdoor for
    /// the range) — never expected in a healthy replay.
    Failed,
}

impl QueryFate {
    /// Classifies a resilient serving result.
    pub fn of_serve(result: &Result<QueryOutcome, ServeError>) -> Self {
        match result {
            Ok(_) => Self::Served,
            Err(ServeError::Overloaded { .. }) => Self::Shed,
            Err(ServeError::DeadlineExceeded { .. }) => Self::Partial,
            Err(ServeError::ShardUnavailable { .. }) => Self::Unavailable,
            Err(ServeError::RetriesExhausted { .. }) => Self::Exhausted,
        }
    }
}

/// Anything a trace can be replayed against. Implementations must be
/// callable from many worker threads at once (`Sync` is required by
/// [`replay`]).
pub trait ReplayTarget {
    /// Issues one range query on behalf of `tenant`.
    fn query(&self, tenant: &str, range: Range) -> QueryFate;
    /// Applies one insert batch; `false` marks it failed.
    fn insert(&self, entries: &[UpdateEntry]) -> bool;
}

/// Query-only adapter over a [`ResilientServer`]: ranges are turned into
/// search tokens by `trapdoor` and served on the direct tenant-attributed
/// path ([`ResilientServer::answer_for`]). Insert events are rejected —
/// replay mixed traces against a [`ManagedTarget`] instead.
pub struct ResilientTarget<'a, B: ServeIndex, F> {
    server: &'a ResilientServer<B>,
    trapdoor: F,
    deadline: Option<Duration>,
}

impl<'a, B, F> ResilientTarget<'a, B, F>
where
    B: ServeIndex,
    F: Fn(Range) -> Option<Vec<SearchToken>> + Sync,
{
    /// Wraps a server. `deadline` applies per query; `None` falls back to
    /// the server's configured default.
    pub fn new(server: &'a ResilientServer<B>, trapdoor: F, deadline: Option<Duration>) -> Self {
        Self {
            server,
            trapdoor,
            deadline,
        }
    }
}

impl<B, F> ReplayTarget for ResilientTarget<'_, B, F>
where
    B: ServeIndex,
    F: Fn(Range) -> Option<Vec<SearchToken>> + Sync,
{
    fn query(&self, tenant: &str, range: Range) -> QueryFate {
        let Some(tokens) = (self.trapdoor)(range) else {
            return QueryFate::Failed;
        };
        QueryFate::of_serve(&self.server.answer_for(tenant, &tokens, self.deadline))
    }

    fn insert(&self, _entries: &[UpdateEntry]) -> bool {
        false
    }
}

/// Mixed query + insert adapter over an [`UpdateManager`]: queries take a
/// read lock and run under one shared [`RetryPolicy`]; insert batches take
/// the write lock (the manager is a single-writer owner object, so the
/// trace's insert stream is serialized exactly as a real owner would).
pub struct ManagedTarget<S: RangeScheme> {
    manager: RwLock<UpdateManager<S>>,
    policy: RetryPolicy,
    clock: SystemClock,
    rng: Mutex<ChaCha20Rng>,
}

impl<S: RangeScheme> ManagedTarget<S> {
    /// Wraps a manager; `policy` governs query retries, `seed` pins the
    /// ingest encryption RNG.
    pub fn new(manager: UpdateManager<S>, policy: RetryPolicy, seed: u64) -> Self {
        Self {
            manager: RwLock::new(manager),
            policy,
            clock: SystemClock::new(),
            rng: Mutex::new(ChaCha20Rng::seed_from_u64(seed)),
        }
    }

    /// Unwraps the manager (for post-replay inspection or cold-start
    /// persistence checks).
    pub fn into_inner(self) -> UpdateManager<S> {
        self.manager.into_inner().expect("manager lock poisoned")
    }

    /// Runs `f` against the manager under the read lock.
    pub fn with_manager<T>(&self, f: impl FnOnce(&UpdateManager<S>) -> T) -> T {
        f(&self.manager.read().expect("manager lock poisoned"))
    }
}

impl<S: RangeScheme> ReplayTarget for ManagedTarget<S>
where
    UpdateManager<S>: Send + Sync,
{
    fn query(&self, _tenant: &str, range: Range) -> QueryFate {
        let manager = self.manager.read().expect("manager lock poisoned");
        QueryFate::of_serve(&manager.try_query_resilient(range, &self.policy, &self.clock))
    }

    fn insert(&self, entries: &[UpdateEntry]) -> bool {
        let mut manager = self.manager.write().expect("manager lock poisoned");
        let mut rng = self.rng.lock().expect("ingest rng poisoned");
        manager
            .try_ingest_batch(entries.to_vec(), &mut *rng)
            .is_ok()
    }
}

/// Replay tuning.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Worker threads firing events. More workers tolerate more in-flight
    /// slow requests before the open-loop schedule slips.
    pub workers: usize,
    /// Trace-time compression: `2.0` replays a trace twice as fast as its
    /// timestamps say (every `at` is divided by this). `1.0` = real time.
    pub time_scale: f64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            time_scale: 1.0,
        }
    }
}

/// Per-tenant outcome counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantCounts {
    /// Queries attempted.
    pub queries: u64,
    /// Queries served in full.
    pub served_ok: u64,
    /// Deadline-expired queries returning typed partial outcomes.
    pub partial: u64,
    /// Queries shed at admission.
    pub shed: u64,
    /// Queries failed fast on an open breaker.
    pub unavailable: u64,
    /// Queries that exhausted retries.
    pub retry_exhausted: u64,
    /// Queries the target could not issue — unexpected errors.
    pub failed: u64,
    /// Insert batches attempted.
    pub inserts: u64,
    /// Insert batches that failed — unexpected errors.
    pub insert_failures: u64,
}

impl TenantCounts {
    fn absorb(&mut self, other: &TenantCounts) {
        self.queries += other.queries;
        self.served_ok += other.served_ok;
        self.partial += other.partial;
        self.shed += other.shed;
        self.unavailable += other.unavailable;
        self.retry_exhausted += other.retry_exhausted;
        self.failed += other.failed;
        self.inserts += other.inserts;
        self.insert_failures += other.insert_failures;
    }

    fn count_query(&mut self, fate: QueryFate) {
        self.queries += 1;
        match fate {
            QueryFate::Served => self.served_ok += 1,
            QueryFate::Partial => self.partial += 1,
            QueryFate::Shed => self.shed += 1,
            QueryFate::Unavailable => self.unavailable += 1,
            QueryFate::Exhausted => self.retry_exhausted += 1,
            QueryFate::Failed => self.failed += 1,
        }
    }
}

/// One tenant's row in the report.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Tenant name from the trace.
    pub tenant: String,
    /// Its outcome counters.
    pub counts: TenantCounts,
}

/// Everything one replay run measured.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Events fired (queries + insert batches).
    pub events: u64,
    /// Wall-clock time from first scheduled send to last completion.
    pub wall: Duration,
    /// Event rate the trace asked for (after time scaling).
    pub offered_per_sec: f64,
    /// Event rate actually sustained (`events / wall`).
    pub achieved_per_sec: f64,
    /// Events whose worker picked them up after their scheduled send time.
    pub late_events: u64,
    /// Largest observed start lag — how far the schedule slipped.
    pub max_lag: Duration,
    /// Query latency from *scheduled send* to completion
    /// (coordinated-omission corrected).
    pub latency: LatencyHistogram,
    /// Insert-batch latency, same convention.
    pub insert_latency: LatencyHistogram,
    /// Per-tenant outcome counters, in trace tenant order.
    pub tenants: Vec<TenantReport>,
}

impl ReplayReport {
    /// Outcome counters summed over all tenants.
    pub fn totals(&self) -> TenantCounts {
        let mut total = TenantCounts::default();
        for tenant in &self.tenants {
            total.absorb(&tenant.counts);
        }
        total
    }

    /// Queries that ended in an **unexpected** class — target-level
    /// failures and failed insert batches. Shed / partial / breaker
    /// outcomes are expected degraded modes, not errors.
    pub fn unexpected_errors(&self) -> u64 {
        let totals = self.totals();
        totals.failed + totals.insert_failures
    }

    /// Serializes the report as a JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let totals = self.totals();
        let mut tenants = String::new();
        for (i, tenant) in self.tenants.iter().enumerate() {
            if i > 0 {
                tenants.push(',');
            }
            let c = &tenant.counts;
            tenants.push_str(&format!(
                "{{\"tenant\":\"{}\",\"queries\":{},\"served_ok\":{},\"partial\":{},\
                 \"shed\":{},\"unavailable\":{},\"retry_exhausted\":{},\"failed\":{},\
                 \"inserts\":{},\"insert_failures\":{}}}",
                json_escape(&tenant.tenant),
                c.queries,
                c.served_ok,
                c.partial,
                c.shed,
                c.unavailable,
                c.retry_exhausted,
                c.failed,
                c.inserts,
                c.insert_failures
            ));
        }
        format!(
            "{{\"events\":{},\"queries\":{},\"inserts\":{},\"wall_ms\":{:.3},\
             \"offered_per_sec\":{:.1},\"achieved_per_sec\":{:.1},\
             \"late_events\":{},\"max_lag_ms\":{:.3},\
             \"latency_ms\":{{\"p50\":{:.4},\"p99\":{:.4},\"p999\":{:.4},\
             \"mean\":{:.4},\"max\":{:.4}}},\
             \"insert_latency_ms\":{{\"p50\":{:.4},\"p99\":{:.4},\"max\":{:.4}}},\
             \"tenants\":[{}]}}",
            self.events,
            totals.queries,
            totals.inserts,
            ms(self.wall),
            self.offered_per_sec,
            self.achieved_per_sec,
            self.late_events,
            ms(self.max_lag),
            ms(self.latency.quantile(0.50)),
            ms(self.latency.quantile(0.99)),
            ms(self.latency.quantile(0.999)),
            ms(self.latency.mean()),
            ms(self.latency.max()),
            ms(self.insert_latency.quantile(0.50)),
            ms(self.insert_latency.quantile(0.99)),
            ms(self.insert_latency.max()),
            tenants
        )
    }
}

/// Milliseconds as a float, for JSON.
fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-worker measurement state, merged after the join.
struct WorkerLog {
    latency: LatencyHistogram,
    insert_latency: LatencyHistogram,
    tenants: Vec<TenantCounts>,
    late_events: u64,
    max_lag: Duration,
}

impl WorkerLog {
    fn new(tenants: usize) -> Self {
        Self {
            latency: LatencyHistogram::new(),
            insert_latency: LatencyHistogram::new(),
            tenants: vec![TenantCounts::default(); tenants],
            late_events: 0,
            max_lag: Duration::ZERO,
        }
    }
}

/// Replays `trace` against `target` open-loop (see the [module
/// docs](self)) and returns the merged measurements.
///
/// Outcome *counts* are deterministic for a healthy target regardless of
/// worker count — events are claimed from one shared cursor and every event
/// fires exactly once; only the latency samples vary run to run.
///
/// # Panics
/// Panics if `config.workers` is zero or `config.time_scale` is not
/// strictly positive.
pub fn replay<T: ReplayTarget + Sync>(
    trace: &Trace,
    target: &T,
    config: &ReplayConfig,
) -> ReplayReport {
    assert!(config.workers >= 1, "need at least one replay worker");
    assert!(config.time_scale > 0.0, "time_scale must be positive");

    let cursor = AtomicUsize::new(0);
    let logs = Mutex::new(Vec::with_capacity(config.workers));
    let start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..config.workers {
            scope.spawn(|| {
                let mut log = WorkerLog::new(trace.tenants.len());
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(event) = trace.events.get(index) else {
                        break;
                    };
                    let scheduled = event.at.div_f64(config.time_scale);
                    let now = start.elapsed();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    } else if now > scheduled {
                        let lag = now - scheduled;
                        log.late_events += 1;
                        log.max_lag = log.max_lag.max(lag);
                    }
                    let counts = &mut log.tenants[event.tenant as usize];
                    let tenant = &trace.tenants[event.tenant as usize];
                    match &event.kind {
                        EventKind::Query(range) => {
                            counts.count_query(target.query(tenant, *range));
                            log.latency
                                .record(start.elapsed().saturating_sub(scheduled));
                        }
                        EventKind::InsertBatch(entries) => {
                            counts.inserts += 1;
                            if !target.insert(entries) {
                                counts.insert_failures += 1;
                            }
                            log.insert_latency
                                .record(start.elapsed().saturating_sub(scheduled));
                        }
                    }
                }
                logs.lock().expect("worker log lock").push(log);
            });
        }
    });
    let wall = start.elapsed();

    let mut latency = LatencyHistogram::new();
    let mut insert_latency = LatencyHistogram::new();
    let mut tenants = vec![TenantCounts::default(); trace.tenants.len()];
    let mut late_events = 0;
    let mut max_lag = Duration::ZERO;
    for log in logs.into_inner().expect("worker log lock") {
        latency.merge(&log.latency);
        insert_latency.merge(&log.insert_latency);
        for (total, worker) in tenants.iter_mut().zip(&log.tenants) {
            total.absorb(worker);
        }
        late_events += log.late_events;
        max_lag = max_lag.max(log.max_lag);
    }

    let scaled_horizon = trace.horizon().div_f64(config.time_scale);
    ReplayReport {
        events: trace.len() as u64,
        wall,
        offered_per_sec: if scaled_horizon > Duration::ZERO {
            trace.len() as f64 / scaled_horizon.as_secs_f64()
        } else {
            0.0
        },
        achieved_per_sec: if wall > Duration::ZERO {
            trace.len() as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        late_events,
        max_lag,
        latency,
        insert_latency,
        tenants: trace
            .tenants
            .iter()
            .zip(tenants)
            .map(|(tenant, counts)| TenantReport {
                tenant: tenant.clone(),
                counts,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use crate::trace::TraceSpec;
    use rsse_cover::Domain;
    use std::sync::atomic::AtomicU64;

    /// A target that records exactly what it was asked to do.
    #[derive(Default)]
    struct CountingTarget {
        queries: AtomicU64,
        inserts: AtomicU64,
        fail_inserts: bool,
    }

    impl ReplayTarget for CountingTarget {
        fn query(&self, _tenant: &str, _range: Range) -> QueryFate {
            self.queries.fetch_add(1, Ordering::Relaxed);
            QueryFate::Served
        }

        fn insert(&self, entries: &[UpdateEntry]) -> bool {
            self.inserts
                .fetch_add(entries.len() as u64, Ordering::Relaxed);
            !self.fail_inserts
        }
    }

    fn fast_trace(seed: u64) -> Trace {
        let mut spec = TraceSpec::queries_only(
            Domain::new(1 << 12),
            ArrivalProcess::Poisson {
                rate_per_sec: 20_000.0,
            },
            Duration::from_millis(50),
        );
        spec.insert_fraction = 0.25;
        spec.insert_batch = 4;
        spec.generate(&mut ChaCha20Rng::seed_from_u64(seed))
    }

    #[test]
    fn every_event_fires_exactly_once() {
        let trace = fast_trace(1);
        let target = CountingTarget::default();
        let report = replay(
            &trace,
            &target,
            &ReplayConfig {
                workers: 4,
                time_scale: 50.0,
            },
        );
        assert_eq!(report.events, trace.len() as u64);
        let totals = report.totals();
        assert_eq!(totals.queries, trace.query_count() as u64);
        assert_eq!(totals.inserts, trace.insert_count() as u64);
        assert_eq!(target.queries.load(Ordering::Relaxed), totals.queries);
        assert_eq!(totals.served_ok, totals.queries);
        assert_eq!(report.latency.count(), totals.queries);
        assert_eq!(report.insert_latency.count(), totals.inserts);
        assert_eq!(report.unexpected_errors(), 0);
        // Per-tenant counts add up and every tenant saw traffic.
        assert_eq!(report.tenants.len(), trace.tenants.len());
        assert!(report.tenants.iter().all(|t| t.counts.queries > 0));
    }

    #[test]
    fn failed_inserts_are_unexpected_errors() {
        let trace = fast_trace(2);
        let target = CountingTarget {
            fail_inserts: true,
            ..CountingTarget::default()
        };
        let report = replay(
            &trace,
            &target,
            &ReplayConfig {
                workers: 2,
                time_scale: 100.0,
            },
        );
        let totals = report.totals();
        assert_eq!(totals.insert_failures, totals.inserts);
        assert_eq!(report.unexpected_errors(), totals.inserts);
    }

    #[test]
    fn slow_target_shows_up_as_lag_not_lost_events() {
        struct SlowTarget;
        impl ReplayTarget for SlowTarget {
            fn query(&self, _tenant: &str, _range: Range) -> QueryFate {
                std::thread::sleep(Duration::from_micros(500));
                QueryFate::Served
            }
            fn insert(&self, _entries: &[UpdateEntry]) -> bool {
                std::thread::sleep(Duration::from_micros(500));
                true
            }
        }
        // One worker, events every ~50µs, service time 500µs: the schedule
        // must slip, and the slip must be recorded, not dropped.
        let trace = fast_trace(3);
        let report = replay(
            &trace,
            &SlowTarget,
            &ReplayConfig {
                workers: 1,
                time_scale: 1.0,
            },
        );
        assert_eq!(report.events, trace.len() as u64);
        assert!(report.late_events > 0, "a saturated run must record lag");
        assert!(report.max_lag > Duration::ZERO);
        // Coordinated-omission correction: the p99 reflects queueing delay,
        // far beyond the 500µs service time.
        assert!(report.latency.quantile(0.99) > Duration::from_millis(2));
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let trace = fast_trace(4);
        let report = replay(
            &trace,
            &CountingTarget::default(),
            &ReplayConfig {
                workers: 2,
                time_scale: 100.0,
            },
        );
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"p999\""));
        assert!(json.contains("\"tenant\":\"tenant-0\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
