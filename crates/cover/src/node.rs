//! Nodes of the full binary tree (dyadic intervals) over the domain.

use crate::domain::{Domain, Range};
use std::fmt;

/// A node of the full binary tree built bottom-up over the domain.
///
/// The node at `(level, index)` covers the dyadic interval
/// `[index · 2^level, (index + 1) · 2^level − 1]`; leaves are at level 0 and
/// the root of a `b`-bit domain is at level `b`. Using Figure 1 of the paper
/// (domain `{0…7}`), `N_{4,7}` is `Node { level: 2, index: 1 }`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node {
    level: u32,
    index: u64,
}

impl Node {
    /// Creates the node at `(level, index)`.
    pub fn new(level: u32, index: u64) -> Self {
        assert!(level <= 63, "node level must be at most 63");
        Self { level, index }
    }

    /// The leaf node for a domain value.
    pub fn leaf(value: u64) -> Self {
        Self::new(0, value)
    }

    /// The root node of a domain.
    pub fn root(domain: &Domain) -> Self {
        Self::new(domain.bits(), 0)
    }

    /// The level (subtree height) of the node; leaves are level 0.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Position of the node among its level, left to right.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The dyadic interval covered by this node.
    pub fn range(&self) -> Range {
        let lo = self.index << self.level;
        let hi = lo + (1u64 << self.level) - 1;
        Range::new(lo, hi)
    }

    /// Number of leaves (domain values) below this node.
    pub fn width(&self) -> u64 {
        1u64 << self.level
    }

    /// Whether the node's subtree contains `value`.
    pub fn contains(&self, value: u64) -> bool {
        self.range().contains(value)
    }

    /// The parent node (one level up); `None` if already at `max_level`.
    pub fn parent(&self, max_level: u32) -> Option<Node> {
        if self.level >= max_level {
            None
        } else {
            Some(Node::new(self.level + 1, self.index >> 1))
        }
    }

    /// The two children of the node; `None` for leaves.
    pub fn children(&self) -> Option<(Node, Node)> {
        if self.level == 0 {
            None
        } else {
            Some((
                Node::new(self.level - 1, self.index << 1),
                Node::new(self.level - 1, (self.index << 1) + 1),
            ))
        }
    }

    /// The ancestor of `value` at level `level`.
    pub fn ancestor_of(value: u64, level: u32) -> Node {
        Node::new(level, value >> level)
    }

    /// All nodes on the path from the leaf of `value` up to the domain root,
    /// leaf first. These are exactly the `⌈log m⌉ + 1` dyadic ranges covering
    /// the value (the `DR(d)` of Li et al., and the keywords assigned to a
    /// tuple by the Logarithmic-BRC/URC schemes).
    pub fn path_to_root(domain: &Domain, value: u64) -> Vec<Node> {
        assert!(domain.contains(value), "value {value} outside the domain");
        (0..=domain.bits())
            .map(|level| Node::ancestor_of(value, level))
            .collect()
    }

    /// A stable byte-string keyword identifying the node, suitable for use as
    /// an SSE keyword. Distinct nodes always map to distinct keywords, and
    /// keywords of binary-tree nodes never collide with TDAG keywords (the
    /// first byte is a structure tag).
    pub fn keyword(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0] = b'B';
        out[1..5].copy_from_slice(&self.level.to_le_bytes());
        out[5..13].copy_from_slice(&self.index.to_le_bytes());
        out
    }
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.range();
        write!(f, "N[{},{}]@L{}", r.lo(), r.hi(), self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn figure1_node_ranges() {
        // Domain {0..7}: N_{2,3} is level 1 index 1, N_{4,7} is level 2 index 1.
        assert_eq!(Node::new(1, 1).range(), Range::new(2, 3));
        assert_eq!(Node::new(2, 1).range(), Range::new(4, 7));
        assert_eq!(Node::new(3, 0).range(), Range::new(0, 7));
        assert_eq!(Node::new(0, 6).range(), Range::new(6, 6));
    }

    #[test]
    fn parent_child_roundtrip() {
        let node = Node::new(2, 5);
        let (left, right) = node.children().unwrap();
        assert_eq!(left.range().lo(), node.range().lo());
        assert_eq!(right.range().hi(), node.range().hi());
        assert_eq!(left.parent(10).unwrap(), node);
        assert_eq!(right.parent(10).unwrap(), node);
        assert!(Node::leaf(3).children().is_none());
        assert!(Node::new(4, 0).parent(4).is_none());
    }

    #[test]
    fn path_to_root_covers_value_at_every_level() {
        let domain = Domain::new(8);
        let path = Node::path_to_root(&domain, 3);
        assert_eq!(path.len(), 4);
        for (level, node) in path.iter().enumerate() {
            assert_eq!(node.level(), level as u32);
            assert!(node.contains(3));
        }
        // Worked example from Section 6.1: d.a = 3 maps to N_3, N_{2,3},
        // N_{0,3}, N_{0,7}.
        assert_eq!(path[0].range(), Range::new(3, 3));
        assert_eq!(path[1].range(), Range::new(2, 3));
        assert_eq!(path[2].range(), Range::new(0, 3));
        assert_eq!(path[3].range(), Range::new(0, 7));
    }

    #[test]
    fn keywords_are_unique() {
        let mut seen = HashSet::new();
        for level in 0..6u32 {
            for index in 0..(1 << (6 - level)) {
                assert!(seen.insert(Node::new(level, index).keyword()));
            }
        }
    }

    #[test]
    fn root_covers_padded_domain() {
        let domain = Domain::new(100);
        let root = Node::root(&domain);
        assert_eq!(root.range(), Range::new(0, 127));
        assert_eq!(root.width(), 128);
    }

    #[test]
    fn debug_rendering_is_compact() {
        assert_eq!(format!("{:?}", Node::new(2, 1)), "N[4,7]@L2");
    }

    #[test]
    #[should_panic(expected = "outside the domain")]
    fn path_for_out_of_domain_value_panics() {
        let domain = Domain::new(8);
        let _ = Node::path_to_root(&domain, 8);
    }

    proptest! {
        #[test]
        fn ancestor_contains_value(value in 0u64..(1 << 20), level in 0u32..21) {
            let node = Node::ancestor_of(value, level);
            prop_assert!(node.contains(value));
            prop_assert_eq!(node.width(), 1u64 << level);
        }

        #[test]
        fn children_partition_parent(level in 1u32..20, index in 0u64..1024) {
            let node = Node::new(level, index);
            let (l, r) = node.children().unwrap();
            prop_assert_eq!(l.width() + r.width(), node.width());
            prop_assert_eq!(l.range().hi() + 1, r.range().lo());
            prop_assert!(node.range().covers(l.range()));
            prop_assert!(node.range().covers(r.range()));
        }

        #[test]
        fn path_to_root_is_nested(value in 0u64..1000) {
            let domain = Domain::new(1000);
            let path = Node::path_to_root(&domain, value);
            for pair in path.windows(2) {
                prop_assert!(pair[1].range().covers(pair[0].range()));
            }
        }
    }
}
