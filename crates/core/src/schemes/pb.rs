//! PB — the basic scheme of Li et al. (PVLDB 2014), the paper's closest
//! competitor and the baseline of its experimental comparison.
//!
//! PB builds a binary tree over the *dataset* (not the domain): tuples are
//! randomly permuted and assigned to the leaves; every node stores a Bloom
//! filter over the dyadic ranges `DR(d)` of the tuples in its subtree. A
//! range query is decomposed into its minimal dyadic ranges (BRC), hashed
//! under the owner's secret key, and the server walks the tree top-down,
//! descending into any node whose filter claims to contain one of the query
//! ranges; matching leaves yield the result ids.
//!
//! Costs (Table 1): `O(n log n log m)` storage (a filter per node, sized to
//! its subtree), `Ω(log n · log R + r)` search, `O(log R)` query size and
//! `O(r)` Bloom-filter false positives — all strictly worse than
//! Logarithmic-BRC/URC, which is the point of the comparison. Security-wise
//! the construction only meets the weak, non-adaptive definitions of Goh,
//! which the paper discusses at length; it is reproduced here purely as a
//! baseline.

use crate::dataset::{Dataset, DocId};
use crate::metrics::{IndexStats, QueryStats};
use crate::schemes::common::clamp_query;
use crate::traits::{QueryOutcome, RangeScheme};
use rand::{CryptoRng, RngCore};
use rayon::prelude::*;
use rsse_bloom::{element_hashes, BloomFilter, BloomParams};
use rsse_cover::{brc, Domain, Node, Range};
use rsse_crypto::{permute, Key, KeyChain};
use rsse_sse::{StorageBackend, StorageConfig, StorageError};
use std::fs;
use std::path::{Path, PathBuf};

/// Default per-node Bloom-filter false-positive rate (the "fixed ratio" of
/// Li et al.).
pub const DEFAULT_BLOOM_FP_RATE: f64 = 0.01;

/// Owner-side state of PB.
#[derive(Clone, Debug)]
pub struct PbScheme {
    hash_key: Key,
    domain: Domain,
    num_hashes: u32,
}

/// One node of the PB tree.
#[derive(Clone, Debug)]
struct PbNode {
    filter: BloomFilter,
    /// `Some(id)` at occupied leaves, `None` elsewhere.
    record: Option<DocId>,
}

/// Server-side state of PB: a heap-layout binary tree of Bloom filters.
#[derive(Clone, Debug)]
pub struct PbServer {
    /// Heap layout: node `i` has children `2i + 1` and `2i + 2`; the first
    /// `leaf_offset` entries are internal nodes.
    nodes: Vec<PbNode>,
    leaf_offset: usize,
}

/// File holding a serialized PB filter tree inside its storage directory.
const PB_TREE_FILE: &str = "pb-tree.bin";

/// Magic bytes of the PB tree file.
const PB_MAGIC: [u8; 8] = *b"RSSE-PBT";

/// Sequential reader over the serialized tree with typed truncation errors.
struct PbReader<'a> {
    path: &'a Path,
    bytes: &'a [u8],
    at: usize,
}

impl<'a> PbReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if self.at + n > self.bytes.len() {
            return Err(StorageError::Truncated {
                path: self.path.to_path_buf(),
                expected: (self.at + n) as u64,
                actual: self.bytes.len() as u64,
            });
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn corrupt(&self, detail: String) -> StorageError {
        StorageError::CorruptDirectory {
            path: self.path.to_path_buf(),
            detail,
        }
    }
}

impl PbServer {
    /// Serializes the Bloom-filter tree into `dir/pb-tree.bin`, creating
    /// the directory if needed.
    ///
    /// PB has no encrypted dictionary to page, so persistence here is
    /// durability only: [`open_dir`](Self::open_dir) loads the whole tree
    /// back into memory (every query walks the tree from the root, so a
    /// partially resident tree would not bound anything).
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<(), StorageError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|error| StorageError::Io {
            path: dir.to_path_buf(),
            error,
        })?;
        let path = dir.join(PB_TREE_FILE);
        let mut bytes: Vec<u8> = Vec::new();
        bytes.extend_from_slice(&PB_MAGIC);
        bytes.extend_from_slice(&rsse_sse::storage::FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&(self.leaf_offset as u64).to_le_bytes());
        bytes.extend_from_slice(&(self.nodes.len() as u64).to_le_bytes());
        for node in &self.nodes {
            match node.record {
                Some(id) => {
                    bytes.push(1);
                    bytes.extend_from_slice(&id.to_le_bytes());
                }
                None => {
                    bytes.push(0);
                    bytes.extend_from_slice(&0u64.to_le_bytes());
                }
            }
            let params = node.filter.params();
            bytes.extend_from_slice(&(params.num_bits as u64).to_le_bytes());
            bytes.extend_from_slice(&params.num_hashes.to_le_bytes());
            bytes.extend_from_slice(&(node.filter.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&(node.filter.words().len() as u64).to_le_bytes());
            for word in node.filter.words() {
                bytes.extend_from_slice(&word.to_le_bytes());
            }
        }
        rsse_sse::storage::write_file_atomic_bytes(&path, &bytes)
    }

    /// Loads a Bloom-filter tree previously written by
    /// [`save_to_dir`](Self::save_to_dir), rejecting malformed files with
    /// typed [`StorageError`]s.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let path: PathBuf = dir.as_ref().join(PB_TREE_FILE);
        let bytes = fs::read(&path).map_err(|error| StorageError::Io {
            path: path.clone(),
            error,
        })?;
        rsse_sse::storage::check_header(&path, &bytes, &PB_MAGIC, 24)?;
        let mut r = PbReader {
            path: &path,
            bytes: &bytes,
            at: 12, // past magic + version, validated above
        };
        r.u32()?; // reserved
        let leaf_offset = r.u64()? as usize;
        let node_count = r.u64()? as usize;
        let mut nodes = Vec::with_capacity(node_count.min(1 << 20));
        for i in 0..node_count {
            let has_record = r.take(1)?[0];
            let id = r.u64()?;
            let record = match has_record {
                0 => None,
                1 => Some(id),
                other => {
                    return Err(r.corrupt(format!("node {i} has record flag {other}")));
                }
            };
            let num_bits = r.u64()? as usize;
            let num_hashes = r.u32()?;
            let items = r.u64()? as usize;
            let word_count = r.u64()? as usize;
            if num_bits == 0 || num_hashes == 0 || word_count != num_bits.div_ceil(64) {
                return Err(r.corrupt(format!(
                    "node {i} claims {num_bits} bits, {num_hashes} hashes, {word_count} words"
                )));
            }
            // Bound the allocation by what the file can actually hold, so a
            // crafted header cannot abort the process with a huge
            // `with_capacity` before the reads themselves fail typed.
            let remaining_words = (bytes.len() - r.at) / 8;
            if word_count > remaining_words {
                return Err(StorageError::Truncated {
                    path: path.clone(),
                    expected: (r.at as u64).saturating_add((word_count as u64).saturating_mul(8)),
                    actual: bytes.len() as u64,
                });
            }
            let mut words = Vec::with_capacity(word_count);
            for _ in 0..word_count {
                words.push(r.u64()?);
            }
            nodes.push(PbNode {
                filter: BloomFilter::from_parts(
                    BloomParams {
                        num_bits,
                        num_hashes,
                    },
                    words,
                    items,
                ),
                record,
            });
        }
        if r.at != bytes.len() {
            return Err(r.corrupt(format!("{} trailing bytes", bytes.len() - r.at)));
        }
        // A heap-layout tree over 2^h leaves always has 2·leaf_offset + 1
        // nodes; anything else would send Search's child indexing
        // (`2i + 1`/`2i + 2`) out of bounds at query time.
        if leaf_offset.checked_mul(2).and_then(|n| n.checked_add(1)) != Some(nodes.len()) {
            return Err(r.corrupt(format!(
                "leaf offset {leaf_offset} inconsistent with node count {}",
                nodes.len()
            )));
        }
        Ok(Self { nodes, leaf_offset })
    }
}

/// The PB trapdoor: the keyed hash values of every minimal dyadic range of
/// the query (`O(log R)` ranges × `k` hashes each).
#[derive(Clone, Debug)]
pub struct PbTrapdoor {
    hashes_per_range: Vec<Vec<u64>>,
}

impl PbTrapdoor {
    /// Serialized size of the trapdoor in bytes.
    pub fn size_bytes(&self) -> usize {
        self.hashes_per_range
            .iter()
            .map(|h| h.len() * std::mem::size_of::<u64>())
            .sum()
    }

    /// Number of dyadic ranges in the trapdoor.
    pub fn range_count(&self) -> usize {
        self.hashes_per_range.len()
    }
}

impl PbScheme {
    /// Builds PB with an explicit per-node false-positive rate.
    pub fn build_with<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        fp_rate: f64,
        rng: &mut R,
    ) -> (Self, PbServer) {
        let domain = *dataset.domain();
        let chain = KeyChain::generate(rng);
        let hash_key = chain.derive(b"pb-hash");
        // With the standard optimal sizing, the number of hash functions
        // depends only on the false-positive rate, so one trapdoor works for
        // every node's filter regardless of its size.
        let num_hashes = (-fp_rate.ln() / std::f64::consts::LN_2).round().max(1.0) as u32;

        // Randomly permute the tuples over the leaves.
        let mut records = dataset.records().to_vec();
        permute::rng_shuffle(rng, &mut records);
        let n_leaves = records.len().next_power_of_two().max(1);
        let leaf_offset = n_leaves - 1;
        let path_len = domain.bits() as usize + 1;

        // Count how many tuples fall under each node to size its filter.
        let total_nodes = leaf_offset + n_leaves;
        let mut subtree_counts = vec![0usize; total_nodes];
        for leaf in 0..records.len() {
            let mut node = leaf_offset + leaf;
            loop {
                subtree_counts[node] += 1;
                if node == 0 {
                    break;
                }
                node = (node - 1) / 2;
            }
        }

        let mut nodes: Vec<PbNode> = subtree_counts
            .iter()
            .map(|&count| {
                let expected = (count * path_len).max(1);
                let mut params = BloomParams::optimal(expected, fp_rate);
                params.num_hashes = num_hashes;
                PbNode {
                    filter: BloomFilter::new(params),
                    record: None,
                }
            })
            .collect();

        // Insert every tuple's dyadic ranges into all its ancestors' filters.
        // The keyed hashes depend only on the record's dyadic keywords, so
        // they are computed once per record (in parallel) instead of once
        // per (ancestor, keyword) pair — the tree walk itself is pure
        // bit-setting. One flat `Vec<u64>` per record (keywords concatenated
        // at stride `num_hashes`) keeps the peak footprint to a single
        // allocation per record.
        let record_hashes: Vec<Vec<u64>> = records
            .par_iter()
            .map(|record| {
                let mut flat = Vec::with_capacity(path_len * num_hashes as usize);
                for node in Node::path_to_root(&domain, record.value) {
                    flat.extend(element_hashes(&hash_key, &node.keyword(), num_hashes));
                }
                flat
            })
            .collect();
        for (leaf, (record, dyadic_hashes)) in records.iter().zip(&record_hashes).enumerate() {
            let mut node = leaf_offset + leaf;
            nodes[node].record = Some(record.id);
            loop {
                for hashes in dyadic_hashes.chunks(num_hashes as usize) {
                    nodes[node].filter.insert_hashes(hashes);
                }
                if node == 0 {
                    break;
                }
                node = (node - 1) / 2;
            }
        }

        (
            Self {
                hash_key,
                domain,
                num_hashes,
            },
            PbServer { nodes, leaf_offset },
        )
    }

    /// `Trpdr`: the keyed hashes of the query's minimal dyadic ranges.
    pub fn trapdoor(&self, range: Range) -> Option<PbTrapdoor> {
        let clamped = clamp_query(&self.domain, range)?;
        let cover = brc(&self.domain, clamped);
        let hashes_per_range = cover
            .iter()
            .map(|node| element_hashes(&self.hash_key, &node.keyword(), self.num_hashes))
            .collect();
        Some(PbTrapdoor { hashes_per_range })
    }

    /// `Search`: top-down traversal of the Bloom-filter tree.
    pub fn search(server: &PbServer, trapdoor: &PbTrapdoor) -> QueryOutcome {
        let mut ids = Vec::new();
        let mut visited = 0usize;
        if !server.nodes.is_empty() {
            let mut stack = vec![0usize];
            while let Some(node_index) = stack.pop() {
                visited += 1;
                let node = &server.nodes[node_index];
                let matched = trapdoor
                    .hashes_per_range
                    .iter()
                    .any(|hashes| !node.filter.is_empty() && node.filter.contains_hashes(hashes));
                if !matched {
                    continue;
                }
                if node_index >= server.leaf_offset {
                    if let Some(id) = node.record {
                        ids.push(id);
                    }
                } else {
                    stack.push(2 * node_index + 1);
                    stack.push(2 * node_index + 2);
                }
            }
        }
        QueryOutcome {
            ids,
            stats: QueryStats {
                tokens_sent: trapdoor.range_count(),
                token_bytes: trapdoor.size_bytes(),
                rounds: 1,
                entries_touched: visited,
                result_groups: trapdoor.range_count(),
            },
        }
    }

    /// The number of keyed hash functions in use (public parameter).
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }
}

impl RangeScheme for PbScheme {
    type Server = PbServer;
    const NAME: &'static str = "PB (Li et al.)";

    fn build<R: RngCore + CryptoRng>(dataset: &Dataset, rng: &mut R) -> (Self, Self::Server) {
        Self::build_with(dataset, DEFAULT_BLOOM_FP_RATE, rng)
    }

    /// PB has no encrypted dictionary, so `shard_bits` does not apply; an
    /// on-disk backend persists the Bloom-filter tree (durability) while
    /// the served tree stays memory-resident — see
    /// [`PbServer::save_to_dir`].
    fn build_stored<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<(Self, Self::Server), StorageError> {
        let (client, server) = Self::build_with(dataset, DEFAULT_BLOOM_FP_RATE, rng);
        if let StorageBackend::OnDisk(dir) = &config.backend {
            server.save_to_dir(dir)?;
        }
        Ok((client, server))
    }

    /// PB's served tree is fully memory-resident (only the open path does
    /// I/O), so the fallible query path can never fail — it exists so PB
    /// slots into the same fallible serving API as the dictionary schemes.
    fn try_query(&self, server: &Self::Server, range: Range) -> Result<QueryOutcome, StorageError> {
        Ok(match self.trapdoor(range) {
            Some(trapdoor) => Self::search(server, &trapdoor),
            None => QueryOutcome::default(),
        })
    }

    fn index_stats(server: &Self::Server) -> IndexStats {
        let storage_bytes = server
            .nodes
            .iter()
            .map(|n| n.filter.storage_bytes() + if n.record.is_some() { 8 } else { 0 })
            .sum();
        IndexStats {
            entries: server.nodes.len(),
            storage_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Record;
    use crate::schemes::testutil;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn results_are_complete_on_query_mix() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        for dataset in [testutil::skewed_dataset(), testutil::uniform_dataset()] {
            let (client, server) = PbScheme::build(&dataset, &mut rng);
            for range in testutil::query_mix(dataset.domain().size()) {
                let outcome = client.query(&server, range);
                // Bloom filters never yield false negatives, so PB is always
                // complete; false positives are possible and expected.
                testutil::assert_complete(&dataset, range, &outcome);
            }
        }
    }

    #[test]
    fn false_positive_rate_is_small_with_default_parameters() {
        let dataset = testutil::uniform_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let (client, server) = PbScheme::build(&dataset, &mut rng);
        let mut fp = 0usize;
        let mut total = 0usize;
        for lo in (0..250u64).step_by(10) {
            let range = Range::new(lo, (lo + 20).min(255));
            let outcome = client.query(&server, range);
            let eval = testutil::assert_complete(&dataset, range, &outcome);
            fp += eval.false_positives;
            total += outcome.len().max(1);
        }
        assert!(
            (fp as f64) < 0.25 * total as f64,
            "PB false positives unexpectedly high: {fp}/{total}"
        );
    }

    #[test]
    fn storage_is_superlinear_in_n() {
        // O(n log n log m): doubling n should more than double storage.
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let small = Dataset::new(
            Domain::new(1 << 16),
            (0..64u64).map(|i| Record::new(i, i * 100)).collect(),
        )
        .unwrap();
        let large = Dataset::new(
            Domain::new(1 << 16),
            (0..128u64).map(|i| Record::new(i, i * 100)).collect(),
        )
        .unwrap();
        let (_, s_small) = PbScheme::build(&small, &mut rng);
        let (_, s_large) = PbScheme::build(&large, &mut rng);
        let b_small = PbScheme::index_stats(&s_small).storage_bytes;
        let b_large = PbScheme::index_stats(&s_large).storage_bytes;
        assert!(b_large > 2 * b_small);
    }

    #[test]
    fn trapdoor_size_is_logarithmic_in_range() {
        let dataset = testutil::uniform_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let (client, _) = PbScheme::build(&dataset, &mut rng);
        let small = client.trapdoor(Range::new(7, 10)).unwrap();
        let large = client.trapdoor(Range::new(1, 254)).unwrap();
        assert!(small.range_count() <= large.range_count());
        assert!(large.range_count() <= 2 * 8);
        assert_eq!(
            large.size_bytes(),
            large.range_count() * client.num_hashes() as usize * 8
        );
    }

    #[test]
    fn search_visits_a_tree_prefix() {
        let dataset = testutil::uniform_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let (client, server) = PbScheme::build(&dataset, &mut rng);
        let outcome = client.query(&server, Range::point(11));
        // A point query visits at most one root-to-leaf path per match plus
        // the pruned frontier — far fewer nodes than the whole tree.
        assert!(outcome.stats.entries_touched < server.nodes.len());
        assert_eq!(outcome.stats.rounds, 1);
    }

    #[test]
    fn empty_dataset_answers_empty() {
        let dataset = Dataset::new(Domain::new(64), vec![]).unwrap();
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let (client, server) = PbScheme::build(&dataset, &mut rng);
        let outcome = client.query(&server, Range::new(0, 63));
        assert!(outcome.is_empty());
    }

    #[test]
    fn out_of_domain_query_is_empty() {
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let (client, server) = PbScheme::build(&dataset, &mut rng);
        assert!(client.query(&server, Range::new(100, 110)).is_empty());
    }

    #[test]
    fn filter_tree_persists_and_cold_opens() {
        let dataset = testutil::skewed_dataset();
        let dir = testutil::TempDir::new("pb-disk");
        let mut rng = ChaCha20Rng::seed_from_u64(41);
        let (client, server) =
            PbScheme::build_stored(&dataset, &StorageConfig::on_disk(0, dir.path()), &mut rng)
                .unwrap();
        let reopened = PbServer::open_dir(dir.path()).unwrap();
        assert_eq!(reopened.nodes.len(), server.nodes.len());
        assert_eq!(reopened.leaf_offset, server.leaf_offset);
        for range in testutil::query_mix(dataset.domain().size()) {
            assert_eq!(
                client.query(&reopened, range).ids,
                client.query(&server, range).ids,
                "cold-open must answer like the built server for {range}"
            );
        }
    }

    #[test]
    fn open_dir_rejects_corrupt_tree_files() {
        let dataset = testutil::skewed_dataset();
        let dir = testutil::TempDir::new("pb-corrupt");
        let mut rng = ChaCha20Rng::seed_from_u64(42);
        let (_, server) = PbScheme::build(&dataset, &mut rng);
        server.save_to_dir(dir.path()).unwrap();
        let path = dir.path().join(super::PB_TREE_FILE);
        let valid = std::fs::read(&path).unwrap();

        std::fs::write(&path, &valid[..valid.len() - 3]).unwrap();
        assert!(matches!(
            PbServer::open_dir(dir.path()),
            Err(StorageError::Truncated { .. })
        ));

        let mut bad_magic = valid.clone();
        bad_magic[0] ^= 0xFF;
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            PbServer::open_dir(dir.path()),
            Err(StorageError::BadMagic { .. })
        ));

        let mut trailing = valid.clone();
        trailing.extend_from_slice(b"xx");
        std::fs::write(&path, &trailing).unwrap();
        assert!(matches!(
            PbServer::open_dir(dir.path()),
            Err(StorageError::CorruptDirectory { .. })
        ));

        // A crafted header claiming a gigantic (internally consistent)
        // filter must fail typed instead of attempting the allocation. The
        // 32-byte file header is followed by the first node: record flag
        // (1 B) + id (8 B), then num_bits at 41..49 and — after num_hashes
        // (4 B) and items (8 B) — word_count at 61..69.
        let mut huge = valid.clone();
        huge[41..49].copy_from_slice(&(1u64 << 40).to_le_bytes());
        huge[61..69].copy_from_slice(&(1u64 << 34).to_le_bytes());
        std::fs::write(&path, &huge).unwrap();
        assert!(matches!(
            PbServer::open_dir(dir.path()),
            Err(StorageError::Truncated { .. })
        ));
    }
}
