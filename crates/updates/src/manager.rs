//! The owner-side update manager: ingestion, querying across active
//! instances, and hierarchical consolidation.

use crate::batch::{UpdateEntry, UpdateOp};
use rand::{CryptoRng, RngCore};
use rsse_core::{Dataset, DocId, IndexStats, QueryOutcome, QueryStats, RangeScheme, Record};
use rsse_cover::{Domain, Range};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Configuration of the update manager.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateConfig {
    /// The consolidation step `s`: once `s` instances accumulate at a level
    /// of the merge hierarchy, they are consolidated into a single instance
    /// at the next level. `s = 0` disables consolidation (every batch stays
    /// a separate index forever).
    pub consolidation_step: usize,
    /// Label-prefix shard bits for every index the manager builds: each
    /// batch index and every consolidation rebuild goes through
    /// [`RangeScheme::build_sharded`], so the encrypted dictionaries are
    /// split into `2^shard_bits` shards (0 = single arena). Consolidations
    /// of large levels are exactly where the parallel sharded assembly pays
    /// off, since a rebuild re-encrypts the whole merged level.
    pub shard_bits: u32,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        Self {
            consolidation_step: 4,
            shard_bits: 0,
        }
    }
}

/// One active instance: a static RSSE index over one batch (or one
/// consolidated group of batches), plus the owner-side metadata needed to
/// refine query results (which ids this batch touched, and how).
struct BatchInstance<S: RangeScheme> {
    /// Monotonically increasing sequence number; larger = newer. Used to let
    /// newer batches supersede older ones during result refinement.
    seq: u64,
    client: S,
    server: S::Server,
    /// The plaintext updates of this instance (owner-side only; the owner
    /// can always re-derive them by downloading and decrypting its data, as
    /// the paper's consolidation step requires).
    entries: Vec<UpdateEntry>,
    /// Latest operation per id inside this instance.
    ops: HashMap<DocId, UpdateOp>,
}

impl<S: RangeScheme> BatchInstance<S> {
    fn build<R: RngCore + CryptoRng>(
        domain: Domain,
        seq: u64,
        entries: Vec<UpdateEntry>,
        shard_bits: u32,
        rng: &mut R,
    ) -> Self {
        // Within a batch, the latest entry for an id wins.
        let mut latest: BTreeMap<DocId, UpdateEntry> = BTreeMap::new();
        for entry in &entries {
            latest.insert(entry.record.id, *entry);
        }
        let records: Vec<Record> = latest.values().map(|e| e.record).collect();
        let ops: HashMap<DocId, UpdateOp> = latest.iter().map(|(id, e)| (*id, e.op)).collect();
        let dataset = Dataset::new(domain, records)
            .expect("update entries validated against the domain before ingestion");
        let (client, server) = S::build_sharded(&dataset, shard_bits, rng);
        Self {
            seq,
            client,
            server,
            entries,
            ops,
        }
    }
}

/// Owner-side manager of a dynamically updated, privately searchable
/// dataset.
pub struct UpdateManager<S: RangeScheme> {
    domain: Domain,
    config: UpdateConfig,
    /// `levels[l]` holds the not-yet-consolidated instances at height `l` of
    /// the s-ary merge tree (level 0 = raw batches).
    levels: Vec<Vec<BatchInstance<S>>>,
    next_seq: u64,
    batches_ingested: usize,
    consolidations: usize,
}

impl<S: RangeScheme> UpdateManager<S> {
    /// Creates an empty manager over `domain`.
    pub fn new(domain: Domain, config: UpdateConfig) -> Self {
        Self {
            domain,
            config,
            levels: Vec::new(),
            next_seq: 0,
            batches_ingested: 0,
            consolidations: 0,
        }
    }

    /// The attribute domain shared by all batches.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of currently active (separately queried) index instances.
    pub fn active_instances(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Number of raw batches ingested so far.
    pub fn batches_ingested(&self) -> usize {
        self.batches_ingested
    }

    /// Number of consolidation (merge + re-encrypt) operations performed.
    pub fn consolidations(&self) -> usize {
        self.consolidations
    }

    /// Combined index statistics over all active instances.
    pub fn index_stats(&self) -> IndexStats {
        self.levels
            .iter()
            .flatten()
            .map(|instance| S::index_stats(&instance.server))
            .fold(IndexStats::default(), IndexStats::merged)
    }

    /// Ingests one batch of updates: builds a fresh static index under a
    /// fresh key and triggers any due consolidations.
    ///
    /// # Panics
    /// Panics if an entry's value lies outside the manager's domain.
    pub fn ingest_batch<R: RngCore + CryptoRng>(&mut self, entries: Vec<UpdateEntry>, rng: &mut R) {
        for entry in &entries {
            assert!(
                self.domain.contains(entry.record.value),
                "update value {} outside domain of size {}",
                entry.record.value,
                self.domain.size()
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.batches_ingested += 1;
        let instance =
            BatchInstance::build(self.domain, seq, entries, self.config.shard_bits, rng);
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(instance);
        self.consolidate_due_levels(rng);
    }

    fn consolidate_due_levels<R: RngCore + CryptoRng>(&mut self, rng: &mut R) {
        let step = self.config.consolidation_step;
        if step == 0 {
            return;
        }
        let mut level = 0;
        while level < self.levels.len() {
            if self.levels[level].len() >= step {
                let group: Vec<BatchInstance<S>> = self.levels[level].drain(..).collect();
                let merged = self.merge_instances(group, rng);
                if self.levels.len() <= level + 1 {
                    self.levels.push(Vec::new());
                }
                self.levels[level + 1].push(merged);
                self.consolidations += 1;
            }
            level += 1;
        }
    }

    /// Merges a group of instances into one: replays their updates in
    /// sequence order, drops deleted tuples, and rebuilds a single index
    /// under a fresh key (the "download, merge, re-encrypt" of the paper).
    ///
    /// A deletion tombstone can only be dropped ("physically purged") when
    /// no instance *outside* the merged group still touches the deleted id
    /// — otherwise an older instance holding a stale version of the tuple
    /// would become authoritative again and the tuple would resurrect.
    /// Tombstones that must survive stay in the merged instance's entries
    /// (and are indexed and query-filtered exactly like a level-0 delete)
    /// until a later merge meets the stale version and purges both.
    fn merge_instances<R: RngCore + CryptoRng>(
        &mut self,
        mut group: Vec<BatchInstance<S>>,
        rng: &mut R,
    ) -> BatchInstance<S> {
        group.sort_by_key(|instance| instance.seq);
        let newest_seq = group.last().map(|i| i.seq).unwrap_or(0);
        let mut latest: BTreeMap<DocId, UpdateEntry> = BTreeMap::new();
        for instance in &group {
            for entry in &instance.entries {
                latest.insert(entry.record.id, *entry);
            }
        }
        // `self.levels` no longer contains the drained group, so every
        // instance seen here is a live instance outside the merge.
        let touched_elsewhere: HashSet<DocId> = self
            .levels
            .iter()
            .flatten()
            .flat_map(|instance| instance.ops.keys().copied())
            .collect();
        let surviving: Vec<UpdateEntry> = latest
            .into_values()
            .filter(|entry| !entry.is_deletion() || touched_elsewhere.contains(&entry.record.id))
            .map(|entry| UpdateEntry {
                record: entry.record,
                op: if entry.is_deletion() {
                    UpdateOp::Delete
                } else {
                    UpdateOp::Insert
                },
            })
            .collect();
        BatchInstance::build(self.domain, newest_seq, surviving, self.config.shard_bits, rng)
    }

    /// Issues a range query against every active instance, merges the
    /// results and refines them at the owner: ids superseded by a newer
    /// batch are dropped, and ids whose newest operation is a deletion are
    /// filtered out.
    pub fn query(&self, range: Range) -> QueryOutcome {
        // Owner-side refinement metadata: the newest sequence number that
        // touched each id, across all active instances.
        let mut newest_touch: HashMap<DocId, u64> = HashMap::new();
        for instance in self.levels.iter().flatten() {
            for &id in instance.ops.keys() {
                let entry = newest_touch.entry(id).or_insert(instance.seq);
                if instance.seq > *entry {
                    *entry = instance.seq;
                }
            }
        }

        let mut ids: Vec<DocId> = Vec::new();
        let mut seen: HashSet<DocId> = HashSet::new();
        let mut stats = QueryStats::default();
        for instance in self.levels.iter().flatten() {
            let outcome = instance.client.query(&instance.server, range);
            stats.tokens_sent += outcome.stats.tokens_sent;
            stats.token_bytes += outcome.stats.token_bytes;
            stats.rounds = stats.rounds.max(outcome.stats.rounds);
            stats.entries_touched += outcome.stats.entries_touched;
            stats.result_groups += outcome.stats.result_groups;
            for id in outcome.ids {
                // Only the instance that holds the *newest* version of the
                // tuple is authoritative for it.
                if newest_touch.get(&id) != Some(&instance.seq) {
                    continue;
                }
                if instance.ops.get(&id) == Some(&UpdateOp::Delete) {
                    continue;
                }
                if seen.insert(id) {
                    ids.push(id);
                }
            }
        }
        QueryOutcome { ids, stats }
    }

    /// The plaintext ground truth of the manager's current logical state —
    /// what a trusted database would answer. Used by tests and the update
    /// ablation experiment.
    pub fn ground_truth(&self, range: Range) -> Vec<DocId> {
        let mut latest: BTreeMap<DocId, (u64, UpdateEntry)> = BTreeMap::new();
        for instance in self.levels.iter().flatten() {
            for entry in &instance.entries {
                let candidate = (instance.seq, *entry);
                match latest.get(&entry.record.id) {
                    Some((seq, _)) if *seq > instance.seq => {}
                    _ => {
                        latest.insert(entry.record.id, candidate);
                    }
                }
            }
        }
        latest
            .values()
            .filter(|(_, entry)| !entry.is_deletion() && range.contains(entry.record.value))
            .map(|(_, entry)| entry.record.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rsse_core::schemes::log_brc_urc::LogScheme;
    use rsse_core::schemes::log_src_i::LogSrcIScheme;

    type LogManager = UpdateManager<LogScheme>;

    fn manager(step: usize) -> LogManager {
        LogManager::new(
            Domain::new(256),
            UpdateConfig {
                consolidation_step: step,
                ..UpdateConfig::default()
            },
        )
    }

    fn sorted(mut ids: Vec<DocId>) -> Vec<DocId> {
        ids.sort_unstable();
        ids
    }

    #[test]
    fn inserts_across_batches_are_all_visible() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let mut mgr = manager(4);
        mgr.ingest_batch((0..10).map(|i| UpdateEntry::insert(i, i * 10)).collect(), &mut rng);
        mgr.ingest_batch((10..20).map(|i| UpdateEntry::insert(i, i * 10)).collect(), &mut rng);
        let outcome = mgr.query(Range::new(0, 255));
        assert_eq!(
            sorted(outcome.ids),
            sorted(mgr.ground_truth(Range::new(0, 255)))
        );
        assert_eq!(mgr.active_instances(), 2);
        assert_eq!(mgr.batches_ingested(), 2);
    }

    #[test]
    fn deletions_are_filtered_at_the_owner() {
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let mut mgr = manager(10);
        mgr.ingest_batch(vec![
            UpdateEntry::insert(1, 50),
            UpdateEntry::insert(2, 60),
            UpdateEntry::insert(3, 70),
        ], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::delete(2, 60)], &mut rng);
        let outcome = mgr.query(Range::new(0, 255));
        assert_eq!(sorted(outcome.ids), vec![1, 3]);
        assert_eq!(sorted(mgr.ground_truth(Range::new(0, 255))), vec![1, 3]);
    }

    #[test]
    fn modifications_supersede_older_values() {
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let mut mgr = manager(10);
        mgr.ingest_batch(vec![UpdateEntry::insert(7, 10)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::modify(7, 200)], &mut rng);
        // The tuple must be found at its new value…
        assert_eq!(mgr.query(Range::new(150, 255)).ids, vec![7]);
        // …and no longer at its old one.
        assert!(mgr.query(Range::new(0, 50)).is_empty());
    }

    #[test]
    fn consolidation_keeps_instance_count_logarithmic() {
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let step = 3;
        let mut mgr = manager(step);
        let batches = 27;
        for b in 0..batches {
            let entries = (0..5u64)
                .map(|i| UpdateEntry::insert(b as u64 * 100 + i, (b as u64 * 7 + i) % 256))
                .collect();
            mgr.ingest_batch(entries, &mut rng);
            // The paper's bound: at most s instances per level, log_s(b)+1 levels.
            let max_active = step * ((batches as f64).log(step as f64).ceil() as usize + 1);
            assert!(
                mgr.active_instances() <= max_active,
                "too many active instances: {}",
                mgr.active_instances()
            );
        }
        assert!(mgr.consolidations() > 0);
        // 27 batches with s=3 fully telescope into a single level-3 instance.
        assert_eq!(mgr.active_instances(), 1);
        // All inserted tuples remain visible after the merges.
        assert_eq!(
            mgr.query(Range::new(0, 255)).ids.len(),
            batches * 5
        );
    }

    #[test]
    fn consolidation_purges_deleted_tuples() {
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let mut mgr = manager(2);
        mgr.ingest_batch(vec![UpdateEntry::insert(1, 10), UpdateEntry::insert(2, 20)], &mut rng);
        let before = mgr.index_stats();
        mgr.ingest_batch(vec![UpdateEntry::delete(1, 10)], &mut rng);
        // The two batches merged (s = 2) and the deleted tuple is physically
        // gone, so the consolidated index holds a single tuple.
        assert_eq!(mgr.active_instances(), 1);
        assert!(mgr.index_stats().entries < before.entries + 5);
        assert_eq!(mgr.query(Range::new(0, 255)).ids, vec![2]);
    }

    #[test]
    fn query_stats_accumulate_across_instances() {
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let mut mgr = manager(0); // never consolidate
        for b in 0..4u64 {
            mgr.ingest_batch(vec![UpdateEntry::insert(b, b * 11)], &mut rng);
        }
        assert_eq!(mgr.active_instances(), 4);
        let outcome = mgr.query(Range::new(0, 255));
        assert_eq!(outcome.ids.len(), 4);
        assert!(outcome.stats.tokens_sent >= 4, "one token set per instance");
    }

    #[test]
    fn works_with_interactive_schemes_too() {
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let mut mgr: UpdateManager<LogSrcIScheme> =
            UpdateManager::new(Domain::new(128), UpdateConfig::default());
        mgr.ingest_batch(
            (0..20).map(|i| UpdateEntry::insert(i, (i * 13) % 128)).collect(),
            &mut rng,
        );
        mgr.ingest_batch(vec![UpdateEntry::delete(3, 39), UpdateEntry::insert(100, 64)], &mut rng);
        let range = Range::new(0, 127);
        assert_eq!(
            sorted(mgr.query(range).ids.clone()),
            sorted(mgr.ground_truth(range))
        );
    }

    #[test]
    fn consolidated_deletion_does_not_resurrect_older_instances() {
        // Regression: a tuple inserted in an early (already consolidated)
        // instance and deleted in a later batch must stay deleted after the
        // deleting batch's level consolidates. The tombstone has to survive
        // the merge while any older live instance still touches the id.
        let mut rng = ChaCha20Rng::seed_from_u64(10);
        let mut mgr = manager(2);
        mgr.ingest_batch(vec![UpdateEntry::insert(1, 10)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::insert(2, 20)], &mut rng);
        // Level 0 consolidated into instance A = {1, 2} at level 1.
        assert_eq!(mgr.active_instances(), 1);
        mgr.ingest_batch(vec![UpdateEntry::delete(1, 10)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::insert(3, 30)], &mut rng);
        // The deleting batch merged with its level-0 sibling while A still
        // lives: id 1 must not resurrect from A.
        let range = Range::new(0, 255);
        assert_eq!(sorted(mgr.query(range).ids), vec![2, 3]);
        assert_eq!(sorted(mgr.ground_truth(range)), vec![2, 3]);
        // One more round of batches telescopes everything into one
        // instance; the tombstone finally meets the stale insert and both
        // are purged physically.
        mgr.ingest_batch(vec![UpdateEntry::insert(4, 40)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::insert(5, 50)], &mut rng);
        assert_eq!(sorted(mgr.query(range).ids), vec![2, 3, 4, 5]);
        if mgr.active_instances() == 1 {
            // Fully consolidated: the index holds exactly the live tuples.
            let entries_per_tuple = 9; // domain 256 → log m + 1 keywords
            assert_eq!(mgr.index_stats().entries, 4 * entries_per_tuple);
        }
    }

    #[test]
    fn modification_survives_consolidation_of_the_modifying_batch() {
        // Same resurrection scenario through the modify path: the old value
        // must stay dead once the modifying batch consolidates.
        let mut rng = ChaCha20Rng::seed_from_u64(11);
        let mut mgr = manager(2);
        mgr.ingest_batch(vec![UpdateEntry::insert(7, 10)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::insert(8, 11)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::modify(7, 200)], &mut rng);
        mgr.ingest_batch(vec![UpdateEntry::insert(9, 12)], &mut rng);
        assert!(mgr.query(Range::new(0, 50)).ids != vec![7], "old value must stay dead");
        assert_eq!(sorted(mgr.query(Range::new(0, 50)).ids), vec![8, 9]);
        assert_eq!(mgr.query(Range::new(150, 255)).ids, vec![7]);
    }

    #[test]
    fn sharded_rebuilds_answer_identically_to_unsharded() {
        // The rebuild path goes through build_sharded: a manager configured
        // with shard bits must stay logically identical to an unsharded one
        // across ingestion and consolidation.
        let mut rng_a = ChaCha20Rng::seed_from_u64(9);
        let mut rng_b = ChaCha20Rng::seed_from_u64(9);
        let mut plain = manager(3);
        let mut sharded = LogManager::new(
            Domain::new(256),
            UpdateConfig {
                consolidation_step: 3,
                shard_bits: 4,
            },
        );
        for b in 0..9u64 {
            let entries: Vec<UpdateEntry> = (0..6u64)
                .map(|i| UpdateEntry::insert(b * 10 + i, (b * 31 + i * 7) % 256))
                .collect();
            plain.ingest_batch(entries.clone(), &mut rng_a);
            sharded.ingest_batch(entries, &mut rng_b);
        }
        assert_eq!(plain.consolidations(), sharded.consolidations());
        for range in [Range::new(0, 255), Range::new(10, 60), Range::new(200, 220)] {
            assert_eq!(
                sorted(sharded.query(range).ids),
                sorted(plain.query(range).ids)
            );
        }
        // Sharding is layout-only: index sizes agree too.
        assert_eq!(plain.index_stats().entries, sharded.index_stats().entries);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_update_is_rejected() {
        let mut rng = ChaCha20Rng::seed_from_u64(8);
        let mut mgr = manager(4);
        mgr.ingest_batch(vec![UpdateEntry::insert(1, 10_000)], &mut rng);
    }
}
