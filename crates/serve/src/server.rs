//! The resilient request loop: admission → deadline-guarded, breaker-gated,
//! budget-retried probe fan-out → typed outcome.
//!
//! [`ResilientServer`] wraps any [`ServeIndex`] backend (a
//! [`QueryServer`], a bare [`ShardedIndex`], or anything else that can
//! resolve labeled probes) and serves range queries through a guarded probe
//! loop:
//!
//! 1. **Admission** — direct calls check cache pressure; queued requests
//!    ([`enqueue`](ResilientServer::enqueue) /
//!    [`drain`](ResilientServer::drain)) additionally pass the bounded
//!    per-tenant queues of the [`admission`](crate::admission) module.
//!    Shed requests fail typed without consuming serving resources.
//! 2. **Deadline** — each admitted query carries an absolute deadline
//!    (queue wait counts); the guarded scan checks it before every probe
//!    and cuts the fan-out mid-batch, returning the partially resolved ids
//!    as a typed [`ServeError::DeadlineExceeded`].
//! 3. **Breakers** — every probe is gated by its shard's circuit breaker
//!    ([`breaker`](crate::breaker) module): a shard with too many
//!    consecutive failures fails fast without touching storage until a
//!    cooldown trial heals it.
//! 4. **Retries** — a failed probe is retried *at probe granularity* under
//!    the server-wide budget of the [`retry`](crate::retry) module, with
//!    seeded decorrelated-jitter backoff. Only the failed block is re-read;
//!    the query's already-resolved probes stand.
//!
//! Outcomes are **byte-identical** to the raw [`QueryServer`] path: the
//! guarded loop reuses `rsse_core`'s `scan_query_into`/`assemble_outcome`
//! primitives, so resilience changes when probes happen, never what a
//! completed query returns.

use crate::admission::{AdmissionConfig, AdmissionQueue, Pending, Ticket};
use crate::breaker::{Admit, BreakerConfig, BreakerState, ShardHealth};
use crate::clock::{Clock, SystemClock};
use crate::error::{OverloadReason, PartialOutcome, ServeError};
use crate::executor::{execute_batch, BatchConfig, BatchItem};
use crate::retry::{RetryConfig, RetryPolicy};
use rayon::prelude::*;
use rsse_core::server::{assemble_outcome, scan_query_into_with, ScanScratch};
use rsse_core::{DocId, QueryOutcome, QueryServer};
use rsse_sse::{
    CacheStats, CipherSpan, IndexLookup, Label, SearchToken, ShardedIndex, StorageError,
};
use std::cell::Cell;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The narrow boundary between the serving loop and an index backend: a
/// fallible labeled probe plus the shard topology and cache telemetry the
/// resilience machinery keys off. Implemented for [`ShardedIndex`] and
/// [`QueryServer`]; serving layers stay generic over it.
pub trait ServeIndex: Sync {
    /// Resolves one dictionary probe (`Ok(None)` = label absent).
    fn probe(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, StorageError>;
    /// The shard the label's probe hits (the circuit-breaker unit).
    fn shard_of(&self, label: &Label) -> u32;
    /// Number of shards (breaker table size).
    fn shard_count(&self) -> usize;
    /// Block-cache counters (the admission pressure signal).
    fn cache_stats(&self) -> CacheStats;
}

impl ServeIndex for ShardedIndex {
    fn probe(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, StorageError> {
        ShardedIndex::try_get(self, label)
    }

    fn shard_of(&self, label: &Label) -> u32 {
        ShardedIndex::shard_of(self, label) as u32
    }

    fn shard_count(&self) -> usize {
        ShardedIndex::shard_count(self)
    }

    fn cache_stats(&self) -> CacheStats {
        ShardedIndex::cache_stats(self)
    }
}

impl ServeIndex for QueryServer {
    fn probe(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, StorageError> {
        self.index().try_get(label)
    }

    fn shard_of(&self, label: &Label) -> u32 {
        self.index().shard_of(label) as u32
    }

    fn shard_count(&self) -> usize {
        self.index().shard_count()
    }

    fn cache_stats(&self) -> CacheStats {
        self.index().cache_stats()
    }
}

/// Complete tuning of one resilient server.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Queue bounds and shed thresholds.
    pub admission: AdmissionConfig,
    /// Retry budget and backoff shape.
    pub retry: RetryConfig,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Batch-executor tuning (cross-query probe dedup, shard-lane workers).
    pub batch: BatchConfig,
    /// Deadline applied to queries that don't bring their own (`None` =
    /// unbounded).
    pub default_deadline: Option<Duration>,
    /// Tenant that unattributed queries ([`ResilientServer::answer`],
    /// [`answer_within`](ResilientServer::answer_within),
    /// [`answer_many`](ResilientServer::answer_many),
    /// [`answer_batch`](ResilientServer::answer_batch)) are admitted as.
    ///
    /// Admission implication: every unattributed query charges this one
    /// tenant's bounded queue and shows up as it in shed errors, so a
    /// multi-tenant deployment that mixes attributed
    /// ([`answer_for`](ResilientServer::answer_for) /
    /// [`enqueue`](ResilientServer::enqueue)) and unattributed traffic
    /// shares the default tenant's fairness slot across all unattributed
    /// callers. Defaults to `"adhoc"`.
    pub default_tenant: String,
    /// Seed of the backoff jitter RNG (deterministic tests pin it).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionConfig::default(),
            retry: RetryConfig::default(),
            breaker: BreakerConfig::default(),
            batch: BatchConfig::default(),
            default_deadline: None,
            default_tenant: "adhoc".to_string(),
            seed: 0,
        }
    }
}

/// Counters of everything the resilience machinery did, sampled with
/// [`ResilientServer::stats`]. All counts are since server construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries admitted to serving (direct or drained).
    pub admitted: u64,
    /// Queries completing with a full outcome.
    pub served_ok: u64,
    /// Requests shed for a full tenant queue.
    pub shed_tenant_full: u64,
    /// Requests shed for the global queue bound.
    pub shed_global_full: u64,
    /// Requests shed for cache pressure.
    pub shed_pressure: u64,
    /// Queries cut off by their deadline.
    pub deadline_expired: u64,
    /// Queries failed fast on an open shard breaker.
    pub shard_unavailable: u64,
    /// Queries that ran out of retry attempts or budget.
    pub retry_exhausted: u64,
    /// Probes resolved successfully.
    pub probes_resolved: u64,
    /// Failed probe attempts that a later retry of the same probe absorbed
    /// (transient faults the caller never saw).
    pub faults_absorbed: u64,
    /// Retries performed (budget tokens consumed).
    pub retries: u64,
    /// Retries denied because the budget pool was dry.
    pub retry_denials: u64,
    /// Retry tokens currently in the pool.
    pub retry_tokens: u64,
    /// Breaker open transitions (including trial-failure reopens).
    pub breaker_opened: u64,
    /// Half-open trial probes admitted.
    pub breaker_trials: u64,
    /// Successful trials that re-closed a breaker.
    pub breaker_reclosed: u64,
    /// Probes refused by an open breaker without touching storage.
    pub breaker_fail_fast: u64,
    /// Requests currently queued.
    pub queued: u64,
    /// Batch-executor counter rounds run (all batches).
    pub batch_rounds: u64,
    /// Probes batch queries demanded (the leakage-profile count: every
    /// query's logical probe, whether or not storage was actually read).
    pub batch_probes_demanded: u64,
    /// Unique probes the batch executor actually issued to storage after
    /// cross-query dedup (equals `batch_probes_demanded` with dedup off).
    pub batch_probes_unique: u64,
    /// Demanded probes satisfied by another query's identical probe
    /// (`batch_probes_demanded - batch_probes_unique`).
    pub batch_dedup_hits: u64,
    /// Deepest shard lane (unique probes on one shard in one round) seen.
    pub batch_max_lane_depth: u64,
}

impl ServeStats {
    /// Fraction of demanded batch probes satisfied by dedup instead of
    /// storage (`0.0` when no batch ran).
    pub fn batch_dedup_hit_rate(&self) -> f64 {
        if self.batch_probes_demanded == 0 {
            0.0
        } else {
            self.batch_dedup_hits as f64 / self.batch_probes_demanded as f64
        }
    }
}

/// Internal atomic counters behind [`ServeStats`].
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) admitted: AtomicU64,
    pub(crate) served_ok: AtomicU64,
    shed_tenant_full: AtomicU64,
    shed_global_full: AtomicU64,
    shed_pressure: AtomicU64,
    pub(crate) deadline_expired: AtomicU64,
    pub(crate) shard_unavailable: AtomicU64,
    pub(crate) retry_exhausted: AtomicU64,
    pub(crate) probes_resolved: AtomicU64,
    pub(crate) faults_absorbed: AtomicU64,
    pub(crate) batch_rounds: AtomicU64,
    pub(crate) batch_probes_demanded: AtomicU64,
    pub(crate) batch_probes_unique: AtomicU64,
    pub(crate) batch_max_lane_depth: AtomicU64,
}

/// Why the guarded scan aborted (recorded by the probe loop, translated
/// into the query's typed [`ServeError`] after the scan unwinds). Shared
/// with the batch executor, whose per-probe guarded loop records the same
/// trips (minus `Deadline`, which batches check at round boundaries).
pub(crate) enum Trip {
    Deadline,
    Breaker {
        shard: u32,
        open_for: Duration,
    },
    Exhausted {
        attempts: u32,
        budget_empty: bool,
        source: StorageError,
    },
}

/// The per-query guarded view of the backend: an [`IndexLookup`] whose
/// `try_get` runs the deadline/breaker/retry loop around every probe.
struct QueryGuard<'a, B: ServeIndex> {
    server: &'a ResilientServer<B>,
    /// Absolute deadline on the server clock, if any.
    deadline: Option<Duration>,
    trip: Cell<Option<Trip>>,
    probes_resolved: Cell<u64>,
    faults_absorbed: Cell<u64>,
}

impl<B: ServeIndex> QueryGuard<'_, B> {
    /// The placeholder error returned to abort the scan once `trip` is
    /// recorded; never surfaced to callers.
    fn tripped() -> StorageError {
        StorageError::Io {
            path: PathBuf::from("<resilient-serve-trip>"),
            error: io::Error::other("guarded scan aborted"),
        }
    }
}

impl<B: ServeIndex> IndexLookup for QueryGuard<'_, B> {
    type Error = StorageError;

    fn try_get(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, StorageError> {
        let server = self.server;
        let shard = server.backend.shard_of(label);
        let mut attempt: u32 = 0;
        loop {
            if let Some(deadline) = self.deadline {
                if server.clock.now() >= deadline {
                    self.trip.set(Some(Trip::Deadline));
                    return Err(Self::tripped());
                }
            }
            match server.breakers.admit(shard, server.clock.now()) {
                Admit::Proceed | Admit::Trial => {}
                Admit::FailFast { open_for } => {
                    self.trip.set(Some(Trip::Breaker { shard, open_for }));
                    return Err(Self::tripped());
                }
            }
            match server.backend.probe(label) {
                Ok(span) => {
                    server.breakers.record_success(shard);
                    self.probes_resolved.set(self.probes_resolved.get() + 1);
                    self.faults_absorbed
                        .set(self.faults_absorbed.get() + u64::from(attempt));
                    return Ok(span);
                }
                Err(source) => {
                    server.breakers.record_failure(shard, server.clock.now());
                    attempt += 1;
                    if attempt >= server.config.retry.max_attempts.max(1) {
                        self.trip.set(Some(Trip::Exhausted {
                            attempts: attempt,
                            budget_empty: false,
                            source,
                        }));
                        return Err(Self::tripped());
                    }
                    if !server.retry.try_consume() {
                        self.trip.set(Some(Trip::Exhausted {
                            attempts: attempt,
                            budget_empty: true,
                            source,
                        }));
                        return Err(Self::tripped());
                    }
                    server.clock.sleep(server.retry.backoff(attempt));
                }
            }
        }
    }
}

/// A resilient serving frontend over any [`ServeIndex`] backend — see the
/// [module docs](self) for the request loop.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rsse_core::schemes::{log_brc_urc::LogScheme, CoverKind};
/// use rsse_core::{Dataset, RangeScheme, Record};
/// use rsse_cover::{Domain, Range};
/// use rsse_serve::{ResilientServer, ServeConfig};
///
/// let dataset = Dataset::new(
///     Domain::new(1 << 10),
///     (0..200).map(|i| Record::new(i, (i * 37) % 1024)).collect(),
/// )
/// .unwrap();
/// let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(7);
/// let (client, server) = LogScheme::build_sharded_with(&dataset, CoverKind::Brc, 4, &mut rng);
/// let serve = ResilientServer::new(server.into_query_server(), ServeConfig::default());
///
/// let tokens = client.trapdoor(Range::new(0, 100)).unwrap();
/// let outcome = serve.answer(&tokens).unwrap();
/// let mut got = outcome.ids.clone();
/// let mut expected = dataset.matching_ids(Range::new(0, 100));
/// got.sort();
/// expected.sort();
/// assert_eq!(got, expected);
/// assert_eq!(serve.stats().served_ok, 1);
/// ```
pub struct ResilientServer<B: ServeIndex = QueryServer> {
    pub(crate) backend: B,
    pub(crate) config: ServeConfig,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) breakers: ShardHealth,
    pub(crate) retry: RetryPolicy,
    admission: Mutex<AdmissionQueue>,
    pub(crate) counters: Counters,
}

impl<B: ServeIndex + std::fmt::Debug> std::fmt::Debug for ResilientServer<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientServer")
            .field("backend", &self.backend)
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<B: ServeIndex> ResilientServer<B> {
    /// Wraps a backend under the given tuning, on the system clock.
    pub fn new(backend: B, config: ServeConfig) -> Self {
        Self::with_clock(backend, config, Arc::new(SystemClock::new()))
    }

    /// Wraps a backend on an explicit clock — the deterministic tests pass
    /// a [`VirtualClock`](crate::clock::VirtualClock).
    pub fn with_clock(backend: B, config: ServeConfig, clock: Arc<dyn Clock>) -> Self {
        let breakers = ShardHealth::new(backend.shard_count(), config.breaker.clone());
        let retry = RetryPolicy::new(config.retry.clone(), config.seed);
        let admission = Mutex::new(AdmissionQueue::new(config.admission.clone()));
        Self {
            backend,
            config,
            clock,
            breakers,
            retry,
            admission,
            counters: Counters::default(),
        }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The tuning this server runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The server's clock (shared with tests driving a virtual clock).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The breaker state of `shard`.
    pub fn breaker_state(&self, shard: u32) -> BreakerState {
        self.breakers.state_of(shard)
    }

    /// Retry tokens currently in the budget pool.
    pub fn retry_tokens_remaining(&self) -> u64 {
        self.retry.tokens_remaining()
    }

    /// Samples every resilience counter.
    pub fn stats(&self) -> ServeStats {
        let c = &self.counters;
        ServeStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            served_ok: c.served_ok.load(Ordering::Relaxed),
            shed_tenant_full: c.shed_tenant_full.load(Ordering::Relaxed),
            shed_global_full: c.shed_global_full.load(Ordering::Relaxed),
            shed_pressure: c.shed_pressure.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            shard_unavailable: c.shard_unavailable.load(Ordering::Relaxed),
            retry_exhausted: c.retry_exhausted.load(Ordering::Relaxed),
            probes_resolved: c.probes_resolved.load(Ordering::Relaxed),
            faults_absorbed: c.faults_absorbed.load(Ordering::Relaxed),
            retries: self.retry.retries_performed(),
            retry_denials: self.retry.denials(),
            retry_tokens: self.retry.tokens_remaining(),
            breaker_opened: self.breakers.opened(),
            breaker_trials: self.breakers.trials(),
            breaker_reclosed: self.breakers.reclosed(),
            breaker_fail_fast: self.breakers.fail_fast(),
            queued: self.admission.lock().expect("admission lock").queued() as u64,
            batch_rounds: c.batch_rounds.load(Ordering::Relaxed),
            batch_probes_demanded: c.batch_probes_demanded.load(Ordering::Relaxed),
            batch_probes_unique: c.batch_probes_unique.load(Ordering::Relaxed),
            batch_dedup_hits: c
                .batch_probes_demanded
                .load(Ordering::Relaxed)
                .saturating_sub(c.batch_probes_unique.load(Ordering::Relaxed)),
            batch_max_lane_depth: c.batch_max_lane_depth.load(Ordering::Relaxed),
        }
    }

    /// Records a shed and returns it.
    fn count_shed(&self, err: ServeError) -> ServeError {
        if let ServeError::Overloaded { reason, .. } = &err {
            match reason {
                OverloadReason::TenantQueueFull => &self.counters.shed_tenant_full,
                OverloadReason::GlobalQueueFull => &self.counters.shed_global_full,
                OverloadReason::CachePressure => &self.counters.shed_pressure,
            }
            .fetch_add(1, Ordering::Relaxed);
        }
        err
    }

    /// Admission-time cache-pressure check for the direct (unqueued)
    /// serving paths.
    fn check_pressure(&self, tenant: &str) -> Result<(), ServeError> {
        if let Some(limit) = self.config.admission.shed_at_resident_bytes {
            let resident = self.backend.cache_stats().resident_bytes;
            if resident > limit {
                return Err(self.count_shed(ServeError::Overloaded {
                    tenant: tenant.to_string(),
                    reason: OverloadReason::CachePressure,
                    queued: self.admission.lock().expect("admission lock").queued(),
                    limit,
                }));
            }
        }
        Ok(())
    }

    /// The admitted-query core: runs the guarded scan against an absolute
    /// deadline and translates any trip into its typed error.
    fn serve_admitted(
        &self,
        tokens: &[SearchToken],
        admitted_at: Duration,
        deadline: Option<Duration>,
    ) -> Result<QueryOutcome, ServeError> {
        let mut scratch = ScanScratch::default();
        self.serve_admitted_with(tokens, admitted_at, deadline, &mut scratch)
    }

    /// [`serve_admitted`](Self::serve_admitted) with caller-owned scan
    /// scratch — batch paths keep one `ScanScratch` per worker thread so
    /// the per-token ciphers and the decrypt buffer are reused across the
    /// queries of a batch instead of reallocated per query.
    fn serve_admitted_with(
        &self,
        tokens: &[SearchToken],
        admitted_at: Duration,
        deadline: Option<Duration>,
        scratch: &mut ScanScratch,
    ) -> Result<QueryOutcome, ServeError> {
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        self.retry.credit_query();
        let guard = QueryGuard {
            server: self,
            deadline,
            trip: Cell::new(None),
            probes_resolved: Cell::new(0),
            faults_absorbed: Cell::new(0),
        };
        let mut per_token: Vec<Vec<DocId>> = Vec::new();
        let scanned = scan_query_into_with(&guard, tokens, &mut per_token, scratch);
        self.counters
            .probes_resolved
            .fetch_add(guard.probes_resolved.get(), Ordering::Relaxed);
        self.counters
            .faults_absorbed
            .fetch_add(guard.faults_absorbed.get(), Ordering::Relaxed);
        match scanned {
            Ok(counts) => {
                self.counters.served_ok.fetch_add(1, Ordering::Relaxed);
                Ok(assemble_outcome(tokens, per_token, &counts))
            }
            Err(raw) => Err(match guard.trip.take() {
                Some(Trip::Deadline) => {
                    self.counters
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    let deadline = deadline.expect("deadline trip implies a deadline");
                    ServeError::DeadlineExceeded {
                        deadline: deadline.saturating_sub(admitted_at),
                        elapsed: self.clock.now().saturating_sub(admitted_at),
                        partial: PartialOutcome {
                            ids: per_token.into_iter().flatten().collect(),
                            probes_resolved: guard.probes_resolved.get(),
                            tokens_total: tokens.len(),
                        },
                    }
                }
                Some(Trip::Breaker { shard, open_for }) => {
                    self.counters
                        .shard_unavailable
                        .fetch_add(1, Ordering::Relaxed);
                    ServeError::ShardUnavailable { shard, open_for }
                }
                Some(Trip::Exhausted {
                    attempts,
                    budget_empty,
                    source,
                }) => {
                    self.counters
                        .retry_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                    ServeError::RetriesExhausted {
                        attempts,
                        budget_empty,
                        source,
                    }
                }
                // Every guard-loop error records a trip; a backend error
                // can't reach the scan without one. Surface it faithfully
                // if it somehow does.
                None => {
                    self.counters
                        .retry_exhausted
                        .fetch_add(1, Ordering::Relaxed);
                    ServeError::RetriesExhausted {
                        attempts: 1,
                        budget_empty: false,
                        source: raw,
                    }
                }
            }),
        }
    }

    /// Answers one query under the configured
    /// [`default_deadline`](ServeConfig::default_deadline), admitted as the
    /// configured [`default_tenant`](ServeConfig::default_tenant) (see
    /// there for the admission implication of unattributed traffic).
    pub fn answer(&self, tokens: &[SearchToken]) -> Result<QueryOutcome, ServeError> {
        self.answer_for(&self.config.default_tenant, tokens, None)
    }

    /// Answers one query with an explicit deadline budget, measured from
    /// admission, admitted as the configured
    /// [`default_tenant`](ServeConfig::default_tenant).
    pub fn answer_within(
        &self,
        tokens: &[SearchToken],
        deadline: Duration,
    ) -> Result<QueryOutcome, ServeError> {
        self.answer_for(&self.config.default_tenant, tokens, Some(deadline))
    }

    /// Answers one query on the direct (unqueued) path, attributed to
    /// `tenant` — sheds report the real tenant instead of `"adhoc"`. This is
    /// the replay-harness entry point: open-loop traces tag every event with
    /// a tenant and must never sit in a queue (queueing would hide the lag
    /// the harness exists to measure). A `None` deadline falls back to the
    /// configured [`default_deadline`](ServeConfig::default_deadline).
    pub fn answer_for(
        &self,
        tenant: &str,
        tokens: &[SearchToken],
        deadline: Option<Duration>,
    ) -> Result<QueryOutcome, ServeError> {
        self.check_pressure(tenant)?;
        let admitted_at = self.clock.now();
        let deadline = deadline.or(self.config.default_deadline);
        self.serve_admitted(tokens, admitted_at, deadline.map(|d| admitted_at + d))
    }

    /// Answers a batch of queries in parallel (rayon fan-out, outcomes in
    /// query order), every query under the full guarded loop and the
    /// **shared** retry budget and breakers. This is the resilient
    /// counterpart of [`QueryServer::answer_many`]. Scan scratch (payload
    /// ciphers, decrypt buffer) is thread-local and reused across the
    /// queries a worker serves, not reallocated per query.
    ///
    /// Queries here stay fully independent; to share work between them
    /// (dedupe identical probes across the batch) use
    /// [`answer_batch`](Self::answer_batch).
    pub fn answer_many(
        &self,
        queries: &[Vec<SearchToken>],
    ) -> Vec<Result<QueryOutcome, ServeError>> {
        queries
            .par_iter()
            .map_init(ScanScratch::default, |scratch, tokens| {
                self.check_pressure(&self.config.default_tenant)?;
                let admitted_at = self.clock.now();
                let deadline = self
                    .config
                    .default_deadline
                    .map(|budget| admitted_at + budget);
                self.serve_admitted_with(tokens, admitted_at, deadline, scratch)
            })
            .collect()
    }

    /// Answers a batch of queries through the shard-affine batch executor
    /// (see the [`executor`](crate::executor) module): all live tokens'
    /// labels for a counter round are expanded first, identical probes
    /// across the batch are deduplicated into one storage read (when
    /// [`BatchConfig::dedup`] is on), and the unique probes run grouped by
    /// shard so one slow block only stalls its shard's lane. Outcomes are
    /// **byte-identical** to serving each query alone, in query order.
    ///
    /// The whole batch is admitted at one instant (queries shed for cache
    /// pressure fail typed without joining the batch), and the configured
    /// [`default_deadline`](ServeConfig::default_deadline) runs from that
    /// instant. A query whose deadline passes is cut at the next round
    /// boundary — shared probes that other queries still demand proceed.
    pub fn answer_batch(
        &self,
        queries: &[Vec<SearchToken>],
    ) -> Vec<Result<QueryOutcome, ServeError>> {
        let admitted_at = self.clock.now();
        let deadline = self
            .config
            .default_deadline
            .map(|budget| admitted_at + budget);
        let mut slots: Vec<Option<Result<QueryOutcome, ServeError>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut admitted: Vec<usize> = Vec::with_capacity(queries.len());
        let mut items: Vec<BatchItem<'_>> = Vec::with_capacity(queries.len());
        for (slot, tokens) in queries.iter().enumerate() {
            match self.check_pressure(&self.config.default_tenant) {
                Ok(()) => {
                    admitted.push(slot);
                    items.push(BatchItem {
                        tokens,
                        admitted_at,
                        deadline,
                    });
                }
                Err(shed) => slots[slot] = Some(Err(shed)),
            }
        }
        let outcomes = execute_batch(self, items);
        for (slot, outcome) in admitted.into_iter().zip(outcomes) {
            slots[slot] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every batch slot resolves"))
            .collect()
    }

    /// Queues one tenant's query for a later [`drain`](Self::drain),
    /// shedding typed if a bound is hit. The configured default deadline
    /// starts **now** — time spent queued counts against it.
    pub fn enqueue(&self, tenant: &str, tokens: Vec<SearchToken>) -> Result<Ticket, ServeError> {
        let now = self.clock.now();
        let deadline = self.config.default_deadline.map(|d| now + d);
        let resident = self.backend.cache_stats().resident_bytes;
        let mut queue = self.admission.lock().expect("admission lock");
        queue
            .enqueue(tenant, tokens, deadline, resident)
            .map_err(|err| self.count_shed(err))
    }

    /// Serves everything queued, in oldest-tenant-fair round-robin order
    /// (see the [`admission`](crate::admission) module), sequentially and
    /// deterministically. Returns each request's ticket with its outcome,
    /// in serving order.
    pub fn drain(&self) -> Vec<(Ticket, Result<QueryOutcome, ServeError>)> {
        let plan: Vec<Pending> = self.admission.lock().expect("admission lock").drain_plan();
        plan.into_iter()
            .map(|pending| {
                let admitted_at = self.clock.now();
                let outcome = self.serve_admitted(&pending.tokens, admitted_at, pending.deadline);
                (pending.ticket, outcome)
            })
            .collect()
    }

    /// Serves everything queued as **one batch** through the shard-affine
    /// batch executor: the drain plan's queries (same oldest-tenant-fair
    /// order as [`drain`](Self::drain)) are admitted together, identical
    /// probes across them are deduplicated, and each request's ticket comes
    /// back with its outcome in plan order. Every request keeps the
    /// deadline it was enqueued under — one whose deadline passed while
    /// queued is cut at the first round boundary with a typed partial,
    /// without cancelling probes other requests share.
    pub fn drain_batched(&self) -> Vec<(Ticket, Result<QueryOutcome, ServeError>)> {
        let plan: Vec<Pending> = self.admission.lock().expect("admission lock").drain_plan();
        let admitted_at = self.clock.now();
        let items: Vec<BatchItem<'_>> = plan
            .iter()
            .map(|pending| BatchItem {
                tokens: &pending.tokens,
                admitted_at,
                deadline: pending.deadline,
            })
            .collect();
        let outcomes = execute_batch(self, items);
        plan.into_iter()
            .map(|pending| pending.ticket)
            .zip(outcomes)
            .collect()
    }
}

impl ResilientServer<QueryServer> {
    /// Cold-opens a resilient endpoint over an index persisted with
    /// `ShardedIndex::save_to_dir` (or built on disk): the resilient
    /// counterpart of [`QueryServer::open_dir`].
    pub fn open_dir(dir: impl AsRef<Path>, config: ServeConfig) -> Result<Self, StorageError> {
        Ok(Self::new(QueryServer::open_dir(dir)?, config))
    }

    /// Like [`open_dir`](Self::open_dir) with a block-cache budget bounding
    /// resident ciphertext bytes (see [`QueryServer::open_dir_with_budget`])
    /// — pairs naturally with
    /// [`AdmissionConfig::shed_at_resident_bytes`] pressure shedding.
    pub fn open_dir_with_budget(
        dir: impl AsRef<Path>,
        cache_budget: Option<usize>,
        config: ServeConfig,
    ) -> Result<Self, StorageError> {
        Ok(Self::new(
            QueryServer::open_dir_with_budget(dir, cache_budget)?,
            config,
        ))
    }

    /// Reopens one resilient endpoint per active instance of a persisted
    /// update manager (see [`QueryServer::open_manager_root`]), all under
    /// the same tuning.
    pub fn open_manager_root(
        root: impl AsRef<Path>,
        config: &ServeConfig,
    ) -> Result<Vec<Self>, StorageError> {
        Ok(QueryServer::open_manager_root(root)?
            .into_iter()
            .map(|server| Self::new(server, config.clone()))
            .collect())
    }
}
