//! Synthetic workloads mirroring the paper's evaluation datasets.
//!
//! The paper evaluates on two real datasets that are not redistributable
//! here:
//!
//! * **Gowalla** — 6.4M location check-ins, query attribute = check-in
//!   timestamp, ~95% of the tuples carry *distinct* values (near-uniform
//!   spread over a ~10^8-value domain);
//! * **USPS** — 389K employee records, query attribute = annual salary,
//!   only ~5% distinct values (heavy skew: many employees share the same
//!   salary step).
//!
//! What the experiments actually exercise is not the raw data but those two
//! statistical profiles — size, domain, distinct-value ratio and skew — so
//! this crate generates synthetic datasets with the same profiles
//! ([`datasets::gowalla_like`], [`datasets::usps_like`]) plus fully
//! parameterised generators ([`datasets::synthetic`]) and the query
//! workloads of Figures 6–8 ([`queries`]).
//!
//! On top of the static generators sits a **trace-driven replay harness**:
//!
//! * [`arrivals`] — seeded open-loop arrival processes (Poisson, diurnal,
//!   burst-storm);
//! * [`trace`] — deterministic multi-tenant event streams mixing
//!   Zipf-hotspot range queries with insert batches;
//! * [`mod@replay`] — an open-loop engine firing a trace at a live server with
//!   coordinated-omission-corrected latency recording;
//! * [`histogram`] — the mergeable log-bucketed latency histogram the
//!   engine reports tails with.

#![deny(missing_docs)]

pub mod arrivals;
pub mod datasets;
pub mod distributions;
pub mod histogram;
pub mod queries;
pub mod replay;
pub mod trace;

pub use arrivals::ArrivalProcess;
pub use datasets::{gowalla_like, synthetic, usps_like, DatasetProfile, SyntheticConfig};
pub use distributions::{ClusteredValues, UniformValues, ValueDistribution, Zipf};
pub use histogram::{bucket_bounds, LatencyHistogram};
pub use queries::{percent_of_domain, random_queries_of_len, random_queries_percent, QuerySet};
pub use replay::{
    replay, ManagedTarget, QueryFate, ReplayConfig, ReplayReport, ReplayTarget, ResilientTarget,
    TenantCounts, TenantReport,
};
pub use trace::{insert_batch, insert_batches, EventKind, Trace, TraceEvent, TraceSpec};
