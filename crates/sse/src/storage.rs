//! Pluggable storage backends for the encrypted dictionary.
//!
//! PR 2's [`ShardedIndex`](crate::ShardedIndex) split the dictionary into
//! independent label-prefix shards but kept every shard's ciphertext arena
//! pinned in RAM, and an index died with the process. This module decouples
//! the *representation* of a shard from the query algorithms (which are
//! generic over [`IndexLookup`](crate::IndexLookup) and never see the
//! difference):
//!
//! * [`ShardStorage`] — the per-shard read interface every backend
//!   implements: a bucket directory (`label → (offset, len)`), a ciphertext
//!   region resolving those spans, and `get`/`get_many` probes.
//! * [`EncryptedIndex`] — the existing in-memory
//!   arena backend, unchanged byte-for-byte (property-tested).
//! * [`FileShard`] — the on-disk backend: a compact serialized shard file
//!   (magic/version header, label directory, ciphertext region) whose
//!   directory is loaded at open time while ciphertexts stay on disk and
//!   are served through **mmap-style paged reads**: the region is cut into
//!   ~64 KiB blocks along entry boundaries, and a probe faults in only the
//!   block holding its span (each block is read at most once and then
//!   shared by all probes and clones). A 10M-record index therefore no
//!   longer needs all shards — or even all of any shard — resident.
//! * [`StorageConfig`] / [`StorageBackend`] — the knob threaded through
//!   `BuildIndex` (and, in `rsse-core`, through `RangeScheme::build_stored`
//!   and the update manager) selecting where an index's shards live.
//!
//! # Shard file format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "RSSE-SHD"
//! 8       4     format version (LE u32, = 1)
//! 12      4     reserved (0)
//! 16      8     entry count n (LE u64)
//! 24      8     ciphertext-region length (LE u64, < 4 GiB)
//! 32      24·n  directory: n × (16-byte label, LE u32 offset, LE u32 len),
//!               sorted by offset; the spans tile [0, region_len) exactly
//! 32+24·n ...   ciphertext region (concatenated spans, in directory order)
//! ```
//!
//! The directory order is deterministic (ascending offset), so serializing
//! the same logical shard always produces the same bytes —
//! `save_to_dir` → `open_dir` → `save_to_dir` round-trips byte-identically.
//! An index directory holds one `shard-NNNNN.shd` per shard plus an
//! `index.meta` manifest (same magic/version discipline) recording the
//! shard-bit count.
//!
//! [`FileShard::open`] **rejects** malformed files with typed
//! [`StorageError`]s — truncated files, foreign magic, unsupported
//! versions, and directories whose spans fall outside (or fail to tile)
//! the ciphertext region — instead of panicking at query time.

use crate::pibas::{CipherSpan, EncryptedIndex, KeywordChunk, Label, LabelTable, LABEL_LEN};
use rayon::prelude::*;
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File};
use std::hash::BuildHasherDefault;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Positioned read into `buf` at `offset`, without touching any shared
/// cursor — this is what keeps concurrent paged reads lock-free. Thin
/// per-platform shim over `pread`-style APIs so the crate stays portable.
#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(file, buf, offset)
}

/// Windows variant of [`read_exact_at`], built on `seek_read` (which takes
/// an explicit offset and leaves no cursor state the reads could race on).
#[cfg(windows)]
fn read_exact_at(file: &File, mut buf: &mut [u8], mut offset: u64) -> io::Result<()> {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        match file.seek_read(buf, offset) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "failed to fill whole buffer",
                ))
            }
            Ok(n) => {
                buf = &mut buf[n..];
                offset += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Magic bytes opening every serialized shard file.
pub const SHARD_MAGIC: [u8; 8] = *b"RSSE-SHD";

/// Magic bytes opening the index manifest (`index.meta`).
pub const MANIFEST_MAGIC: [u8; 8] = *b"RSSE-IDX";

/// Current serialization format version.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed shard-file header length in bytes.
const SHARD_HEADER_LEN: u64 = 32;

/// Bytes per directory entry: 16-byte label + u32 offset + u32 len.
const DIR_ENTRY_LEN: u64 = 24;

/// Manifest file length in bytes.
const MANIFEST_LEN: u64 = 24;

/// Target paged-read block size. Blocks are cut along entry boundaries, so
/// a block is at least this large only when its last entry crosses the
/// threshold; a single entry larger than the target gets its own block.
const BLOCK_TARGET: usize = 64 << 10;

/// File name of the per-index manifest inside a saved index directory.
pub const MANIFEST_FILE: &str = "index.meta";

/// File name of shard `i` inside a saved index directory.
pub fn shard_file_name(shard: usize) -> String {
    format!("shard-{shard:05}.shd")
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed error surfaced by the persistence layer.
///
/// Every way a stored index can be unusable — I/O failures, foreign or
/// truncated files, corrupt directories — maps to a distinct variant, so
/// callers can distinguish "disk is gone" from "this is not one of ours"
/// without string matching, and nothing in the open path panics.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The originating I/O error.
        error: io::Error,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The offending file.
        path: PathBuf,
        /// The bytes actually found where the magic was expected.
        found: [u8; 8],
    },
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The version recorded in the file.
        version: u32,
    },
    /// The file is shorter than its header/directory claims.
    Truncated {
        /// The offending file.
        path: PathBuf,
        /// Length the header implies.
        expected: u64,
        /// Length actually on disk.
        actual: u64,
    },
    /// The label directory is internally inconsistent (out-of-bounds or
    /// non-tiling spans, duplicate labels, trailing bytes, …).
    CorruptDirectory {
        /// The offending file.
        path: PathBuf,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// The selected backend is not supported by this scheme or operation.
    Unsupported(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { path, error } => {
                write!(f, "storage I/O error on {}: {error}", path.display())
            }
            StorageError::BadMagic { path, found } => write!(
                f,
                "{} is not a serialized index file (magic {found:02x?})",
                path.display()
            ),
            StorageError::UnsupportedVersion { path, version } => write!(
                f,
                "{} uses unsupported format version {version} (this build reads {FORMAT_VERSION})",
                path.display()
            ),
            StorageError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{} is truncated: header implies {expected} bytes, file has {actual}",
                path.display()
            ),
            StorageError::CorruptDirectory { path, detail } => {
                write!(
                    f,
                    "{} has a corrupt label directory: {detail}",
                    path.display()
                )
            }
            StorageError::Unsupported(what) => {
                write!(f, "storage backend not supported: {what}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<std::convert::Infallible> for StorageError {
    fn from(infallible: std::convert::Infallible) -> Self {
        match infallible {}
    }
}

/// Attaches a path to a raw I/O error.
fn io_err(path: &Path, error: io::Error) -> StorageError {
    StorageError::Io {
        path: path.to_path_buf(),
        error,
    }
}

/// Shared header validation for the serialized-file family (shard files,
/// manifests, scheme sidecars): checks the 8-byte `magic`, a minimum
/// length of `min_len`, and the little-endian [`FORMAT_VERSION`] at bytes
/// 8..12, surfacing the standard typed errors. Every deserializer in the
/// workspace funnels through this so the rejection behavior cannot
/// diverge between formats.
pub fn check_header(
    path: &Path,
    bytes: &[u8],
    magic: &[u8; 8],
    min_len: u64,
) -> Result<(), StorageError> {
    if bytes.len() < 8 || &bytes[..8] != magic {
        let mut found = [0u8; 8];
        let take = bytes.len().min(8);
        found[..take].copy_from_slice(&bytes[..take]);
        return Err(StorageError::BadMagic {
            path: path.to_path_buf(),
            found,
        });
    }
    if (bytes.len() as u64) < min_len {
        return Err(StorageError::Truncated {
            path: path.to_path_buf(),
            expected: min_len,
            actual: bytes.len() as u64,
        });
    }
    let version = read_u32(&bytes[8..]);
    if version != FORMAT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Where an encrypted index's shards live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageBackend {
    /// Every shard is an in-memory ciphertext arena (the PR 2 layout,
    /// byte-identical).
    InMemory,
    /// Shards are serialized into the given directory during `BuildIndex`
    /// and served from disk via paged reads.
    OnDisk(PathBuf),
}

/// Memory budget for an **external-memory** `BuildIndex` (see the
/// [`external`](crate::external) module).
///
/// When a [`StorageConfig`] carries a budget, builds that honor it (the
/// range schemes' grouped paths and the update manager's consolidation
/// rebuilds) stop materializing the whole transformed corpus in RAM.
/// Instead they stream `(keyword, payload)` entries into sorted `RSSE-SPL`
/// spill runs of at most ~`memory_bytes / 2` bytes each, then k-way merge
/// the runs, encrypting and scattering one bounded batch of keyword groups
/// at a time into the existing streaming shard writers — so peak RSS is
/// bounded by the budget (run buffer + merge scratch + write buffers), not
/// by corpus size, at ~2 I/O passes over the entries.
///
/// The budget is a *target*, not a hard allocator limit. Two floors apply
/// regardless of how small it is set: the largest single posting list must
/// fit in RAM (the keyed shuffle and its encrypted chunk need the whole
/// list), and each spill run holds at least a minimum number of entries so
/// a pathological budget cannot explode the run count (and with it the
/// merge's file handles). See `docs/OPERATIONS.md` for sizing guidance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildBudget {
    /// Target peak working-set size of the build, in bytes.
    pub memory_bytes: usize,
    /// Where spill files for **in-memory** indexes go (an on-disk build
    /// spills into `spill.tmp` inside its own index directory and ignores
    /// this). `None` uses a uniquely named directory under
    /// [`std::env::temp_dir`].
    pub spill_root: Option<PathBuf>,
}

impl BuildBudget {
    /// Floor on entries per spill run: keeps the run count — and the open
    /// readers of the merge phase — bounded even under absurdly small
    /// budgets.
    pub(crate) const MIN_RUN_ENTRIES: usize = 512;

    /// A budget targeting `memory_bytes` of peak build working set.
    pub fn with_memory(memory_bytes: usize) -> Self {
        Self {
            memory_bytes,
            spill_root: None,
        }
    }

    /// Sets the directory spill files of in-memory builds are created
    /// under (each build still gets its own uniquely named subdirectory).
    pub fn with_spill_root(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_root = Some(dir.into());
        self
    }

    /// Entries per sorted spill run for `entry_bytes`-sized entries: half
    /// the budget (the other half is merge + encrypt + write scratch),
    /// floored at [`Self::MIN_RUN_ENTRIES`].
    pub(crate) fn run_entry_limit(&self, entry_bytes: usize) -> usize {
        let per_entry = entry_bytes.max(1);
        (self.memory_bytes / 2 / per_entry).max(Self::MIN_RUN_ENTRIES)
    }

    /// Ciphertext bytes a merge-phase encrypt batch may accumulate before
    /// it is flushed through the shard writers (a quarter of the budget;
    /// batching is what keeps the per-group encryption parallel).
    pub(crate) fn encrypt_batch_bytes(&self) -> usize {
        (self.memory_bytes / 4).max(64 << 10)
    }
}

impl Default for BuildBudget {
    /// 256 MiB of build working set, spilling under the OS temp directory.
    fn default() -> Self {
        Self::with_memory(256 << 20)
    }
}

/// Storage configuration threaded through `BuildIndex`: how many
/// label-prefix shards to cut the dictionary into, and which
/// [`StorageBackend`] holds them.
///
/// # Examples
///
/// ```
/// use rsse_sse::{StorageBackend, StorageConfig};
///
/// let in_ram = StorageConfig::in_memory(4);
/// assert_eq!(in_ram.backend, StorageBackend::InMemory);
///
/// let on_disk = StorageConfig::on_disk(4, "/tmp/rsse-index");
/// assert!(matches!(on_disk.backend, StorageBackend::OnDisk(_)));
/// // Multi-index schemes (Logarithmic-SRC-i) place each sub-index in its
/// // own subdirectory; in-memory configs pass through unchanged.
/// assert!(matches!(on_disk.subdir("i1").backend, StorageBackend::OnDisk(p) if p.ends_with("i1")));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StorageConfig {
    /// Number of label-prefix bits selecting a shard (`2^bits` shards).
    pub shard_bits: u32,
    /// Backend holding the shards.
    pub backend: StorageBackend,
    /// Memory budget, in bytes, for the paged-read block cache of a
    /// file-backed index (`None` = unlimited: blocks stay resident once
    /// touched, exactly the pre-budget behavior). The budget covers the
    /// ciphertext blocks of **one** index — the bucket directories are
    /// always resident — and is enforced by a sharded clock cache shared
    /// by all of the index's shards; see
    /// [`ShardedIndex::cache_stats`](crate::ShardedIndex::cache_stats).
    /// In-memory backends ignore it.
    pub cache_budget: Option<usize>,
    /// Memory budget for the build itself. `None` (the default) keeps the
    /// classic in-RAM build: sort, encrypt and scatter the whole corpus in
    /// memory. `Some` routes budget-aware builds (the range schemes'
    /// grouped paths, `RangeScheme::build_external` in `rsse-core`, and
    /// update-manager consolidations past the threshold) through the
    /// external-memory spill-and-merge pipeline of the
    /// [`external`](crate::external) module — **byte-identical output**,
    /// bounded peak RSS.
    pub build_budget: Option<BuildBudget>,
}

impl StorageConfig {
    /// An in-memory configuration with `2^shard_bits` shards.
    pub fn in_memory(shard_bits: u32) -> Self {
        Self {
            shard_bits,
            backend: StorageBackend::InMemory,
            cache_budget: None,
            build_budget: None,
        }
    }

    /// An on-disk configuration writing `2^shard_bits` shard files into
    /// `dir` (created if missing).
    pub fn on_disk(shard_bits: u32, dir: impl Into<PathBuf>) -> Self {
        Self {
            shard_bits,
            backend: StorageBackend::OnDisk(dir.into()),
            cache_budget: None,
            build_budget: None,
        }
    }

    /// Caps the resident ciphertext blocks of a file-backed index at
    /// `bytes` (a per-index budget, enforced by clock eviction).
    pub fn with_cache_budget(mut self, bytes: usize) -> Self {
        self.cache_budget = Some(bytes);
        self
    }

    /// Bounds the peak working set of the build itself: budget-aware build
    /// paths switch to the external-memory spill-and-merge pipeline (see
    /// [`BuildBudget`] and the [`external`](crate::external) module).
    pub fn with_build_budget(mut self, budget: BuildBudget) -> Self {
        self.build_budget = Some(budget);
        self
    }

    /// Derives the configuration for a named sub-index: on-disk backends
    /// descend into `dir/name`, in-memory configs are returned unchanged.
    /// The cache and build budgets carry over (each sub-index gets its own
    /// cache, and spills into its own directory).
    pub fn subdir(&self, name: &str) -> Self {
        match &self.backend {
            StorageBackend::InMemory => self.clone(),
            StorageBackend::OnDisk(dir) => Self {
                shard_bits: self.shard_bits,
                backend: StorageBackend::OnDisk(dir.join(name)),
                cache_budget: self.cache_budget,
                build_budget: self.build_budget.clone(),
            },
        }
    }

    /// Whether this configuration persists the index to disk.
    pub fn is_on_disk(&self) -> bool {
        matches!(self.backend, StorageBackend::OnDisk(_))
    }
}

impl Default for StorageConfig {
    /// A single in-memory arena (`shard_bits = 0`).
    fn default() -> Self {
        Self::in_memory(0)
    }
}

// ---------------------------------------------------------------------------
// The ShardStorage trait
// ---------------------------------------------------------------------------

/// Read interface of one dictionary shard, whatever holds its bytes.
///
/// A shard is a **bucket directory** (`label → (offset, len)`) over a
/// **ciphertext region**; the trait exposes the only operation the search
/// algorithms need — a fallible point probe — so the sharded index can mix
/// backends without the query layer noticing. `Ok(None)` means the label
/// is genuinely absent; `Err` means the backing storage failed to resolve
/// the probe (in-memory arenas never take that branch).
pub trait ShardStorage {
    /// Looks up the ciphertext stored under `label`.
    fn try_get(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, StorageError>;

    /// Number of entries in the bucket directory.
    fn len(&self) -> usize;

    /// Whether the shard holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Server-side storage footprint in bytes (labels + ciphertext region).
    fn storage_bytes(&self) -> usize;
}

impl ShardStorage for EncryptedIndex {
    fn try_get(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, StorageError> {
        Ok(EncryptedIndex::get(self, label).map(CipherSpan::borrowed))
    }

    fn len(&self) -> usize {
        EncryptedIndex::len(self)
    }

    fn storage_bytes(&self) -> usize {
        EncryptedIndex::storage_bytes(self)
    }
}

// ---------------------------------------------------------------------------
// The budgeted block cache
// ---------------------------------------------------------------------------

/// Aggregated block-cache observability counters of one index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes served from an already-loaded block.
    pub hits: u64,
    /// Probes that had to read their block from disk.
    pub misses: u64,
    /// Blocks evicted to keep the cache inside its budget (always 0
    /// without a [`StorageConfig::cache_budget`]).
    pub evictions: u64,
    /// Ciphertext-block bytes currently resident in memory.
    pub resident_bytes: usize,
}

/// Number of independently locked cache segments. Keys spread over the
/// segments by block hash, so concurrent probes rarely contend on one
/// lock; the byte budget is split evenly across segments.
const CACHE_SEGMENTS: usize = 8;

/// A cached region block and its clock "referenced" bit.
struct CacheSlot {
    data: Arc<[u8]>,
    referenced: bool,
}

/// One locked segment of the cache: the block map plus the clock ring the
/// eviction hand walks.
#[derive(Default)]
struct CacheSegment {
    slots: HashMap<(u32, u32), CacheSlot>,
    ring: Vec<(u32, u32)>,
    hand: usize,
}

impl CacheSegment {
    /// Evicts one block (second-chance clock: a referenced block gets its
    /// bit cleared and the hand moves on; the first unreferenced block
    /// goes). The ring is non-empty when this is called.
    fn evict_one(&mut self) -> usize {
        loop {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let key = self.ring[self.hand];
            let slot = self.slots.get_mut(&key).expect("ring keys are cached");
            if slot.referenced {
                slot.referenced = false;
                self.hand += 1;
                continue;
            }
            let freed = slot.data.len();
            self.slots.remove(&key);
            self.ring.swap_remove(self.hand);
            return freed;
        }
    }
}

/// A sharded clock block cache bounding the resident ciphertext bytes of
/// one file-backed index.
///
/// All shards of an index share one cache; keys are
/// `(shard index, block index)`. Lookups set the block's clock bit;
/// inserts evict unreferenced blocks — walking the segments round-robin,
/// one lock at a time — until the **whole cache** is back inside the
/// budget. Blocks are handed out as `Arc<[u8]>`, so a probe that is still
/// decrypting a span keeps the bytes alive even if the block is evicted
/// concurrently — eviction only drops the cache's reference.
pub(crate) struct BlockCache {
    /// Total byte budget across all segments.
    budget: usize,
    segments: Vec<Mutex<CacheSegment>>,
    /// Round-robin segment rotor the evictor walks.
    evict_from: AtomicUsize,
    evictions: AtomicU64,
    resident: AtomicUsize,
}

impl BlockCache {
    /// A cache enforcing `budget` bytes across all segments.
    pub(crate) fn new(budget: usize) -> Self {
        Self {
            budget,
            segments: (0..CACHE_SEGMENTS).map(|_| Mutex::default()).collect(),
            evict_from: AtomicUsize::new(0),
            evictions: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
        }
    }

    fn segment(&self, key: (u32, u32)) -> &Mutex<CacheSegment> {
        let mix = (key.0 as usize).wrapping_mul(0x9E37_79B9) ^ (key.1 as usize);
        &self.segments[mix % CACHE_SEGMENTS]
    }

    /// Looks up a block, marking it recently used.
    fn get(&self, key: (u32, u32)) -> Option<Arc<[u8]>> {
        let mut segment = self.segment(key).lock().expect("cache lock poisoned");
        let slot = segment.slots.get_mut(&key)?;
        slot.referenced = true;
        Some(Arc::clone(&slot.data))
    }

    /// Evicts blocks — walking the segments round-robin, one lock at a
    /// time, never nested — until `incoming` more bytes would fit the
    /// budget. `attempts` bounds the walk in the rare case every segment
    /// is empty while `resident` is still being settled by concurrent
    /// inserts.
    fn evict_to_fit(&self, incoming: usize) {
        let mut attempts = 0usize;
        while self.resident.load(Ordering::Relaxed) + incoming > self.budget
            && attempts < 4 * CACHE_SEGMENTS
        {
            let at = self.evict_from.fetch_add(1, Ordering::Relaxed) % CACHE_SEGMENTS;
            let mut segment = self.segments[at].lock().expect("cache lock poisoned");
            if segment.ring.is_empty() {
                attempts += 1;
                continue;
            }
            let freed = segment.evict_one();
            drop(segment);
            self.resident.fetch_sub(freed, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Inserts a freshly read block, evicting as needed. A block larger
    /// than the whole budget is served but never cached, so the budget
    /// holds even for pathological block sizes.
    ///
    /// Concurrency note: the budget check and the insert are not one
    /// atomic step, so N threads missing on cold blocks simultaneously
    /// can overshoot the budget transiently (by at most one in-flight
    /// block each). The trailing `evict_to_fit(0)` restores the bound
    /// before the insert returns, so the cache is back inside the budget
    /// whenever no insert is mid-flight.
    fn insert(&self, key: (u32, u32), data: Arc<[u8]>) {
        let len = data.len();
        if len > self.budget {
            return;
        }
        // Make room first, then insert.
        self.evict_to_fit(len);
        let mut segment = self.segment(key).lock().expect("cache lock poisoned");
        if segment.slots.contains_key(&key) {
            // A concurrent probe of the same cold block won the race.
            return;
        }
        segment.slots.insert(
            key,
            CacheSlot {
                data,
                referenced: false,
            },
        );
        segment.ring.push(key);
        drop(segment);
        self.resident.fetch_add(len, Ordering::Relaxed);
        // Self-correct any racy overshoot: whoever finishes last leaves
        // the cache inside the budget.
        self.evict_to_fit(0);
    }

    /// Total block bytes currently cached.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Blocks evicted since the cache was created.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Cached bytes attributable to one shard (observability only — walks
    /// every segment under its lock).
    fn shard_resident_bytes(&self, shard: u32) -> usize {
        self.segments
            .iter()
            .map(|segment| {
                let segment = segment.lock().expect("cache lock poisoned");
                segment
                    .slots
                    .iter()
                    .filter(|((s, _), _)| *s == shard)
                    .map(|(_, slot)| slot.data.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

// ---------------------------------------------------------------------------
// The file-backed shard
// ---------------------------------------------------------------------------

/// One paged-read block of the ciphertext region in the **resident**
/// (unbudgeted) store: loaded at most once, then kept for the life of the
/// shard handle.
struct ResidentBlock {
    /// Offset of the block within the region.
    start: u32,
    /// Block length in bytes (whole entries only).
    len: u32,
    /// Lazily loaded block bytes. A failed read stores nothing, so the
    /// next probe retries — a transient I/O blip never poisons the block
    /// permanently (the probe itself surfaces the failure as a typed
    /// error).
    data: OnceLock<Box<[u8]>>,
}

/// Where a shard's region blocks live once faulted in.
enum BlockStore {
    /// No cache budget: every touched block stays resident behind a
    /// `OnceLock` — loaded once, lock-free afterwards (the pre-budget
    /// behavior, and the default).
    Resident(Vec<ResidentBlock>),
    /// Budgeted: blocks live in the index-wide clock [`BlockCache`] and
    /// can be evicted; probes pin the block they need via `Arc`.
    Cached {
        cache: Arc<BlockCache>,
        /// This shard's index within the cache key space.
        shard: u32,
        /// `(start, len)` of each block, ascending by start.
        blocks: Vec<(u32, u32)>,
    },
}

struct FileShardInner {
    /// Path the shard was opened from (error reporting, re-serialization).
    path: PathBuf,
    /// The open shard file; all reads go through positioned `read_at`.
    file: File,
    /// The in-memory bucket directory: label → (region offset, len).
    table: LabelTable,
    /// File offset where the ciphertext region starts.
    region_offset: u64,
    /// Ciphertext-region length (< 4 GiB, the per-shard arena bound).
    region_len: u32,
    /// Region blocks, resident or cache-backed.
    store: BlockStore,
    /// Probes served from an already-loaded block.
    hits: AtomicU64,
    /// Probes that had to read their block from disk.
    misses: AtomicU64,
    /// Number of block reads that failed since open. Failed reads now
    /// surface as typed [`StorageError`]s from the probe itself; the
    /// counter remains as the aggregate operator-side view of how often
    /// the backing storage misbehaved.
    read_errors: AtomicU64,
}

/// A disk-resident dictionary shard: in-memory bucket directory, on-disk
/// ciphertext region served via paged reads.
///
/// Cloning is cheap (the file handle, directory, and block cache are
/// shared), and probes from any number of threads are lock-free after a
/// block's one-time load — the [`OnceLock`] per block is the only
/// synchronization.
#[derive(Clone)]
pub struct FileShard {
    inner: Arc<FileShardInner>,
}

impl fmt::Debug for FileShard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (blocks, budgeted) = match &self.inner.store {
            BlockStore::Resident(blocks) => (blocks.len(), false),
            BlockStore::Cached { blocks, .. } => (blocks.len(), true),
        };
        f.debug_struct("FileShard")
            .field("path", &self.inner.path)
            .field("entries", &self.inner.table.len())
            .field("region_len", &self.inner.region_len)
            .field("blocks", &blocks)
            .field("budgeted", &budgeted)
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

/// Reads a little-endian `u32`/`u64` out of a byte slice.
fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"))
}

impl FileShard {
    /// Opens a serialized shard file: validates the header, loads the label
    /// directory into memory, and prepares the paged-read block table. The
    /// ciphertext region itself stays on disk, and touched blocks stay
    /// resident for the life of the handle (no budget).
    ///
    /// # Errors
    ///
    /// Returns a typed [`StorageError`] for every malformed input —
    /// truncated files, wrong magic, unsupported versions, and directories
    /// whose spans do not exactly tile the ciphertext region.
    pub fn open(path: &Path) -> Result<Self, StorageError> {
        Self::open_inner(path, None)
    }

    /// Opens a shard whose region blocks are served through the index-wide
    /// budgeted [`BlockCache`] under shard key `shard`.
    pub(crate) fn open_cached(
        path: &Path,
        shard: u32,
        cache: Arc<BlockCache>,
    ) -> Result<Self, StorageError> {
        Self::open_inner(path, Some((shard, cache)))
    }

    fn open_inner(
        path: &Path,
        cache: Option<(u32, Arc<BlockCache>)>,
    ) -> Result<Self, StorageError> {
        let file = File::open(path).map_err(|e| io_err(path, e))?;
        let file_len = file.metadata().map_err(|e| io_err(path, e))?.len();
        if file_len < SHARD_HEADER_LEN {
            return Err(StorageError::Truncated {
                path: path.to_path_buf(),
                expected: SHARD_HEADER_LEN,
                actual: file_len,
            });
        }
        let mut header = [0u8; SHARD_HEADER_LEN as usize];
        read_exact_at(&file, &mut header, 0).map_err(|e| io_err(path, e))?;
        check_header(path, &header, &SHARD_MAGIC, SHARD_HEADER_LEN)?;
        let entry_count = read_u64(&header[16..]);
        let region_len = read_u64(&header[24..]);
        if region_len > u32::MAX as u64 {
            return Err(StorageError::CorruptDirectory {
                path: path.to_path_buf(),
                detail: format!("region length {region_len} exceeds the 4 GiB shard bound"),
            });
        }
        let expected_len = SHARD_HEADER_LEN
            .checked_add(entry_count.checked_mul(DIR_ENTRY_LEN).ok_or_else(|| {
                StorageError::CorruptDirectory {
                    path: path.to_path_buf(),
                    detail: format!("entry count {entry_count} overflows the directory size"),
                }
            })?)
            .and_then(|d| d.checked_add(region_len))
            .ok_or_else(|| StorageError::CorruptDirectory {
                path: path.to_path_buf(),
                detail: "header sizes overflow".to_string(),
            })?;
        if file_len < expected_len {
            return Err(StorageError::Truncated {
                path: path.to_path_buf(),
                expected: expected_len,
                actual: file_len,
            });
        }
        if file_len > expected_len {
            return Err(StorageError::CorruptDirectory {
                path: path.to_path_buf(),
                detail: format!(
                    "{} trailing bytes after the ciphertext region",
                    file_len - expected_len
                ),
            });
        }

        // Directory pass: read all entries, verify the spans tile
        // [0, region_len) in ascending offset order (which also proves every
        // span in bounds), and build the lookup table and block cuts.
        let entry_count = entry_count as usize;
        let mut directory = vec![0u8; entry_count * DIR_ENTRY_LEN as usize];
        read_exact_at(&file, &mut directory, SHARD_HEADER_LEN).map_err(|e| io_err(path, e))?;
        let mut table =
            LabelTable::with_capacity_and_hasher(entry_count, BuildHasherDefault::default());
        let mut blocks: Vec<(u32, u32)> = Vec::new();
        let mut running = 0u64;
        let mut block_start = 0u64;
        for (i, entry) in directory.chunks_exact(DIR_ENTRY_LEN as usize).enumerate() {
            let mut label = [0u8; LABEL_LEN];
            label.copy_from_slice(&entry[..LABEL_LEN]);
            let offset = read_u32(&entry[LABEL_LEN..]);
            let len = read_u32(&entry[LABEL_LEN + 4..]);
            if u64::from(offset) != running {
                return Err(StorageError::CorruptDirectory {
                    path: path.to_path_buf(),
                    detail: format!(
                        "entry {i} starts at offset {offset}, expected {running} \
                         (spans must tile the region)"
                    ),
                });
            }
            running += u64::from(len);
            if running > region_len {
                return Err(StorageError::CorruptDirectory {
                    path: path.to_path_buf(),
                    detail: format!(
                        "entry {i} (offset {offset}, len {len}) overruns the \
                         {region_len}-byte ciphertext region"
                    ),
                });
            }
            if table.insert(label, (offset, len)).is_some() {
                return Err(StorageError::CorruptDirectory {
                    path: path.to_path_buf(),
                    detail: format!("duplicate label at entry {i}"),
                });
            }
            if running - block_start >= BLOCK_TARGET as u64 {
                blocks.push((block_start as u32, (running - block_start) as u32));
                block_start = running;
            }
        }
        if running != region_len {
            return Err(StorageError::CorruptDirectory {
                path: path.to_path_buf(),
                detail: format!(
                    "directory spans cover {running} bytes of a {region_len}-byte region"
                ),
            });
        }
        if running > block_start {
            blocks.push((block_start as u32, (running - block_start) as u32));
        }
        let store = match cache {
            Some((shard, cache)) => BlockStore::Cached {
                cache,
                shard,
                blocks,
            },
            None => BlockStore::Resident(
                blocks
                    .into_iter()
                    .map(|(start, len)| ResidentBlock {
                        start,
                        len,
                        data: OnceLock::new(),
                    })
                    .collect(),
            ),
        };
        Ok(Self {
            inner: Arc::new(FileShardInner {
                path: path.to_path_buf(),
                file,
                table,
                region_offset: SHARD_HEADER_LEN + (entry_count as u64) * DIR_ENTRY_LEN,
                region_len: region_len as u32,
                store,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                read_errors: AtomicU64::new(0),
            }),
        })
    }

    /// The file this shard is served from.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Number of block reads that have failed since this shard was opened.
    ///
    /// Since the fallible-probe refactor a failed block read surfaces as a
    /// typed [`StorageError`] from the probing search itself; this counter
    /// remains as the aggregate operator-side signal of how often the
    /// backing storage misbehaved. Failed blocks are never cached, so the
    /// next probe retries.
    pub fn read_errors(&self) -> u64 {
        self.inner.read_errors.load(Ordering::Relaxed)
    }

    /// Hit/miss/eviction counters and residency of this shard's region
    /// blocks. In cached mode, evictions are reported index-wide (0 here)
    /// — aggregate through `ShardedIndex::cache_stats` instead.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: 0,
            resident_bytes: self.resident_bytes(),
        }
    }

    /// Bytes of the ciphertext region currently faulted into memory (the
    /// bucket directory itself is always resident). In cached mode this
    /// walks the shared cache and counts only this shard's blocks.
    pub fn resident_bytes(&self) -> usize {
        match &self.inner.store {
            BlockStore::Resident(blocks) => blocks
                .iter()
                .filter(|block| block.data.get().is_some())
                .map(|block| block.len as usize)
                .sum(),
            BlockStore::Cached { cache, shard, .. } => cache.shard_resident_bytes(*shard),
        }
    }

    /// The index-wide block cache this shard probes through, if budgeted.
    pub(crate) fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        match &self.inner.store {
            BlockStore::Resident(_) => None,
            BlockStore::Cached { cache, .. } => Some(cache),
        }
    }

    /// Reads one whole region block `(start, len)` from disk.
    fn read_block(&self, start: u32, len: u32) -> Result<Box<[u8]>, StorageError> {
        let inner = &*self.inner;
        let mut buf = vec![0u8; len as usize].into_boxed_slice();
        read_exact_at(
            &inner.file,
            &mut buf,
            inner.region_offset + u64::from(start),
        )
        .map_err(|error| {
            // Record the failure for the aggregate counter; the probe
            // itself carries the typed error to the caller. The block
            // stays uncached, so the next probe retries.
            inner.read_errors.fetch_add(1, Ordering::Relaxed);
            io_err(&inner.path, error)
        })?;
        Ok(buf)
    }

    /// Resolves the span at `(offset, len)` through the paged block store.
    ///
    /// `Ok(None)` never occurs here — the caller already resolved the
    /// label to a span — so the result is the span or a typed read error.
    fn span(&self, offset: u32, len: u32) -> Result<CipherSpan<'_>, StorageError> {
        if len == 0 {
            return Ok(CipherSpan::borrowed(&[]));
        }
        let inner = &*self.inner;
        match &inner.store {
            BlockStore::Resident(blocks) => {
                let index = blocks.partition_point(|b| b.start <= offset) - 1;
                let block = &blocks[index];
                let data = match block.data.get() {
                    Some(data) => {
                        inner.hits.fetch_add(1, Ordering::Relaxed);
                        data
                    }
                    None => {
                        inner.misses.fetch_add(1, Ordering::Relaxed);
                        let buf = self.read_block(block.start, block.len)?;
                        // A concurrent probe may have won the race; either
                        // way the lock now holds a fully read copy.
                        let _ = block.data.set(buf);
                        block.data.get().expect("block was just populated")
                    }
                };
                let rel = (offset - block.start) as usize;
                Ok(CipherSpan::borrowed(&data[rel..rel + len as usize]))
            }
            BlockStore::Cached {
                cache,
                shard,
                blocks,
            } => {
                let index = blocks.partition_point(|&(start, _)| start <= offset) - 1;
                let (start, block_len) = blocks[index];
                let key = (*shard, index as u32);
                let data = match cache.get(key) {
                    Some(data) => {
                        inner.hits.fetch_add(1, Ordering::Relaxed);
                        data
                    }
                    None => {
                        inner.misses.fetch_add(1, Ordering::Relaxed);
                        let data: Arc<[u8]> = Arc::from(self.read_block(start, block_len)?);
                        cache.insert(key, Arc::clone(&data));
                        data
                    }
                };
                let rel = (offset - start) as usize;
                Ok(CipherSpan::pinned(data, rel, len as usize))
            }
        }
    }

    /// Returns the stored ciphertexts in region order, faulting blocks in
    /// as needed (used by leakage-oriented tests and tooling; copies each
    /// span out so cached blocks are not pinned past the call).
    pub fn ciphertexts(&self) -> Result<Vec<Vec<u8>>, StorageError> {
        let mut spans: Vec<(u32, u32)> = self.inner.table.values().copied().collect();
        spans.sort_unstable_by_key(|&(offset, _)| offset);
        spans
            .into_iter()
            .map(|(offset, len)| self.span(offset, len).map(|span| span.to_vec()))
            .collect()
    }

    /// Serializes this shard back into `writer` (byte-identical to the file
    /// it was opened from).
    fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        let entries = self.entries_by_offset();
        write_shard_header(
            writer,
            entries.len() as u64,
            u64::from(self.inner.region_len),
        )?;
        write_shard_directory(writer, entries.iter().map(|&(label, _, len)| (label, len)))?;
        self.stream_region_to(writer)
    }

    /// The directory entries sorted by region offset — the deterministic
    /// serialization order (and the physical arena order: spans tile the
    /// region ascending).
    pub(crate) fn entries_by_offset(&self) -> Vec<(Label, u32, u32)> {
        let mut entries: Vec<(Label, u32, u32)> = self
            .inner
            .table
            .iter()
            .map(|(label, &(offset, len))| (*label, offset, len))
            .collect();
        entries.sort_unstable_by_key(|&(_, offset, _)| offset);
        entries
    }

    /// Ciphertext-region length in bytes.
    pub(crate) fn region_len(&self) -> u32 {
        self.inner.region_len
    }

    /// The labels stored in this shard, in table order.
    pub(crate) fn labels(&self) -> impl Iterator<Item = &Label> {
        self.inner.table.keys()
    }

    /// Streams the raw ciphertext region into `writer` in bounded chunks,
    /// straight off disk (block cache bypassed). The bytes are copied
    /// verbatim — nothing is decrypted.
    fn stream_region_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        let inner = &*self.inner;
        let mut remaining = u64::from(inner.region_len);
        let mut at = inner.region_offset;
        let mut buf = vec![0u8; BLOCK_TARGET];
        while remaining > 0 {
            let take = remaining.min(BLOCK_TARGET as u64) as usize;
            read_exact_at(&inner.file, &mut buf[..take], at)?;
            writer.write_all(&buf[..take])?;
            at += take as u64;
            remaining -= take as u64;
        }
        Ok(())
    }

    /// Loads this shard fully into an in-memory arena, **byte-identical**
    /// to the arena the shard file serializes: same entry order (ascending
    /// offset), same ciphertext bytes, same offset table.
    pub(crate) fn to_memory(&self) -> Result<EncryptedIndex, StorageError> {
        let inner = &*self.inner;
        let mut region = vec![0u8; inner.region_len as usize];
        read_exact_at(&inner.file, &mut region, inner.region_offset)
            .map_err(|e| io_err(&inner.path, e))?;
        let entries = self.entries_by_offset();
        let mut index = EncryptedIndex::with_capacity(entries.len(), region.len());
        for (label, offset, len) in entries {
            index.append_entry(
                label,
                &region[offset as usize..(offset as usize + len as usize)],
            );
        }
        Ok(index)
    }
}

impl ShardStorage for FileShard {
    fn try_get(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, StorageError> {
        match self.inner.table.get(label) {
            Some(&(offset, len)) => self.span(offset, len).map(Some),
            None => Ok(None),
        }
    }

    fn len(&self) -> usize {
        self.inner.table.len()
    }

    fn storage_bytes(&self) -> usize {
        self.inner.table.len() * LABEL_LEN + self.inner.region_len as usize
    }
}

// ---------------------------------------------------------------------------
// Serialization helpers
// ---------------------------------------------------------------------------

/// Writes the fixed 32-byte shard-file header.
pub(crate) fn write_shard_header<W: Write>(
    writer: &mut W,
    entries: u64,
    region_len: u64,
) -> io::Result<()> {
    writer.write_all(&SHARD_MAGIC)?;
    writer.write_all(&FORMAT_VERSION.to_le_bytes())?;
    writer.write_all(&0u32.to_le_bytes())?;
    writer.write_all(&entries.to_le_bytes())?;
    writer.write_all(&region_len.to_le_bytes())
}

/// Writes the label directory; offsets are the running sum of the lengths,
/// which is exactly the arena layout (spans tile the region).
fn write_shard_directory<W: Write>(
    writer: &mut W,
    entries: impl Iterator<Item = (Label, u32)>,
) -> io::Result<()> {
    let mut running = 0u32;
    for (label, len) in entries {
        writer.write_all(&label)?;
        writer.write_all(&running.to_le_bytes())?;
        writer.write_all(&len.to_le_bytes())?;
        running += len;
    }
    Ok(())
}

/// The scratch name `path` is written under before the atomic rename.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `path` atomically: content goes to a `.tmp` sibling first and is
/// renamed over the target only once fully flushed. This makes re-saving
/// an index into the directory it is currently being served from safe —
/// open `FileShard` handles keep reading the old inode while the new file
/// is written, so the serializer's own read-back never sees a truncated
/// file — and a failed write can never destroy an existing good file.
pub(crate) fn write_file_atomic(
    path: &Path,
    write: impl FnOnce(&mut BufWriter<File>) -> io::Result<()>,
) -> Result<(), StorageError> {
    let tmp = tmp_path(path);
    let file = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    let mut writer = BufWriter::new(file);
    match write(&mut writer).and_then(|()| writer.flush()) {
        Ok(()) => fs::rename(&tmp, path).map_err(|e| io_err(path, e)),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(io_err(path, e))
        }
    }
}

/// Atomic whole-buffer variant of [`write_file_atomic`] for small metadata
/// files.
///
/// (Internal to the workspace: the schemes' sidecar files — Constant's
/// depth meta, PB's filter tree — use it so every serialized file in an
/// index directory follows the same tmp+rename discipline and a failed
/// re-save can never destroy an existing good file.)
#[doc(hidden)]
pub fn write_file_atomic_bytes(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    write_file_atomic(path, |writer| writer.write_all(bytes))
}

/// Serializes one in-memory shard into `path` (directory sorted by offset,
/// region = raw arena bytes).
fn write_memory_shard(path: &Path, shard: &EncryptedIndex) -> Result<(), StorageError> {
    let entries = shard.entries_by_offset();
    write_file_atomic(path, |writer| {
        write_shard_header(writer, entries.len() as u64, shard.arena_raw().len() as u64)?;
        write_shard_directory(writer, entries.iter().map(|&(label, _, len)| (label, len)))?;
        writer.write_all(shard.arena_raw())
    })
}

/// Serializes a file-backed shard into `path` (which may be the very file
/// the shard is served from — see [`write_file_atomic`]).
fn write_file_shard(path: &Path, shard: &FileShard) -> Result<(), StorageError> {
    write_file_atomic(path, |writer| shard.write_to(writer))
}

/// Streams one shard's serialized file directly from the per-keyword build
/// chunks — the on-disk BuildIndex path: no intermediate arena is ever
/// materialized, and the bytes written are exactly what `save_to_dir` of
/// the equivalent in-memory shard would produce (same entry order, offsets
/// as the running length sum).
pub(crate) fn write_chunk_shard(
    path: &Path,
    chunks: &[KeywordChunk],
    members: &[(u32, u32)],
    region_len: usize,
) -> Result<(), StorageError> {
    assert!(
        region_len <= u32::MAX as usize,
        "arena limited to 4 GiB per index; shard the dataset first"
    );
    write_file_atomic(path, |writer| {
        write_shard_header(writer, members.len() as u64, region_len as u64)?;
        write_shard_directory(
            writer,
            members.iter().map(|&(c, e)| {
                let chunk = &chunks[c as usize];
                (chunk.labels[e as usize], chunk.spans[e as usize].1)
            }),
        )?;
        for &(c, e) in members {
            let chunk = &chunks[c as usize];
            let (offset, len) = chunk.spans[e as usize];
            writer.write_all(&chunk.buf[offset as usize..(offset + len) as usize])?;
        }
        Ok(())
    })
}

/// Structurally merges already-encrypted shard files into one shard file
/// at `path`: the inputs' ciphertext regions are concatenated **verbatim**
/// in input order, and the offset-sorted label directory is re-emitted
/// with every offset rebased by the running region sum — the merged spans
/// tile the merged region by construction. No ciphertext byte is
/// decrypted or re-encrypted on this path; the inputs' bytes are streamed
/// straight through.
///
/// Returns [`StorageError::Unsupported`] — the caller's signal to fall
/// back to a rebuild — if the merged region would exceed the 4 GiB
/// per-shard bound, or if two inputs store the same 16-byte label (only
/// possible by PRF-output collision across independently keyed parts, so
/// astronomically rare; a rebuild handles it correctly).
pub(crate) fn merge_shard_files(inputs: &[FileShard], path: &Path) -> Result<(), StorageError> {
    let total_entries: u64 = inputs.iter().map(|s| ShardStorage::len(s) as u64).sum();
    let total_region: u64 = inputs.iter().map(|s| u64::from(s.region_len())).sum();
    if total_region > u64::from(u32::MAX) {
        return Err(StorageError::Unsupported(
            "structural shard merge past the 4 GiB region bound",
        ));
    }
    let mut seen =
        LabelTable::with_capacity_and_hasher(total_entries as usize, BuildHasherDefault::default());
    for shard in inputs {
        for label in shard.labels() {
            if seen.insert(*label, (0, 0)).is_some() {
                return Err(StorageError::Unsupported(
                    "structural shard merge with a cross-part label collision",
                ));
            }
        }
    }
    write_file_atomic(path, |writer| {
        write_shard_header(writer, total_entries, total_region)?;
        write_shard_directory(
            writer,
            inputs.iter().flat_map(|shard| {
                shard
                    .entries_by_offset()
                    .into_iter()
                    .map(|(label, _, len)| (label, len))
            }),
        )?;
        for shard in inputs {
            shard.stream_region_to(writer)?;
        }
        Ok(())
    })
}

/// Best-effort removal of the files a failed on-disk build wrote — the
/// manifest and every shard file — followed by the directory itself *only
/// if that leaves it empty*. Never recursive: the target directory may
/// have pre-existed with unrelated content that must survive.
/// (Internal to the workspace: multi-artifact scheme builds — SRC-i's two
/// indexes, Constant's depth sidecar — reuse it to unwind their own
/// partial failures.)
#[doc(hidden)]
pub fn cleanup_partial_index(dir: &Path, shard_count: usize) {
    let manifest = dir.join(MANIFEST_FILE);
    let _ = fs::remove_file(tmp_path(&manifest));
    let _ = fs::remove_file(manifest);
    for i in 0..shard_count {
        let shard = dir.join(shard_file_name(i));
        let _ = fs::remove_file(tmp_path(&shard));
        let _ = fs::remove_file(shard);
    }
    // An interrupted external-memory build may also have left a spill
    // directory behind; sweep its recognized files the same way (foreign
    // files are never touched, so the remove_dir below only succeeds once
    // everything left in `dir` is ours).
    crate::external::sweep_spill_dir(&dir.join(crate::external::SPILL_DIR));
    let _ = fs::remove_dir(dir);
}

/// Writes the index manifest (`index.meta`).
pub(crate) fn write_manifest(dir: &Path, shard_bits: u32) -> Result<(), StorageError> {
    let path = dir.join(MANIFEST_FILE);
    let mut bytes = Vec::with_capacity(MANIFEST_LEN as usize);
    bytes.extend_from_slice(&MANIFEST_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&shard_bits.to_le_bytes());
    bytes.extend_from_slice(&(1u64 << shard_bits).to_le_bytes());
    write_file_atomic(&path, |writer| writer.write_all(&bytes))
}

/// Reads and validates the index manifest, returning the shard bits.
pub(crate) fn read_manifest(dir: &Path) -> Result<u32, StorageError> {
    let path = dir.join(MANIFEST_FILE);
    let mut file = File::open(&path).map_err(|e| io_err(&path, e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(|e| io_err(&path, e))?;
    check_header(&path, &bytes, &MANIFEST_MAGIC, MANIFEST_LEN)?;
    if bytes.len() as u64 != MANIFEST_LEN {
        return Err(StorageError::CorruptDirectory {
            path,
            detail: format!(
                "{} trailing bytes after the manifest fields",
                bytes.len() as u64 - MANIFEST_LEN
            ),
        });
    }
    let shard_bits = read_u32(&bytes[12..]);
    let shard_count = read_u64(&bytes[16..]);
    if shard_bits > crate::sharded::MAX_SHARD_BITS || shard_count != 1u64 << shard_bits {
        return Err(StorageError::CorruptDirectory {
            path,
            detail: format!("manifest claims {shard_count} shards at {shard_bits} shard bits"),
        });
    }
    Ok(shard_bits)
}

/// Serializes every shard of `shards` (plus the manifest) into `dir`,
/// creating it if needed. Shard files are written in parallel.
///
/// A **first** save into a directory writes the files directly (each one
/// tmp+renamed, manifest last — there is no old index a crash could mix
/// with). A **re-save over an existing index** is directory-level atomic:
/// everything is written into a fresh staging directory which is then
/// renamed into place, so a crash at any point leaves either the complete
/// old snapshot or the complete new one — never a cleanly-opening mix of
/// old and new same-shard-count files (see [`staged_resave`]).
pub(crate) fn save_shards_to_dir(
    dir: &Path,
    shard_bits: u32,
    shards: &[crate::sharded::Shard],
) -> Result<(), StorageError> {
    recover_displaced_snapshot(dir);
    if dir.join(MANIFEST_FILE).exists() {
        return staged_resave(dir, shard_bits, shards);
    }
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    write_shard_files(dir, shard_bits, shards)?;
    remove_stale_shard_files(dir, shards.len());
    Ok(())
}

/// Completes the rollback of a re-save commit that died between its two
/// renames: if `dir` is missing but a complete old snapshot is parked at
/// `<dir>.old`, restore it. Called by both the open and the save path, so
/// the crash window between "old parked" and "staging renamed in" heals
/// at the next access instead of requiring operator surgery.
pub(crate) fn recover_displaced_snapshot(dir: &Path) {
    if dir.exists() {
        return;
    }
    let displaced = displaced_path(dir);
    if displaced.join(MANIFEST_FILE).exists() {
        let _ = fs::rename(&displaced, dir);
    }
}

/// Writes every shard file (in parallel) and then the manifest into `dir`.
/// The manifest is written LAST: it is the commit record of a save into a
/// fresh directory.
fn write_shard_files(
    dir: &Path,
    shard_bits: u32,
    shards: &[crate::sharded::Shard],
) -> Result<(), StorageError> {
    let jobs: Vec<(usize, &crate::sharded::Shard)> = shards.iter().enumerate().collect();
    let results: Vec<Result<(), StorageError>> = jobs
        .into_par_iter()
        .map(|(i, shard)| {
            let path = dir.join(shard_file_name(i));
            match shard.unwrap_faults() {
                crate::sharded::Shard::Memory(index) => write_memory_shard(&path, index),
                crate::sharded::Shard::File(file) => write_file_shard(&path, file),
                crate::sharded::Shard::Fault(_) => {
                    unreachable!("unwrap_faults removes fault wrappers")
                }
            }
        })
        .collect();
    results.into_iter().collect::<Result<(), StorageError>>()?;
    write_manifest(dir, shard_bits)
}

/// The staging sibling a re-save writes into before committing.
fn staging_path(dir: &Path) -> PathBuf {
    let mut name = dir.file_name().unwrap_or_default().to_os_string();
    name.push(".staging");
    dir.with_file_name(name)
}

/// The sibling the old snapshot is parked at during the commit swap.
fn displaced_path(dir: &Path) -> PathBuf {
    let mut name = dir.file_name().unwrap_or_default().to_os_string();
    name.push(".old");
    dir.with_file_name(name)
}

/// Removes a leftover `<dir>.staging` / `<dir>.old` scratch directory from
/// a previously crashed save — but only if it plausibly *is* one: empty,
/// or containing at least one index file (manifest or shard file; a
/// crashed staging always does, since sidecar copies happen after the
/// shard writes). Anything else at the scratch path is foreign data and
/// aborts the save with a typed error instead of being deleted.
fn clear_save_leftover(path: &Path) -> Result<(), StorageError> {
    let Ok(metadata) = fs::symlink_metadata(path) else {
        return Ok(()); // nothing there
    };
    let refuse = |detail: String| {
        Err(StorageError::CorruptDirectory {
            path: path.to_path_buf(),
            detail,
        })
    };
    if !metadata.is_dir() {
        return refuse(
            "the save's scratch path is occupied by a non-directory; move it away".to_string(),
        );
    }
    let entries = fs::read_dir(path).map_err(|e| io_err(path, e))?;
    let mut saw_entry = false;
    let mut saw_index_file = false;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(path, e))?;
        saw_entry = true;
        if entry.file_name().to_str().is_some_and(is_index_file) {
            saw_index_file = true;
            break;
        }
    }
    if saw_entry && !saw_index_file {
        return refuse(
            "the save's scratch path holds a directory with no index files — not a \
             crashed save's leftover; refusing to delete it"
                .to_string(),
        );
    }
    fs::remove_dir_all(path).map_err(|e| io_err(path, e))
}

/// Whether `name` is one of the files a save itself writes (shard files,
/// the manifest, or their tmp scratch siblings) — as opposed to scheme
/// sidecars like `constant.meta` that must survive a re-save.
fn is_index_file(name: &str) -> bool {
    if name == MANIFEST_FILE || name == "index.meta.tmp" {
        return true;
    }
    let stem = name
        .strip_suffix(".shd.tmp")
        .or_else(|| name.strip_suffix(".shd"));
    matches!(stem.and_then(|s| s.strip_prefix("shard-")), Some(digits) if digits.chars().all(|c| c.is_ascii_digit()))
}

/// Directory-level atomic re-save: the whole new snapshot (shard files,
/// manifest, and copies of any non-index sidecar files such as
/// `constant.meta`) is written into a `<dir>.staging` sibling, then
/// committed by renaming it into place — the old directory is moved aside
/// first and removed after. A crash while staging leaves the old snapshot
/// untouched (stale staging directories are cleaned up at the next save);
/// a crash after the commit rename leaves the complete new snapshot. At no
/// point does `dir` hold a mix of old and new files.
fn staged_resave(
    dir: &Path,
    shard_bits: u32,
    shards: &[crate::sharded::Shard],
) -> Result<(), StorageError> {
    let staging = staging_path(dir);
    let displaced = displaced_path(dir);
    // Clean up leftovers of a previous crashed save — refusing, with a
    // typed error, to delete sibling directories that were clearly not
    // produced by a save (a user's unrelated data at `<dir>.staging` or
    // `<dir>.old` must never be silently destroyed).
    clear_save_leftover(&staging)?;
    clear_save_leftover(&displaced)?;
    fs::create_dir_all(&staging).map_err(|e| io_err(&staging, e))?;
    let staged = (|| {
        write_shard_files(&staging, shard_bits, shards)?;
        // Preserve everything the save itself does not own (scheme
        // sidecars, user files) so the committed directory is a strict
        // replacement of the index files only.
        let entries = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            let name = entry.file_name();
            let is_sidecar = name
                .to_str()
                .map(|name| !is_index_file(name))
                .unwrap_or(true);
            if is_sidecar && entry.path().is_file() {
                fs::copy(entry.path(), staging.join(&name))
                    .map_err(|e| io_err(&entry.path(), e))?;
            }
        }
        Ok(())
    })();
    if let Err(error) = staged {
        let _ = fs::remove_dir_all(&staging);
        return Err(error);
    }
    // Commit: park the old snapshot, rename the staging directory into
    // place, then drop the old one. Open file handles into the old
    // snapshot keep reading their (now unlinked) inodes.
    fs::rename(dir, &displaced).map_err(|e| io_err(dir, e))?;
    if let Err(error) = fs::rename(&staging, dir) {
        // Roll the old snapshot back so the target never stays missing.
        let _ = fs::rename(&displaced, dir);
        let _ = fs::remove_dir_all(&staging);
        return Err(io_err(dir, error));
    }
    let _ = fs::remove_dir_all(&displaced);
    Ok(())
}

/// Removes leftover `shard-NNNNN.shd` files (and their `.tmp` scratch
/// siblings) with indices past the just-saved shard count — stale remnants
/// of a previous, more-sharded index saved into the same directory, which
/// would otherwise linger next to the new files. Best effort: a file that
/// cannot be removed never affects correctness (`open_dir` is
/// manifest-driven), only directory hygiene.
fn remove_stale_shard_files(dir: &Path, shard_count: usize) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stem = name
            .strip_suffix(".shd.tmp")
            .or_else(|| name.strip_suffix(".shd"));
        let Some(index) = stem
            .and_then(|stem| stem.strip_prefix("shard-"))
            .and_then(|digits| digits.parse::<usize>().ok())
        else {
            continue;
        };
        if index >= shard_count {
            let _ = fs::remove_file(entry.path());
        }
    }
}

/// Opens every shard file under `dir` (in parallel) after validating the
/// manifest. With a cache budget, all shards share one index-wide
/// [`BlockCache`] bounding their resident region blocks.
pub(crate) fn open_shards_from_dir(
    dir: &Path,
    cache_budget: Option<usize>,
) -> Result<(u32, Vec<FileShard>), StorageError> {
    recover_displaced_snapshot(dir);
    let shard_bits = read_manifest(dir)?;
    let shard_count = 1usize << shard_bits;
    let cache = cache_budget.map(|budget| Arc::new(BlockCache::new(budget)));
    let indices: Vec<usize> = (0..shard_count).collect();
    let results: Vec<Result<FileShard, StorageError>> = indices
        .into_par_iter()
        .map(|i| {
            let path = dir.join(shard_file_name(i));
            let shard = match &cache {
                Some(cache) => FileShard::open_cached(&path, i as u32, Arc::clone(cache))?,
                None => FileShard::open(&path)?,
            };
            // Label-prefix routing check: every label in shard i must carry
            // prefix i at the manifest's shard-bit width, or probes routed
            // by shard_of(label) would silently miss. This rejects swapped
            // or foreign shard files — individually valid, collectively
            // wrong — with a typed error instead of empty query results.
            if shard_bits > 0 {
                for label in shard.inner.table.keys() {
                    let prefix =
                        u64::from_be_bytes(label[..8].try_into().expect("labels are 16 bytes"))
                            >> (64 - shard_bits);
                    if prefix != i as u64 {
                        return Err(StorageError::CorruptDirectory {
                            path,
                            detail: format!(
                                "label with shard prefix {prefix} stored in shard {i} \
                                 (at {shard_bits} shard bits) — shard files swapped or \
                                 from a different index layout"
                            ),
                        });
                    }
                }
            }
            Ok(shard)
        })
        .collect();
    let shards = results
        .into_iter()
        .collect::<Result<Vec<FileShard>, StorageError>>()?;
    Ok((shard_bits, shards))
}

// ---------------------------------------------------------------------------
// Update-manager owner state: `manager.meta` + per-instance `owner.meta`
// ---------------------------------------------------------------------------

/// Magic bytes opening the update manager's root manifest (`manager.meta`).
pub const MANAGER_MANIFEST_MAGIC: [u8; 8] = *b"RSSE-MGR";

/// File name of the update manager's root manifest inside a storage root.
pub const MANAGER_MANIFEST_FILE: &str = "manager.meta";

/// Magic bytes opening a per-instance owner sidecar (`owner.meta`).
pub const OWNER_META_MAGIC: [u8; 8] = *b"RSSE-OWN";

/// File name of the per-instance owner sidecar inside an instance directory.
pub const OWNER_META_FILE: &str = "owner.meta";

/// Fixed `manager.meta` header length (magic + version + scheme-name
/// length), before the variable-length fields.
const MANAGER_HEADER_LEN: u64 = 16;

/// Fixed `owner.meta` length before the encrypted payload.
const OWNER_META_HEADER_LEN: u64 = 40;

/// One active instance as recorded in the update manager's root manifest:
/// public bookkeeping only (counts and names) — the owner's secrets (the
/// build seed and the plaintext update log) live in the instance's
/// encrypted [`OwnerMeta`] sidecar, never in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestInstance {
    /// Monotonic build number naming the instance directory
    /// (`instance-{build_id:08}`).
    pub build_id: u64,
    /// The instance's sequence number (largest = newest; a merged instance
    /// reuses the newest sequence number of its inputs).
    pub seq: u64,
    /// Number of update entries the instance indexes.
    pub entry_count: u64,
    /// Number of insert operations among the entries.
    pub inserts: u64,
    /// Number of modify operations among the entries.
    pub modifies: u64,
    /// Number of delete operations (tombstones) among the entries.
    pub deletes: u64,
}

/// The update manager's durable root manifest (`manager.meta`): everything
/// the owner needs — besides the master key and the per-instance
/// [`OwnerMeta`] sidecars — to reopen a whole `UpdateManager` from its
/// storage root after a crash or restart.
///
/// The manifest is deliberately **public data**: scheme kind and
/// parameters, counters, and the level table with per-instance sequence
/// numbers and operation counts. It is written through the same
/// tmp+rename atomic-write machinery as every other metadata file, and
/// always *after* the instance directories it references are durably
/// committed, so a crash between an index commit and the manifest commit
/// leaves a manifest describing the previous consistent state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManagerManifest {
    /// `RangeScheme::NAME` of the scheme the manager is instantiated with;
    /// reopening with a different scheme is rejected typed.
    pub scheme: String,
    /// Size of the attribute domain shared by all batches.
    pub domain_size: u64,
    /// The consolidation step `s` the manager was configured with.
    pub consolidation_step: u64,
    /// Label-prefix shard bits of every index the manager builds.
    pub shard_bits: u32,
    /// Block-cache budget for persisted instances (`None` = unbounded).
    pub cache_budget: Option<u64>,
    /// Next batch sequence number.
    pub next_seq: u64,
    /// Next instance-directory build number.
    pub next_build: u64,
    /// Raw batches ingested so far.
    pub batches_ingested: u64,
    /// Consolidation operations performed so far (always the sum of the
    /// two strategy counters below).
    pub consolidations: u64,
    /// Consolidations realized as structural merges: ciphertext copied
    /// verbatim from the input instances, no re-encryption.
    pub structural_consolidations: u64,
    /// Consolidations realized as full rebuilds (the reference path every
    /// scheme supports).
    pub rebuild_consolidations: u64,
    /// The level table: `levels[l]` lists the active instances at height
    /// `l` of the merge hierarchy, in insertion (ascending-seq) order.
    pub levels: Vec<Vec<ManifestInstance>>,
}

impl ManagerManifest {
    /// The directory name of an instance with this build number
    /// (`instance-{build_id:08}`, zero-padded so names sort by build).
    pub fn instance_dir_name(build_id: u64) -> String {
        format!("instance-{build_id:08}")
    }

    /// Parses an instance directory name back into its build number
    /// (`None` for anything that is not exactly `instance-NNNNNNNN`).
    pub fn parse_instance_dir_name(name: &str) -> Option<u64> {
        let digits = name.strip_prefix("instance-")?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }

    /// Serializes the manifest into its on-disk byte layout (see
    /// `docs/FORMATS.md` for the byte-by-byte specification).
    fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(128 + self.levels.len() * 64);
        bytes.extend_from_slice(&MANAGER_MANIFEST_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(self.scheme.len() as u32).to_le_bytes());
        bytes.extend_from_slice(self.scheme.as_bytes());
        bytes.extend_from_slice(&self.domain_size.to_le_bytes());
        bytes.extend_from_slice(&self.consolidation_step.to_le_bytes());
        bytes.extend_from_slice(&self.shard_bits.to_le_bytes());
        bytes.extend_from_slice(&u32::from(self.cache_budget.is_some()).to_le_bytes());
        bytes.extend_from_slice(&self.cache_budget.unwrap_or(0).to_le_bytes());
        bytes.extend_from_slice(&self.next_seq.to_le_bytes());
        bytes.extend_from_slice(&self.next_build.to_le_bytes());
        bytes.extend_from_slice(&self.batches_ingested.to_le_bytes());
        bytes.extend_from_slice(&self.consolidations.to_le_bytes());
        bytes.extend_from_slice(&self.structural_consolidations.to_le_bytes());
        bytes.extend_from_slice(&self.rebuild_consolidations.to_le_bytes());
        bytes.extend_from_slice(&(self.levels.len() as u32).to_le_bytes());
        for level in &self.levels {
            bytes.extend_from_slice(&(level.len() as u32).to_le_bytes());
            for instance in level {
                bytes.extend_from_slice(&instance.build_id.to_le_bytes());
                bytes.extend_from_slice(&instance.seq.to_le_bytes());
                bytes.extend_from_slice(&instance.entry_count.to_le_bytes());
                bytes.extend_from_slice(&instance.inserts.to_le_bytes());
                bytes.extend_from_slice(&instance.modifies.to_le_bytes());
                bytes.extend_from_slice(&instance.deletes.to_le_bytes());
            }
        }
        bytes
    }
}

/// A bounds-checked little-endian cursor over a metadata file's bytes:
/// every read that would run past the end surfaces the standard
/// [`StorageError::Truncated`] instead of panicking.
struct MetaReader<'a> {
    path: &'a Path,
    bytes: &'a [u8],
    at: usize,
}

impl<'a> MetaReader<'a> {
    fn new(path: &'a Path, bytes: &'a [u8], at: usize) -> Self {
        Self { path, bytes, at }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], StorageError> {
        let end = self.at.checked_add(len).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.at..end];
                self.at = end;
                Ok(slice)
            }
            None => Err(StorageError::Truncated {
                path: self.path.to_path_buf(),
                expected: (self.at as u64).saturating_add(len as u64),
                actual: self.bytes.len() as u64,
            }),
        }
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        self.take(4).map(read_u32)
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        self.take(8).map(read_u64)
    }

    /// Remaining unread bytes (for exact-length trailing checks).
    fn remaining(&self) -> u64 {
        (self.bytes.len() - self.at) as u64
    }
}

/// Writes the update manager's root manifest into `root/manager.meta`
/// atomically (tmp + rename): a crash mid-write leaves the previous
/// manifest byte-identical.
pub fn write_manager_manifest(root: &Path, manifest: &ManagerManifest) -> Result<(), StorageError> {
    write_file_atomic_bytes(&root.join(MANAGER_MANIFEST_FILE), &manifest.to_bytes())
}

/// Reads and validates `root/manager.meta`.
///
/// # Errors
///
/// Every malformed input surfaces as a typed [`StorageError`]: a missing
/// file as [`Io`](StorageError::Io), foreign content as
/// [`BadMagic`](StorageError::BadMagic), an unknown format as
/// [`UnsupportedVersion`](StorageError::UnsupportedVersion), a short file
/// as [`Truncated`](StorageError::Truncated), and internal inconsistencies
/// (non-UTF-8 scheme name, oversized tables, trailing bytes) as
/// [`CorruptDirectory`](StorageError::CorruptDirectory).
pub fn read_manager_manifest(root: &Path) -> Result<ManagerManifest, StorageError> {
    let path = root.join(MANAGER_MANIFEST_FILE);
    let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
    check_header(&path, &bytes, &MANAGER_MANIFEST_MAGIC, MANAGER_HEADER_LEN)?;
    let corrupt = |detail: String| StorageError::CorruptDirectory {
        path: path.clone(),
        detail,
    };
    let mut reader = MetaReader::new(&path, &bytes, 12);
    let name_len = reader.u32()? as usize;
    if name_len > 256 {
        return Err(corrupt(format!(
            "scheme name length {name_len} exceeds the 256-byte bound"
        )));
    }
    let scheme = std::str::from_utf8(reader.take(name_len)?)
        .map_err(|_| corrupt("scheme name is not UTF-8".to_string()))?
        .to_string();
    let domain_size = reader.u64()?;
    let consolidation_step = reader.u64()?;
    let shard_bits = reader.u32()?;
    if shard_bits > crate::sharded::MAX_SHARD_BITS {
        return Err(corrupt(format!(
            "manifest claims {shard_bits} shard bits (max {})",
            crate::sharded::MAX_SHARD_BITS
        )));
    }
    let budget_flag = reader.u32()?;
    if budget_flag > 1 {
        return Err(corrupt(format!("invalid cache-budget flag {budget_flag}")));
    }
    let budget_value = reader.u64()?;
    let cache_budget = (budget_flag == 1).then_some(budget_value);
    let next_seq = reader.u64()?;
    let next_build = reader.u64()?;
    let batches_ingested = reader.u64()?;
    let consolidations = reader.u64()?;
    let structural_consolidations = reader.u64()?;
    let rebuild_consolidations = reader.u64()?;
    if structural_consolidations.checked_add(rebuild_consolidations) != Some(consolidations) {
        return Err(corrupt(format!(
            "strategy counters ({structural_consolidations} structural + \
             {rebuild_consolidations} rebuild) do not sum to {consolidations} consolidations"
        )));
    }
    let level_count = reader.u32()? as usize;
    if level_count > 64 {
        return Err(corrupt(format!(
            "manifest claims {level_count} merge levels (max 64)"
        )));
    }
    let mut levels = Vec::with_capacity(level_count);
    for level in 0..level_count {
        let instance_count = reader.u32()? as usize;
        if instance_count as u64 > next_build {
            return Err(corrupt(format!(
                "level {level} claims {instance_count} instances but only \
                 {next_build} builds ever ran"
            )));
        }
        // Cap the pre-allocation: `instance_count` is untrusted input (its
        // only bound above comes from the same file), so an absurd count
        // must run the reads dry into a typed Truncated error, not abort
        // the process reserving gigabytes first.
        let mut instances = Vec::with_capacity(instance_count.min(1024));
        for _ in 0..instance_count {
            let instance = ManifestInstance {
                build_id: reader.u64()?,
                seq: reader.u64()?,
                entry_count: reader.u64()?,
                inserts: reader.u64()?,
                modifies: reader.u64()?,
                deletes: reader.u64()?,
            };
            let op_sum = instance
                .inserts
                .checked_add(instance.modifies)
                .and_then(|sum| sum.checked_add(instance.deletes));
            if op_sum != Some(instance.entry_count) {
                return Err(corrupt(format!(
                    "instance {} op counts do not sum to its {} entries",
                    instance.build_id, instance.entry_count
                )));
            }
            instances.push(instance);
        }
        levels.push(instances);
    }
    if reader.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after the level table",
            reader.remaining()
        )));
    }
    Ok(ManagerManifest {
        scheme,
        domain_size,
        consolidation_step,
        shard_bits,
        cache_budget,
        next_seq,
        next_build,
        batches_ingested,
        consolidations,
        structural_consolidations,
        rebuild_consolidations,
        levels,
    })
}

/// The owner-side sidecar of one persisted update-manager instance
/// (`<instance dir>/owner.meta`): the public identity of the instance plus
/// an opaque `payload` — the build seed and plaintext update log,
/// encrypted and authenticated by the `rsse-updates` crate under the
/// owner's master key. This layer only frames the bytes; it never sees
/// the plaintext.
///
/// The sidecar is written **last** during an instance build, so its
/// presence is the instance's durable commit record: a directory without
/// a readable `owner.meta` is a half-built instance and is swept by the
/// manager's reopen path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnerMeta {
    /// Build number of the instance (must match the directory name).
    pub build_id: u64,
    /// The instance's sequence number.
    pub seq: u64,
    /// Height of the instance in the merge hierarchy (0 = raw batch).
    pub level: u32,
    /// Encrypted, authenticated owner payload (opaque at this layer).
    pub payload: Vec<u8>,
}

/// Writes an instance's owner sidecar into `dir/owner.meta` atomically.
pub fn write_owner_meta(dir: &Path, meta: &OwnerMeta) -> Result<(), StorageError> {
    let mut bytes = Vec::with_capacity(OWNER_META_HEADER_LEN as usize + meta.payload.len());
    bytes.extend_from_slice(&OWNER_META_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&meta.level.to_le_bytes());
    bytes.extend_from_slice(&meta.build_id.to_le_bytes());
    bytes.extend_from_slice(&meta.seq.to_le_bytes());
    bytes.extend_from_slice(&(meta.payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&meta.payload);
    write_file_atomic_bytes(&dir.join(OWNER_META_FILE), &bytes)
}

/// Reads and validates an instance's owner sidecar from `dir/owner.meta`,
/// surfacing every malformed input as a typed [`StorageError`] (see
/// [`read_manager_manifest`] for the error taxonomy).
pub fn read_owner_meta(dir: &Path) -> Result<OwnerMeta, StorageError> {
    let path = dir.join(OWNER_META_FILE);
    let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
    check_header(&path, &bytes, &OWNER_META_MAGIC, OWNER_META_HEADER_LEN)?;
    let mut reader = MetaReader::new(&path, &bytes, 12);
    let level = reader.u32()?;
    let build_id = reader.u64()?;
    let seq = reader.u64()?;
    let payload_len = reader.u64()?;
    if payload_len != reader.remaining() {
        return Err(StorageError::CorruptDirectory {
            path: path.clone(),
            detail: format!(
                "payload length field says {payload_len} bytes, file holds {}",
                reader.remaining()
            ),
        });
    }
    let payload = reader.take(payload_len as usize)?.to_vec();
    Ok(OwnerMeta {
        build_id,
        seq,
        level,
        payload,
    })
}

pub mod test_support {
    //! Unique scratch directories for persistence tests.
    //!
    //! Not part of the crate's API contract — exposed (`#[doc(hidden)]` at
    //! the re-export) so the downstream crates' persistence tests share one
    //! helper instead of three copies.

    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A unique scratch directory under the system temp dir, removed on
    /// drop (best effort).
    pub struct TempDir(PathBuf);

    impl TempDir {
        /// Creates a fresh directory tagged with `tag`.
        pub fn new(tag: &str) -> Self {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("rsse-test-{}-{tag}-{n}", std::process::id()));
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }

        /// The directory path.
        pub fn path(&self) -> &Path {
            &self.0
        }

        /// Number of entries directly under the directory (0 if unreadable).
        pub fn subdir_count(&self) -> usize {
            std::fs::read_dir(&self.0).map(|it| it.count()).unwrap_or(0)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::TempDir;
    use super::*;
    use crate::database::SseDatabase;
    use crate::pibas::SseScheme;
    use crate::sharded::ShardedIndex;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    /// Builds a small saved index directory and returns (tempdir, shard-0
    /// file path, valid shard-0 bytes).
    fn saved_index(bits: u32) -> (TempDir, PathBuf, Vec<u8>) {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let key = SseScheme::setup(&mut rng);
        let mut db = SseDatabase::new();
        for i in 0..32u64 {
            db.add(
                format!("kw{}", i % 4).into_bytes(),
                i.to_le_bytes().to_vec(),
            );
        }
        let index = SseScheme::build_index_sharded(&key, &db, bits, &mut rng);
        let dir = TempDir::new("robust");
        index.save_to_dir(dir.path()).unwrap();
        let shard0 = dir.path().join(shard_file_name(0));
        let bytes = fs::read(&shard0).unwrap();
        (dir, shard0, bytes)
    }

    #[test]
    fn open_rejects_header_truncated_file() {
        let (_dir, shard0, bytes) = saved_index(0);
        fs::write(&shard0, &bytes[..16]).unwrap();
        match FileShard::open(&shard0) {
            Err(StorageError::Truncated {
                expected, actual, ..
            }) => {
                assert_eq!(expected, 32);
                assert_eq!(actual, 16);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_body_truncated_file() {
        let (_dir, shard0, bytes) = saved_index(0);
        fs::write(&shard0, &bytes[..bytes.len() - 7]).unwrap();
        match FileShard::open(&shard0) {
            Err(StorageError::Truncated {
                expected, actual, ..
            }) => {
                assert_eq!(expected, bytes.len() as u64);
                assert_eq!(actual, bytes.len() as u64 - 7);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_bad_magic() {
        let (_dir, shard0, mut bytes) = saved_index(0);
        bytes[..8].copy_from_slice(b"NOTANIDX");
        fs::write(&shard0, &bytes).unwrap();
        match FileShard::open(&shard0) {
            Err(StorageError::BadMagic { found, .. }) => assert_eq!(&found, b"NOTANIDX"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_unsupported_version() {
        let (_dir, shard0, mut bytes) = saved_index(0);
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&shard0, &bytes).unwrap();
        match FileShard::open(&shard0) {
            Err(StorageError::UnsupportedVersion { version, .. }) => assert_eq!(version, 99),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_out_of_bounds_directory_span() {
        let (_dir, shard0, mut bytes) = saved_index(0);
        // Inflate the last directory entry's length so its span overruns
        // the region (the header's sizes are untouched, so the length
        // checks pass and the span check itself must fire).
        let entry_count = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let last_len_at = 32 + (entry_count - 1) * 24 + 20;
        let old_len = u32::from_le_bytes(bytes[last_len_at..last_len_at + 4].try_into().unwrap());
        bytes[last_len_at..last_len_at + 4].copy_from_slice(&(old_len + 1000).to_le_bytes());
        fs::write(&shard0, &bytes).unwrap();
        match FileShard::open(&shard0) {
            Err(StorageError::CorruptDirectory { detail, .. }) => {
                assert!(detail.contains("overruns"), "unexpected detail: {detail}")
            }
            other => panic!("expected CorruptDirectory, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_non_tiling_directory_offsets() {
        let (_dir, shard0, mut bytes) = saved_index(0);
        // Shift the second entry's offset forward: spans no longer tile.
        let offset_at = 32 + 24 + 16;
        let old = u32::from_le_bytes(bytes[offset_at..offset_at + 4].try_into().unwrap());
        bytes[offset_at..offset_at + 4].copy_from_slice(&(old + 1).to_le_bytes());
        fs::write(&shard0, &bytes).unwrap();
        match FileShard::open(&shard0) {
            Err(StorageError::CorruptDirectory { detail, .. }) => {
                assert!(detail.contains("tile"), "unexpected detail: {detail}")
            }
            other => panic!("expected CorruptDirectory, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_trailing_bytes() {
        let (_dir, shard0, mut bytes) = saved_index(0);
        bytes.extend_from_slice(b"junk");
        fs::write(&shard0, &bytes).unwrap();
        match FileShard::open(&shard0) {
            Err(StorageError::CorruptDirectory { detail, .. }) => {
                assert!(detail.contains("trailing"), "unexpected detail: {detail}")
            }
            other => panic!("expected CorruptDirectory, got {other:?}"),
        }
    }

    #[test]
    fn open_dir_rejects_corrupt_manifest() {
        let (dir, _, _) = saved_index(2);
        let manifest = dir.path().join(MANIFEST_FILE);

        let valid = fs::read(&manifest).unwrap();
        fs::write(&manifest, &valid[..10]).unwrap();
        assert!(matches!(
            ShardedIndex::open_dir(dir.path()),
            Err(StorageError::Truncated { .. })
        ));

        let mut bad_magic = valid.clone();
        bad_magic[0] ^= 0xFF;
        fs::write(&manifest, &bad_magic).unwrap();
        assert!(matches!(
            ShardedIndex::open_dir(dir.path()),
            Err(StorageError::BadMagic { .. })
        ));

        let mut bad_version = valid.clone();
        bad_version[8..12].copy_from_slice(&7u32.to_le_bytes());
        fs::write(&manifest, &bad_version).unwrap();
        assert!(matches!(
            ShardedIndex::open_dir(dir.path()),
            Err(StorageError::UnsupportedVersion { version: 7, .. })
        ));

        let mut bad_count = valid.clone();
        bad_count[16..24].copy_from_slice(&3u64.to_le_bytes());
        fs::write(&manifest, &bad_count).unwrap();
        assert!(matches!(
            ShardedIndex::open_dir(dir.path()),
            Err(StorageError::CorruptDirectory { .. })
        ));
    }

    #[test]
    fn open_dir_rejects_swapped_shard_files() {
        // Each shard file is internally valid, but routing goes by label
        // prefix: swapping two files must be rejected typed, not opened
        // into an index that silently answers everything empty.
        let (dir, _, _) = saved_index(2);
        let a = dir.path().join(shard_file_name(0));
        let b = dir.path().join(shard_file_name(1));
        let tmp = dir.path().join("swap");
        fs::rename(&a, &tmp).unwrap();
        fs::rename(&b, &a).unwrap();
        fs::rename(&tmp, &b).unwrap();
        match ShardedIndex::open_dir(dir.path()) {
            Err(StorageError::CorruptDirectory { detail, .. }) => {
                assert!(detail.contains("prefix"), "unexpected detail: {detail}")
            }
            other => panic!("expected CorruptDirectory, got {other:?}"),
        }
    }

    #[test]
    fn open_dir_rejects_missing_shard_file() {
        let (dir, shard0, _) = saved_index(1);
        fs::remove_file(&shard0).unwrap();
        assert!(matches!(
            ShardedIndex::open_dir(dir.path()),
            Err(StorageError::Io { .. })
        ));
    }

    #[test]
    fn open_dir_rejects_missing_directory() {
        let missing = std::env::temp_dir().join("rsse-definitely-missing-index");
        assert!(matches!(
            ShardedIndex::open_dir(&missing),
            Err(StorageError::Io { .. })
        ));
    }

    #[test]
    fn errors_render_their_context() {
        let (dir, shard0, mut bytes) = saved_index(0);
        bytes[..8].copy_from_slice(b"XXXXXXXX");
        fs::write(&shard0, &bytes).unwrap();
        let err = ShardedIndex::open_dir(dir.path());
        // The manifest is fine, so the error comes from the shard file and
        // names it.
        let rendered = format!("{}", err.expect_err("must fail"));
        assert!(rendered.contains("shard-00000.shd"), "got: {rendered}");
    }

    #[test]
    fn failed_on_disk_build_cleans_up_its_files() {
        let dir = TempDir::new("partial-clean");
        // Occupy the shard file's path with a directory: the manifest write
        // succeeds, the shard write fails, and the cleanup must remove the
        // manifest again without touching the (pre-existing) occupant.
        let occupant = dir.path().join(shard_file_name(0));
        fs::create_dir_all(&occupant).unwrap();
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let key = SseScheme::setup(&mut rng);
        let mut db = SseDatabase::new();
        db.add(b"w".to_vec(), b"payload".to_vec());
        let err = SseScheme::build_index_stored(
            &key,
            &db,
            &StorageConfig::on_disk(0, dir.path()),
            &mut rng,
        )
        .expect_err("occupied shard path must fail");
        assert!(matches!(err, StorageError::Io { .. }));
        assert!(
            !dir.path().join(MANIFEST_FILE).exists(),
            "the half-written manifest must be cleaned up"
        );
        assert!(occupant.exists(), "pre-existing content must survive");
    }

    #[test]
    fn resaving_into_the_directory_being_served_is_safe() {
        // Regression: save_to_dir used to truncate each shard file before
        // the file-backed serializer read it back, destroying the index it
        // was serializing. The atomic tmp+rename write must keep in-place
        // re-saves byte-identical and the open handles valid throughout.
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let key = SseScheme::setup(&mut rng);
        let mut db = SseDatabase::new();
        for i in 0..32u64 {
            db.add(
                format!("kw{}", i % 4).into_bytes(),
                i.to_le_bytes().to_vec(),
            );
        }
        let index = SseScheme::build_index_sharded(&key, &db, 2, &mut rng);
        let dir = TempDir::new("inplace-resave");
        index.save_to_dir(dir.path()).unwrap();
        let before = fs::read(dir.path().join(shard_file_name(0))).unwrap();

        let reopened = ShardedIndex::open_dir(dir.path()).unwrap();
        reopened
            .save_to_dir(dir.path())
            .expect("re-saving into the serving directory must succeed");
        assert_eq!(
            fs::read(dir.path().join(shard_file_name(0))).unwrap(),
            before,
            "in-place re-save must be byte-identical"
        );
        // Both the still-open handle and a fresh open keep answering.
        let token = SseScheme::trapdoor(&key, b"kw1");
        assert_eq!(SseScheme::search(&reopened, &token).unwrap().len(), 8);
        let fresh = ShardedIndex::open_dir(dir.path()).unwrap();
        assert_eq!(SseScheme::search(&fresh, &token).unwrap().len(), 8);
    }

    #[test]
    fn resave_removes_stale_higher_numbered_shard_files() {
        // Saving a less-sharded index over a more-sharded one must not
        // leave the old index's extra shard files interleaved.
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let key = SseScheme::setup(&mut rng);
        let mut db = SseDatabase::new();
        db.add(b"w".to_vec(), b"payload".to_vec());
        let dir = TempDir::new("stale-shards");
        SseScheme::build_index_sharded(&key, &db, 3, &mut rng)
            .save_to_dir(dir.path())
            .unwrap();
        SseScheme::build_index_sharded(&key, &db, 0, &mut rng)
            .save_to_dir(dir.path())
            .unwrap();
        let names: Vec<String> = fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(
            !names.iter().any(|n| n == &shard_file_name(1)),
            "stale shard files must be removed, got {names:?}"
        );
        assert_eq!(names.len(), 2, "manifest + one shard file: {names:?}");
    }

    #[test]
    fn resave_preserves_sidecar_files() {
        // Scheme sidecars (Constant's depth meta, PB's tree) live next to
        // the shard files; the staged re-save must carry them into the
        // committed snapshot.
        let (dir, _, _) = saved_index(1);
        let sidecar = dir.path().join("constant.meta");
        fs::write(&sidecar, b"sidecar-bytes").unwrap();
        let index = ShardedIndex::open_dir(dir.path()).unwrap();
        index.save_to_dir(dir.path()).unwrap();
        assert_eq!(
            fs::read(&sidecar).unwrap(),
            b"sidecar-bytes",
            "re-save must preserve non-index files"
        );
        assert!(ShardedIndex::open_dir(dir.path()).is_ok());
    }

    #[test]
    fn failed_resave_never_mixes_old_and_new() {
        // The ROADMAP's save-atomicity item: a save that dies midway over
        // an existing same-shard-count index must leave the old snapshot
        // byte-identical and openable — never a cleanly-opening mix of
        // old and new files. The kill is simulated by occupying the
        // staging path with a plain file, so the staged write fails
        // before the commit rename.
        let (dir, _, _) = saved_index(1);
        let before: Vec<(String, Vec<u8>)> = {
            let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir.path())
                .unwrap()
                .map(|e| {
                    let e = e.unwrap();
                    (
                        e.file_name().into_string().unwrap(),
                        fs::read(e.path()).unwrap(),
                    )
                })
                .collect();
            files.sort();
            files
        };

        // A different index with the same shard count, whose save must
        // not commit.
        let mut rng = ChaCha20Rng::seed_from_u64(77);
        let key = SseScheme::setup(&mut rng);
        let mut db = SseDatabase::new();
        for i in 0..16u64 {
            db.add(format!("other{i}").into_bytes(), i.to_le_bytes().to_vec());
        }
        let other = SseScheme::build_index_sharded(&key, &db, 1, &mut rng);
        fs::write(staging_path(dir.path()), b"occupied").unwrap();
        let err = other
            .save_to_dir(dir.path())
            .expect_err("occupied staging path must fail the save");
        assert!(matches!(err, StorageError::CorruptDirectory { .. }));

        fs::remove_file(staging_path(dir.path())).unwrap();
        let after: Vec<(String, Vec<u8>)> = {
            let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir.path())
                .unwrap()
                .map(|e| {
                    let e = e.unwrap();
                    (
                        e.file_name().into_string().unwrap(),
                        fs::read(e.path()).unwrap(),
                    )
                })
                .collect();
            files.sort();
            files
        };
        assert_eq!(
            before, after,
            "a failed re-save must not touch the old snapshot"
        );
        let reopened = ShardedIndex::open_dir(dir.path()).unwrap();
        assert_eq!(reopened.shard_bits(), 1, "old snapshot stays openable");
    }

    #[test]
    fn leftover_staging_from_a_killed_save_is_ignored_and_cleaned() {
        // Simulate a save killed while staging: the old snapshot opens
        // untouched, and the next save clears the leftovers and commits.
        let (dir, _, bytes) = saved_index(1);
        let staging = staging_path(dir.path());
        fs::create_dir_all(&staging).unwrap();
        fs::write(staging.join(shard_file_name(0)), &bytes[..bytes.len() / 2]).unwrap();

        let reopened = ShardedIndex::open_dir(dir.path()).unwrap();
        assert_eq!(reopened.shard_bits(), 1);
        reopened
            .save_to_dir(dir.path())
            .expect("save over leftover staging must succeed");
        assert!(
            !staging.exists(),
            "committed save must clean the staging dir"
        );
        assert!(
            !displaced_path(dir.path()).exists(),
            "no parked old snapshot left"
        );
        assert!(ShardedIndex::open_dir(dir.path()).is_ok());
    }

    #[test]
    fn interrupted_commit_swap_heals_on_next_open_or_save() {
        // Simulate a save killed between the two commit renames: the old
        // snapshot sits at <dir>.old and <dir> is missing. Both open_dir
        // and a subsequent save must restore and use the old snapshot.
        let (dir, _, _) = saved_index(1);
        fs::rename(dir.path(), displaced_path(dir.path())).unwrap();
        assert!(!dir.path().exists());
        let reopened = ShardedIndex::open_dir(dir.path())
            .expect("open must complete the interrupted commit's rollback");
        assert_eq!(reopened.shard_bits(), 1);
        assert!(!displaced_path(dir.path()).exists());

        // Same through the save path.
        fs::rename(dir.path(), displaced_path(dir.path())).unwrap();
        reopened
            .save_to_dir(dir.path())
            .expect("save must recover and re-commit");
        assert!(ShardedIndex::open_dir(dir.path()).is_ok());
    }

    #[test]
    fn resave_refuses_to_delete_foreign_sibling_directories() {
        // A user directory that merely *happens* to sit at <dir>.old must
        // never be destroyed as a "crashed save leftover".
        let (dir, _, _) = saved_index(0);
        let foreign = displaced_path(dir.path());
        fs::create_dir_all(&foreign).unwrap();
        fs::write(foreign.join("precious.txt"), b"user data").unwrap();
        let index = ShardedIndex::open_dir(dir.path()).unwrap();
        let err = index
            .save_to_dir(dir.path())
            .expect_err("foreign sibling must abort the save");
        assert!(matches!(err, StorageError::CorruptDirectory { .. }));
        assert_eq!(
            fs::read(foreign.join("precious.txt")).unwrap(),
            b"user data",
            "the foreign directory must survive untouched"
        );
        // The index itself is also untouched and still serves.
        assert!(ShardedIndex::open_dir(dir.path()).is_ok());
        fs::remove_dir_all(&foreign).unwrap();
    }

    #[test]
    fn empty_index_round_trips() {
        let dir = TempDir::new("empty");
        let index = ShardedIndex::default();
        index.save_to_dir(dir.path()).unwrap();
        let reopened = ShardedIndex::open_dir(dir.path()).unwrap();
        assert_eq!(reopened.len(), 0);
        assert!(reopened.is_empty());
        assert!(reopened.is_file_backed());
        assert!(reopened.try_get(&[0u8; LABEL_LEN]).unwrap().is_none());
    }

    /// The documented `BlockCache` concurrency contract under adversarial
    /// mixed hit/miss/eviction traffic: with N threads inserting
    /// fixed-size blocks, mid-flight residency never exceeds
    /// `budget + N × block` (each in-flight insert may overshoot by its
    /// own block, nothing more), the eviction counter is monotone, and
    /// once every insert returns the cache is back inside the budget with
    /// the resident counter exactly matching the bytes actually held.
    #[test]
    fn block_cache_stats_stay_consistent_under_concurrent_traffic() {
        use std::sync::atomic::AtomicBool;

        const THREADS: usize = 8;
        const BLOCK: usize = 1 << 10;
        const BLOCKS_IN_BUDGET: usize = 24;
        const KEY_SPACE: u32 = 192; // 8× the budget: constant eviction churn
        let budget = BLOCKS_IN_BUDGET * BLOCK;
        let cache = BlockCache::new(budget);
        let stop = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for thread in 0..THREADS as u32 {
                let cache = &cache;
                let stop = &stop;
                scope.spawn(move || {
                    // Overlapping key windows: some keys are shared across
                    // threads (hits + insert races), some private (misses).
                    for round in 0..400u32 {
                        let key = (thread % 4, (round * 13 + thread * 29) % KEY_SPACE);
                        if cache.get(key).is_none() {
                            cache.insert(key, vec![0u8; BLOCK].into());
                        }
                        // Every thread validates the mid-flight bound on
                        // every step, not just at a sampling cadence.
                        let resident = cache.resident_bytes();
                        assert!(
                            resident <= budget + THREADS * BLOCK,
                            "mid-flight resident {resident} exceeds budget {budget} \
                             plus one in-flight block per thread"
                        );
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
            // A dedicated sampler races the workers: counters must be
            // monotone and residency bounded at every observation.
            let cache = &cache;
            let stop = &stop;
            scope.spawn(move || {
                let mut last_evictions = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let evictions = cache.evictions();
                    assert!(
                        evictions >= last_evictions,
                        "eviction counter went backwards: {last_evictions} -> {evictions}"
                    );
                    last_evictions = evictions;
                    assert!(cache.resident_bytes() <= budget + THREADS * BLOCK);
                    std::thread::yield_now();
                }
            });
        });

        // Quiescent: no insert mid-flight, so the budget holds exactly and
        // the resident counter agrees byte-for-byte with the slots held.
        let resident = cache.resident_bytes();
        assert!(
            resident <= budget,
            "quiescent resident {resident} exceeds budget {budget}"
        );
        let held: usize = (0..4).map(|s| cache.shard_resident_bytes(s)).sum();
        assert_eq!(
            resident, held,
            "resident counter must match the bytes actually cached"
        );
        assert!(
            cache.evictions() > 0,
            "a working set 8× the budget must evict"
        );
    }
}
