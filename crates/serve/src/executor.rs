//! The shard-affine batch executor: cross-query probe deduplication with
//! per-shard worker lanes.
//!
//! Serving one query already runs a lockstep counter scan (all of the
//! query's tokens advance one counter round at a time — see
//! `rsse_sse::SseScheme::search_batch_scan`). This module lifts the same
//! lockstep **across queries**: a whole batch advances round by round, and
//! each round is executed scatter/gather:
//!
//! 1. **Expand** — every live `(query, token)` pair derives its round label
//!    through the cached [`TokenLabeler`] (label expansion split from
//!    probing, so planning never touches storage).
//! 2. **Dedupe** — identical labels across the batch collapse into one
//!    entry of a shared probe table. Trapdoors are deterministic — two
//!    queries covering the same node carry byte-equal tokens, whose label
//!    sequences coincide counter-for-counter — so a shared probe's result
//!    is exactly what each demander's own probe would have returned.
//! 3. **Scatter** — the unique probes are grouped by shard into lanes, one
//!    worker task per shard lane. Each lane probes sequentially (its
//!    `FileShard` block reads stay clustered), lanes run in parallel, so
//!    one slow block stalls only its shard's lane, never the whole round.
//! 4. **Gather** — demanders read their probes' shared results: hits are
//!    decrypted per query with that query's own payload cipher (dedup
//!    shares storage reads, never plaintext across keys), misses retire
//!    the token, exactly as in the sequential scan.
//!
//! ## Control plane
//!
//! The resilience machinery threads through at per-probe granularity, same
//! contract as the sequential [`QueryGuard`](crate::server) loop:
//!
//! * **Deadlines** are checked at round boundaries. An expired query is cut
//!   with a typed partial outcome and simply stops demanding; probes it
//!   shared with still-live queries proceed — cutting one query never
//!   cancels work another query needs.
//! * **Breakers** gate every unique probe at its shard; a fail-fast trips
//!   every query demanding that probe (each gets its own typed error).
//! * **Retries** run per unique probe under the server-wide budget with the
//!   same seeded backoff; a transiently faulty block is re-read once for
//!   the whole batch, not once per demander.
//!
//! ## Leakage
//!
//! Within-batch dedup is leakage-free: which probes coincide is the search
//! pattern, which the server already learns from the deterministic tokens
//! themselves (see the `rsse_sse::leakage` module). The executor reveals
//! its savings only through counters the server operator already holds.
//! Per-query accounting is unchanged — a query's `probes_resolved` counts
//! its *demanded* probes whether or not storage was read, so outcomes and
//! the per-query leakage profile are byte-identical to sequential serving.

use crate::breaker::Admit;
use crate::error::{PartialOutcome, ServeError};
use crate::server::{ResilientServer, ServeIndex, Trip};
use rsse_core::server::{assemble_outcome, decode_hit_into};
use rsse_core::{DocId, QueryOutcome};
use rsse_crypto::StreamCipher;
use rsse_sse::{CipherSpan, Label, LabelHasher, SearchToken, StorageError, TokenLabeler};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Tuning of the batch executor
/// ([`ResilientServer::answer_batch`] / [`drain_batched`]).
///
/// [`drain_batched`]: ResilientServer::drain_batched
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Dedupe identical probes across the batch (default `true`). Off,
    /// every demanded probe is issued to storage individually — the lanes
    /// and control plane still apply, which makes this the control knob
    /// for measuring what dedup alone buys.
    pub dedup: bool,
    /// Worker threads per round for the shard lanes: `None` (default) uses
    /// the machine's available parallelism, `Some(n)` pins exactly `n`
    /// (the CI bench worker sweep pins 1/2/4). Always capped at the number
    /// of lanes in the round; `1` resolves lanes sequentially inline.
    pub workers: Option<usize>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            dedup: true,
            workers: None,
        }
    }
}

/// One admitted query entering [`execute_batch`]: its tokens plus the
/// admission instant and absolute deadline its round checks run against.
pub(crate) struct BatchItem<'a> {
    pub(crate) tokens: &'a [SearchToken],
    pub(crate) admitted_at: Duration,
    pub(crate) deadline: Option<Duration>,
}

/// One query's in-flight state across counter rounds.
struct QueryRun<'a> {
    tokens: &'a [SearchToken],
    admitted_at: Duration,
    deadline: Option<Duration>,
    /// Cached label-PRF schedules, one per token.
    labelers: Vec<TokenLabeler>,
    /// This query's payload ciphers — decryption is always per query.
    ciphers: Vec<StreamCipher>,
    /// Ids decoded so far, grouped by token in token order.
    per_token: Vec<Vec<DocId>>,
    /// Per-token hit counts (the outcome's `entries_touched` accounting).
    counts: Vec<usize>,
    /// Tokens still scanning, in token order.
    live: Vec<u32>,
    /// Tokens that hit this round (becomes `live` at the round's end).
    next_live: Vec<u32>,
    /// Probes this query demanded and saw resolved (hits *and* misses) —
    /// the sequential guard's count, independent of dedup.
    probes_resolved: u64,
    /// Set once the query is finished (completed or tripped).
    result: Option<Result<QueryOutcome, ServeError>>,
}

/// What one guarded unique probe produced for the round.
enum RoundProbe<'a> {
    /// The label resolved: `Some` ciphertext or a miss (any transient
    /// faults were retried away inside the guarded loop).
    Resolved(Option<CipherSpan<'a>>),
    /// The probe tripped (breaker fail-fast or retries exhausted); every
    /// demander fails with the corresponding typed error.
    Tripped(Trip),
}

/// Runs one batch to completion. Outcomes are in item order and
/// byte-identical to serving each item alone through the guarded
/// sequential path (pinned by the `batch_executor` test battery).
pub(crate) fn execute_batch<'a, B: ServeIndex>(
    server: &ResilientServer<B>,
    items: Vec<BatchItem<'a>>,
) -> Vec<Result<QueryOutcome, ServeError>> {
    if items.is_empty() {
        return Vec::new();
    }
    server
        .counters
        .admitted
        .fetch_add(items.len() as u64, Ordering::Relaxed);
    let mut runs: Vec<QueryRun<'a>> = items
        .into_iter()
        .map(|item| {
            server.retry.credit_query();
            QueryRun {
                labelers: item.tokens.iter().map(TokenLabeler::new).collect(),
                ciphers: item
                    .tokens
                    .iter()
                    .map(SearchToken::payload_cipher)
                    .collect(),
                per_token: (0..item.tokens.len()).map(|_| Vec::new()).collect(),
                counts: vec![0usize; item.tokens.len()],
                live: (0..item.tokens.len() as u32).collect(),
                next_live: Vec::with_capacity(item.tokens.len()),
                probes_resolved: 0,
                result: None,
                tokens: item.tokens,
                admitted_at: item.admitted_at,
                deadline: item.deadline,
            }
        })
        .collect();

    let dedup = server.config.batch.dedup;
    // The shared probe table: label → index into this round's unique
    // probes. Labels are PRF outputs, so the trivial label hasher is an
    // ideal hash here just as in the dictionary itself.
    let mut table: HashMap<Label, u32, BuildHasherDefault<LabelHasher>> = HashMap::default();
    // Unique probes of the round, in first-demand order: (label, shard).
    let mut probes: Vec<(Label, u32)> = Vec::new();
    // (query, token, probe) demands of the round, in (query, token) order.
    let mut demands: Vec<(u32, u32, u32)> = Vec::new();
    // One decrypt buffer reused across every query of the batch.
    let mut plaintext: Vec<u8> = Vec::new();
    let mut counter = 0u64;

    loop {
        // Finish queries with nothing left to scan (empty token vectors
        // complete here on round 0).
        for run in runs.iter_mut() {
            if run.result.is_none() && run.live.is_empty() {
                server.counters.served_ok.fetch_add(1, Ordering::Relaxed);
                let per_token = std::mem::take(&mut run.per_token);
                run.result = Some(Ok(assemble_outcome(run.tokens, per_token, &run.counts)));
            }
        }

        // Expand + dedupe this round's demands.
        table.clear();
        probes.clear();
        demands.clear();
        for (q, run) in runs.iter_mut().enumerate() {
            if run.result.is_some() {
                continue;
            }
            if let Some(deadline) = run.deadline {
                if server.clock.now() >= deadline {
                    run.result = Some(Err(trip_deadline(server, run)));
                    continue;
                }
            }
            for &t in &run.live {
                let label = run.labelers[t as usize].label_at(counter);
                let probe = if dedup {
                    *table.entry(label).or_insert_with(|| {
                        let shard = server.backend.shard_of(&label);
                        probes.push((label, shard));
                        (probes.len() - 1) as u32
                    })
                } else {
                    let shard = server.backend.shard_of(&label);
                    probes.push((label, shard));
                    (probes.len() - 1) as u32
                };
                demands.push((q as u32, t, probe));
            }
        }
        if demands.is_empty() {
            break;
        }
        let c = &server.counters;
        c.batch_rounds.fetch_add(1, Ordering::Relaxed);
        c.batch_probes_demanded
            .fetch_add(demands.len() as u64, Ordering::Relaxed);
        c.batch_probes_unique
            .fetch_add(probes.len() as u64, Ordering::Relaxed);

        // Scatter: group unique probes into shard lanes and run them.
        let resolved = run_lanes(server, &probes);

        // Gather: demanders consume their probes' shared results, in
        // (query, token) order — identical to each query's own scan order.
        for run in runs.iter_mut() {
            run.next_live.clear();
        }
        for &(q, t, p) in &demands {
            let run = &mut runs[q as usize];
            if run.result.is_some() {
                // Tripped earlier this round (an earlier token's probe
                // failed); its remaining demands are moot.
                continue;
            }
            match &resolved[p as usize] {
                RoundProbe::Resolved(span) => {
                    run.probes_resolved += 1;
                    server
                        .counters
                        .probes_resolved
                        .fetch_add(1, Ordering::Relaxed);
                    // A `None` span is the token's first miss: it retires.
                    if let Some(ciphertext) = span {
                        if let Some(id) =
                            decode_hit_into(&run.ciphers[t as usize], ciphertext, &mut plaintext)
                        {
                            run.per_token[t as usize].push(id);
                        }
                        run.counts[t as usize] += 1;
                        run.next_live.push(t);
                    }
                }
                RoundProbe::Tripped(trip) => {
                    run.result = Some(Err(trip_to_error(server, trip)));
                }
            }
        }
        for run in runs.iter_mut() {
            if run.result.is_none() {
                std::mem::swap(&mut run.live, &mut run.next_live);
            }
        }
        counter += 1;
    }

    runs.into_iter()
        .map(|run| run.result.expect("every batch query resolves"))
        .collect()
}

/// Groups the round's unique probes by shard and resolves each lane
/// sequentially, lanes in parallel across the configured worker count
/// ([`BatchConfig::workers`], defaulting to the machine's parallelism).
/// Workers pull whole lanes from a shared cursor — shard affinity: a lane's
/// block reads stay clustered on one worker, and a slow block delays only
/// the lanes behind it on that worker, never the other workers' lanes.
/// Returns the probes' results in probe order.
fn run_lanes<'a, B: ServeIndex>(
    server: &'a ResilientServer<B>,
    probes: &[(Label, u32)],
) -> Vec<RoundProbe<'a>> {
    // Stable shard grouping: sort probe indices by (shard, index) so each
    // lane keeps first-demand order and the layout is deterministic.
    let mut order: Vec<u32> = (0..probes.len() as u32).collect();
    order.sort_unstable_by_key(|&p| (probes[p as usize].1, p));
    let mut lanes: Vec<&[u32]> = Vec::new();
    let mut start = 0usize;
    for end in 1..=order.len() {
        if end == order.len() || probes[order[end] as usize].1 != probes[order[start] as usize].1 {
            lanes.push(&order[start..end]);
            start = end;
        }
    }
    let deepest = lanes.iter().map(|lane| lane.len()).max().unwrap_or(0) as u64;
    server
        .counters
        .batch_max_lane_depth
        .fetch_max(deepest, Ordering::Relaxed);

    let probe_lane = |lane: &[u32], out: &mut Vec<(u32, RoundProbe<'a>)>| {
        for &p in lane {
            let (label, shard) = &probes[p as usize];
            out.push((p, probe_guarded(server, *shard, label)));
        }
    };

    let workers = server
        .config
        .batch
        .workers
        .unwrap_or_else(rayon::current_num_threads)
        .max(1)
        .min(lanes.len().max(1));
    let mut tagged: Vec<(u32, RoundProbe<'a>)> = Vec::with_capacity(probes.len());
    if workers <= 1 || lanes.len() <= 1 {
        for lane in &lanes {
            probe_lane(lane, &mut tagged);
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let collected = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let lanes = &lanes;
                    let probe_lane = &probe_lane;
                    scope.spawn(move || {
                        let mut out: Vec<(u32, RoundProbe<'a>)> = Vec::new();
                        loop {
                            let lane = cursor.fetch_add(1, Ordering::Relaxed);
                            if lane >= lanes.len() {
                                break;
                            }
                            probe_lane(lanes[lane], &mut out);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("shard-lane worker panicked"))
                .collect::<Vec<_>>()
        });
        tagged = collected;
    }

    let mut resolved: Vec<Option<RoundProbe<'a>>> = (0..probes.len()).map(|_| None).collect();
    for (p, outcome) in tagged {
        resolved[p as usize] = Some(outcome);
    }
    resolved
        .into_iter()
        .map(|slot| slot.expect("every lane probe reports"))
        .collect()
}

/// The per-probe guarded loop: breaker admission, the storage probe, and
/// budgeted retries with seeded backoff — the sequential `QueryGuard`
/// contract minus its deadline check, which batches apply per query at
/// round boundaries so one demander's deadline cannot cancel a shared
/// probe.
fn probe_guarded<'a, B: ServeIndex>(
    server: &'a ResilientServer<B>,
    shard: u32,
    label: &Label,
) -> RoundProbe<'a> {
    let mut attempt: u32 = 0;
    loop {
        match server.breakers.admit(shard, server.clock.now()) {
            Admit::Proceed | Admit::Trial => {}
            Admit::FailFast { open_for } => {
                return RoundProbe::Tripped(Trip::Breaker { shard, open_for });
            }
        }
        match server.backend.probe(label) {
            Ok(span) => {
                server.breakers.record_success(shard);
                server
                    .counters
                    .faults_absorbed
                    .fetch_add(u64::from(attempt), Ordering::Relaxed);
                return RoundProbe::Resolved(span);
            }
            Err(source) => {
                server.breakers.record_failure(shard, server.clock.now());
                attempt += 1;
                if attempt >= server.config.retry.max_attempts.max(1) {
                    return RoundProbe::Tripped(Trip::Exhausted {
                        attempts: attempt,
                        budget_empty: false,
                        source,
                    });
                }
                if !server.retry.try_consume() {
                    return RoundProbe::Tripped(Trip::Exhausted {
                        attempts: attempt,
                        budget_empty: true,
                        source,
                    });
                }
                server.clock.sleep(server.retry.backoff(attempt));
            }
        }
    }
}

/// Builds the typed deadline error for a query cut at a round boundary,
/// with its partial ids, and counts it.
fn trip_deadline<B: ServeIndex>(server: &ResilientServer<B>, run: &mut QueryRun<'_>) -> ServeError {
    server
        .counters
        .deadline_expired
        .fetch_add(1, Ordering::Relaxed);
    let deadline = run.deadline.expect("deadline trip implies a deadline");
    let per_token = std::mem::take(&mut run.per_token);
    ServeError::DeadlineExceeded {
        deadline: deadline.saturating_sub(run.admitted_at),
        elapsed: server.clock.now().saturating_sub(run.admitted_at),
        partial: PartialOutcome {
            ids: per_token.into_iter().flatten().collect(),
            probes_resolved: run.probes_resolved,
            tokens_total: run.tokens.len(),
        },
    }
}

/// Translates a shared probe's trip into one demander's typed error and
/// counts it. A trip demanded by several queries fails each of them; the
/// underlying [`StorageError`] is not clonable (it may wrap an
/// [`io::Error`]), so demanders after the first receive a faithful
/// re-rendering of the same failure.
fn trip_to_error<B: ServeIndex>(server: &ResilientServer<B>, trip: &Trip) -> ServeError {
    match trip {
        Trip::Breaker { shard, open_for } => {
            server
                .counters
                .shard_unavailable
                .fetch_add(1, Ordering::Relaxed);
            ServeError::ShardUnavailable {
                shard: *shard,
                open_for: *open_for,
            }
        }
        Trip::Exhausted {
            attempts,
            budget_empty,
            source,
        } => {
            server
                .counters
                .retry_exhausted
                .fetch_add(1, Ordering::Relaxed);
            ServeError::RetriesExhausted {
                attempts: *attempts,
                budget_empty: *budget_empty,
                source: rerender_storage_error(source),
            }
        }
        Trip::Deadline => unreachable!("lanes never trip deadlines"),
    }
}

/// A structurally fresh [`StorageError`] carrying the same rendered cause,
/// for fanning one shared probe failure out to every demanding query.
fn rerender_storage_error(source: &StorageError) -> StorageError {
    StorageError::Io {
        path: PathBuf::from("<shared-batch-probe>"),
        error: io::Error::other(source.to_string()),
    }
}
