//! Best Range Cover (BRC): the minimum dyadic decomposition of a range.

use crate::domain::{Domain, Range};
use crate::node::Node;

/// Computes the *Best Range Cover* of `range`: the unique minimum-cardinality
/// set of binary-tree nodes whose dyadic intervals exactly tile the range.
///
/// For a range of size `R` the cover contains `O(log R)` nodes (at most two
/// per level). Nodes are returned left-to-right, i.e. ordered by the ranges
/// they cover; callers that must hide this order (every scheme in the paper)
/// shuffle the resulting token vector.
///
/// # Panics
/// Panics if the range does not fit inside the domain.
pub fn brc(domain: &Domain, range: Range) -> Vec<Node> {
    assert!(
        domain.contains(range.lo()) && range.hi() < domain.padded_size(),
        "range {range} outside domain of padded size {}",
        domain.padded_size()
    );
    let mut cover = Vec::new();
    let mut lo = range.lo();
    let hi = range.hi();
    while lo <= hi {
        // The largest aligned dyadic block starting at `lo`…
        let align = if lo == 0 { 63 } else { lo.trailing_zeros() };
        // …shrunk until it fits inside [lo, hi].
        let remaining = hi - lo + 1;
        let fit = 63 - remaining.leading_zeros(); // floor(log2(remaining))
        let level = align.min(fit).min(domain.bits());
        cover.push(Node::new(level, lo >> level));
        let width = 1u64 << level;
        if hi - lo + 1 == width {
            break;
        }
        lo += width;
    }
    cover
}

/// Maximum number of nodes BRC can output for a range of size `range_len`
/// (two per level up to `⌊log₂ R⌋`, a standard bound used in cost analyses).
pub fn brc_worst_case_nodes(range_len: u64) -> u32 {
    if range_len <= 1 {
        return 1;
    }
    let levels = 64 - range_len.leading_zeros();
    2 * levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_exact_cover(domain: &Domain, range: Range, cover: &[Node]) {
        // Nodes tile the range exactly: disjoint, inside, and complete.
        let mut covered = 0u64;
        for (i, node) in cover.iter().enumerate() {
            let r = node.range();
            assert!(range.covers(r), "node {node:?} leaks outside {range}");
            covered += r.len();
            for other in &cover[i + 1..] {
                assert!(!r.intersects(other.range()), "overlap {node:?} {other:?}");
            }
        }
        assert_eq!(covered, range.len(), "cover size mismatch for {range}");
        let _ = domain;
    }

    #[test]
    fn paper_example_2_to_7() {
        let domain = Domain::new(8);
        let cover = brc(&domain, Range::new(2, 7));
        assert_eq!(cover, vec![Node::new(1, 1), Node::new(2, 1)]);
    }

    #[test]
    fn paper_example_1_to_6() {
        // Section 2.2: BRC covers [1,6] with N_1, N_{2,3}, N_{4,5}, N_6.
        let domain = Domain::new(8);
        let cover = brc(&domain, Range::new(1, 6));
        assert_eq!(
            cover,
            vec![
                Node::new(0, 1),
                Node::new(1, 1),
                Node::new(1, 2),
                Node::new(0, 6),
            ]
        );
    }

    #[test]
    fn aligned_range_is_single_node() {
        let domain = Domain::new(1 << 10);
        let cover = brc(&domain, Range::new(256, 511));
        assert_eq!(cover, vec![Node::new(8, 1)]);
    }

    #[test]
    fn single_point_is_a_leaf() {
        let domain = Domain::new(1 << 10);
        let cover = brc(&domain, Range::point(777));
        assert_eq!(cover, vec![Node::leaf(777)]);
    }

    #[test]
    fn full_domain_is_the_root() {
        let domain = Domain::with_bits(12);
        let cover = brc(&domain, domain.full_range());
        assert_eq!(cover, vec![Node::root(&domain)]);
    }

    #[test]
    fn covers_are_exact_on_small_domain_exhaustively() {
        let domain = Domain::new(64);
        for lo in 0..64u64 {
            for hi in lo..64u64 {
                let range = Range::new(lo, hi);
                let cover = brc(&domain, range);
                assert_exact_cover(&domain, range, &cover);
            }
        }
    }

    #[test]
    fn node_count_is_logarithmic() {
        let domain = Domain::with_bits(30);
        let range = Range::new(12345, 12345 + 999_999);
        let cover = brc(&domain, range);
        assert!(cover.len() as u32 <= brc_worst_case_nodes(range.len()));
        assert!(cover.len() <= 2 * 20, "1M-value range needs ≤ 40 nodes");
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_range_panics() {
        let domain = Domain::new(8);
        let _ = brc(&domain, Range::new(4, 9));
    }

    proptest! {
        #[test]
        fn random_ranges_are_exactly_covered(lo in 0u64..5000, len in 1u64..5000) {
            let domain = Domain::new(10_000);
            let hi = (lo + len - 1).min(domain.size() - 1);
            let range = Range::new(lo, hi);
            let cover = brc(&domain, range);
            assert_exact_cover(&domain, range, &cover);
            prop_assert!(cover.len() as u32 <= brc_worst_case_nodes(range.len()));
        }

        #[test]
        fn minimality_vs_level_bound(lo in 0u64..(1u64 << 16), len in 1u64..(1u64 << 16)) {
            // BRC never uses more than two nodes at any level.
            let domain = Domain::with_bits(17);
            let hi = (lo + len - 1).min(domain.size() - 1);
            let cover = brc(&domain, Range::new(lo, hi));
            let mut per_level = std::collections::HashMap::new();
            for node in &cover {
                *per_level.entry(node.level()).or_insert(0u32) += 1;
            }
            for (_, count) in per_level {
                prop_assert!(count <= 2);
            }
        }
    }
}
