//! `reproduce` — regenerates every table and figure of the paper's
//! evaluation section from the command line.
//!
//! ```sh
//! cargo run -p rsse-bench --release --bin reproduce -- all
//! cargo run -p rsse-bench --release --bin reproduce -- fig6a fig6b --scale large
//! ```
//!
//! Each experiment prints an aligned table and writes a CSV to
//! `target/experiments/<name>.csv`. See EXPERIMENTS.md for the mapping to
//! the paper's artefacts and the observed-vs-expected discussion.

use rsse_bench::experiments;
use rsse_bench::{DatasetKind, Scale};

const USAGE: &str = "\
usage: reproduce [EXPERIMENT ...] [--scale small|large|smoke]

experiments:
  table1    Table 1  — measured per-scheme costs
  fig5a     Figure 5(a) — index size vs dataset size (Gowalla-like)
  fig5b     Figure 5(b) — construction time vs dataset size (Gowalla-like)
  table2    Table 2  — index costs (USPS-like)
  fig6a     Figure 6(a) — false-positive rate vs range size (Gowalla-like)
  fig6b     Figure 6(b) — false-positive rate vs range size (USPS-like)
  fig7a     Figure 7(a) — search time vs range size (Gowalla-like)
  fig7b     Figure 7(b) — search time vs range size (USPS-like)
  fig8a     Figure 8(a) — query size vs range size
  fig8b     Figure 8(b) — query generation time vs range size
  ablation-cover    BRC/URC/SRC cover statistics (beyond the paper)
  ablation-updates  consolidation-step sweep (beyond the paper)
  all       everything above
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::small();
    let mut experiments_requested: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(value) = iter.next() else {
                    eprintln!("--scale needs a value\n{USAGE}");
                    std::process::exit(2);
                };
                match Scale::parse(value) {
                    Some(parsed) => scale = parsed,
                    None => {
                        eprintln!("unknown scale '{value}'\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => experiments_requested.push(other.to_string()),
        }
    }
    if experiments_requested.is_empty() {
        experiments_requested.push("all".to_string());
    }

    let expand = |name: &str| -> Vec<String> {
        if name == "all" {
            [
                "table1",
                "fig5a",
                "fig5b",
                "table2",
                "fig6a",
                "fig6b",
                "fig7a",
                "fig7b",
                "fig8a",
                "fig8b",
                "ablation-cover",
                "ablation-updates",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect()
        } else {
            vec![name.to_string()]
        }
    };
    let list: Vec<String> = experiments_requested
        .iter()
        .flat_map(|n| expand(n))
        .collect();

    // Figure 5(a)/(b) and Figure 8(a)/(b) come from the same sweep; avoid
    // running it twice when both variants are requested.
    let mut done: Vec<String> = Vec::new();
    for name in &list {
        let slug: String = match name.as_str() {
            "fig5a" | "fig5b" => "fig5".to_string(),
            "fig8a" | "fig8b" => "fig8".to_string(),
            other => other.to_string(),
        };
        if done.contains(&slug) {
            continue;
        }
        done.push(slug.clone());
        let report = match slug.as_str() {
            "table1" => experiments::table1(&scale),
            "fig5" => experiments::fig5_index_costs(&scale),
            "table2" => experiments::table2(&scale),
            "fig6a" => experiments::fig6_false_positives(DatasetKind::Gowalla, &scale),
            "fig6b" => experiments::fig6_false_positives(DatasetKind::Usps, &scale),
            "fig7a" => experiments::fig7_search_time(DatasetKind::Gowalla, &scale),
            "fig7b" => experiments::fig7_search_time(DatasetKind::Usps, &scale),
            "fig8" => experiments::fig8_query_costs(&scale),
            "ablation-cover" => experiments::ablation_cover(&scale),
            "ablation-updates" => experiments::ablation_updates(&scale),
            unknown => {
                eprintln!("unknown experiment '{unknown}'\n{USAGE}");
                std::process::exit(2);
            }
        };
        report.emit(&slug);
    }
}
