//! Bounded admission queues with load shedding and oldest-tenant-first
//! drain fairness.
//!
//! A resilient server refuses work it cannot serve instead of queueing it
//! unboundedly: each tenant gets its own bounded queue (a noisy neighbor
//! sheds itself, not everyone else), the server enforces a global bound on
//! total queued work, and — because the block cache's resident bytes are
//! the best early-warning signal a paged index has — admission can also
//! shed on cache pressure before the working set starts thrashing. Every
//! shed is a typed [`ServeError::Overloaded`] naming the tripped bound.
//!
//! Draining is **oldest-tenant fair**: work is released in rounds, each
//! round taking one request per tenant, tenants ordered by the arrival of
//! their oldest queued request. A tenant that queued 50 requests first
//! still yields the head of each round to a tenant whose single older
//! request has waited longer — bounded queues plus round-robin drain keep
//! tail latency fair under bursty multi-tenant load.

use crate::error::{OverloadReason, ServeError};
use rsse_sse::SearchToken;
use std::collections::VecDeque;
use std::time::Duration;

/// Admission tuning.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Queued requests allowed per tenant.
    pub per_tenant_queue: usize,
    /// Queued requests allowed server-wide.
    pub max_queued: usize,
    /// When set, admission sheds while the index's block cache reports more
    /// resident bytes than this.
    pub shed_at_resident_bytes: Option<usize>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            per_tenant_queue: 64,
            max_queued: 1024,
            shed_at_resident_bytes: None,
        }
    }
}

/// An admitted request's handle: returned by enqueue, echoed by drain so
/// callers can match outcomes to submissions. Tickets are issued in
/// admission order (monotonically increasing).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub u64);

/// One admitted, not-yet-served request.
#[derive(Debug)]
pub(crate) struct Pending {
    pub ticket: Ticket,
    /// Kept for Debug output and the fairness tests; serving itself only
    /// needs the ticket once the drain order is fixed.
    #[cfg_attr(not(test), allow(dead_code))]
    pub tenant: String,
    pub tokens: Vec<SearchToken>,
    /// Absolute deadline (server-clock reading) fixed at admission, so
    /// queue wait counts against the request's deadline.
    pub deadline: Option<Duration>,
}

/// The bounded multi-tenant queue. Callers hold it behind a mutex; all
/// methods are plain `&mut self`.
#[derive(Debug, Default)]
pub(crate) struct AdmissionQueue {
    config: AdmissionConfig,
    next_ticket: u64,
    queued: usize,
    /// Per-tenant FIFO queues, in first-arrival order of the tenants.
    tenants: Vec<(String, VecDeque<Pending>)>,
}

impl AdmissionQueue {
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// Requests queued server-wide.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Admits one request or sheds it with a typed overload error.
    /// `resident_bytes` is the caller-sampled cache residency used for the
    /// pressure check.
    pub fn enqueue(
        &mut self,
        tenant: &str,
        tokens: Vec<SearchToken>,
        deadline: Option<Duration>,
        resident_bytes: usize,
    ) -> Result<Ticket, ServeError> {
        if let Some(limit) = self.config.shed_at_resident_bytes {
            if resident_bytes > limit {
                return Err(ServeError::Overloaded {
                    tenant: tenant.to_string(),
                    reason: OverloadReason::CachePressure,
                    queued: self.queued,
                    limit,
                });
            }
        }
        if self.queued >= self.config.max_queued {
            return Err(ServeError::Overloaded {
                tenant: tenant.to_string(),
                reason: OverloadReason::GlobalQueueFull,
                queued: self.queued,
                limit: self.config.max_queued,
            });
        }
        let queue = match self.tenants.iter_mut().position(|(name, _)| name == tenant) {
            Some(i) => &mut self.tenants[i].1,
            None => {
                self.tenants.push((tenant.to_string(), VecDeque::new()));
                &mut self.tenants.last_mut().expect("just pushed").1
            }
        };
        if queue.len() >= self.config.per_tenant_queue {
            return Err(ServeError::Overloaded {
                tenant: tenant.to_string(),
                reason: OverloadReason::TenantQueueFull,
                queued: self.queued,
                limit: self.config.per_tenant_queue,
            });
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        queue.push_back(Pending {
            ticket,
            tenant: tenant.to_string(),
            tokens,
            deadline,
        });
        self.queued += 1;
        Ok(ticket)
    }

    /// Empties the queue into serving order: rounds of one request per
    /// tenant, tenants ordered within each round by their oldest queued
    /// ticket — so the tenant who has waited longest leads every round.
    pub fn drain_plan(&mut self) -> Vec<Pending> {
        let mut plan = Vec::with_capacity(self.queued);
        while self.queued > 0 {
            // Order this round's participants by their head ticket.
            let mut heads: Vec<(u64, usize)> = self
                .tenants
                .iter()
                .enumerate()
                .filter_map(|(i, (_, q))| q.front().map(|p| (p.ticket.0, i)))
                .collect();
            heads.sort_unstable();
            for (_, i) in heads {
                let pending = self.tenants[i].1.pop_front().expect("head just observed");
                self.queued -= 1;
                plan.push(pending);
            }
        }
        self.tenants.retain(|(_, q)| !q.is_empty());
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks() -> Vec<SearchToken> {
        Vec::new()
    }

    #[test]
    fn per_tenant_bound_sheds_only_the_noisy_tenant() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            per_tenant_queue: 2,
            max_queued: 100,
            shed_at_resident_bytes: None,
        });
        q.enqueue("loud", toks(), None, 0).unwrap();
        q.enqueue("loud", toks(), None, 0).unwrap();
        match q.enqueue("loud", toks(), None, 0) {
            Err(ServeError::Overloaded {
                reason: OverloadReason::TenantQueueFull,
                tenant,
                limit: 2,
                ..
            }) => assert_eq!(tenant, "loud"),
            other => panic!("expected tenant shed, got {other:?}"),
        }
        q.enqueue("quiet", toks(), None, 0)
            .expect("other tenants admit fine");
        assert_eq!(q.queued(), 3);
    }

    #[test]
    fn global_bound_and_cache_pressure_shed_typed() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            per_tenant_queue: 10,
            max_queued: 2,
            shed_at_resident_bytes: Some(1000),
        });
        q.enqueue("a", toks(), None, 0).unwrap();
        q.enqueue("b", toks(), None, 0).unwrap();
        assert!(matches!(
            q.enqueue("c", toks(), None, 0),
            Err(ServeError::Overloaded {
                reason: OverloadReason::GlobalQueueFull,
                ..
            })
        ));
        let mut fresh = AdmissionQueue::new(AdmissionConfig {
            shed_at_resident_bytes: Some(1000),
            ..AdmissionConfig::default()
        });
        assert!(matches!(
            fresh.enqueue("a", toks(), None, 1001),
            Err(ServeError::Overloaded {
                reason: OverloadReason::CachePressure,
                limit: 1000,
                ..
            })
        ));
        fresh
            .enqueue("a", toks(), None, 1000)
            .expect("at the limit is not over it");
    }

    #[test]
    fn drain_is_oldest_tenant_fair_round_robin() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        // b's burst arrives first, then one old request from a, then more b.
        q.enqueue("b", toks(), None, 0).unwrap(); // t0
        q.enqueue("b", toks(), None, 0).unwrap(); // t1
        q.enqueue("a", toks(), None, 0).unwrap(); // t2
        q.enqueue("b", toks(), None, 0).unwrap(); // t3
        q.enqueue("c", toks(), None, 0).unwrap(); // t4
        let plan = q.drain_plan();
        let order: Vec<(String, u64)> = plan
            .iter()
            .map(|p| (p.tenant.clone(), p.ticket.0))
            .collect();
        // Round 1 heads: b(t0), a(t2), c(t4); round 2: b(t1), a empty, c
        // empty; round 3: b(t3).
        assert_eq!(
            order,
            vec![
                ("b".into(), 0),
                ("a".into(), 2),
                ("c".into(), 4),
                ("b".into(), 1),
                ("b".into(), 3),
            ]
        );
        assert_eq!(q.queued(), 0);
        assert!(q.drain_plan().is_empty());
    }
}
