//! All RSSE schemes of the paper, plus the PB baseline of Li et al. and a
//! plain per-value SSE baseline.
//!
//! Every scheme follows the same client/server split and implements
//! [`RangeScheme`](crate::traits::RangeScheme); schemes with configuration
//! knobs additionally expose `build_with`-style constructors. The
//! [`any`] module offers a runtime-dispatched wrapper used by the
//! experiment harness and the examples.

pub mod any;
pub mod common;
pub mod constant;
pub mod log_brc_urc;
pub mod log_src;
pub mod log_src_i;
pub mod pb;
pub mod plain_sse;
pub mod quadratic;

pub use any::{AnyScheme, SchemeKind};
pub use common::CoverKind;

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for scheme tests.

    use crate::dataset::{Dataset, DocId, Record};
    use crate::metrics::Evaluation;
    use crate::traits::QueryOutcome;
    use rsse_cover::{Domain, Range};

    /// A small skewed dataset over a 64-value domain: ten tuples piled on
    /// value 2 (mirroring the USPS-style skew of the paper's Figure 4
    /// example) plus a spread of singletons.
    pub fn skewed_dataset() -> Dataset {
        let mut records = Vec::new();
        for id in 0..10u64 {
            records.push(Record::new(id, 2));
        }
        records.push(Record::new(10, 4));
        records.push(Record::new(11, 5));
        records.push(Record::new(12, 5));
        records.push(Record::new(13, 6));
        records.push(Record::new(14, 6));
        records.push(Record::new(15, 7));
        records.push(Record::new(16, 33));
        records.push(Record::new(17, 47));
        records.push(Record::new(18, 63));
        Dataset::new(Domain::new(64), records).unwrap()
    }

    /// A small near-uniform dataset over a 256-value domain.
    pub fn uniform_dataset() -> Dataset {
        let records = (0..80u64)
            .map(|i| Record::new(i, (i * 37 + 11) % 256))
            .collect();
        Dataset::new(Domain::new(256), records).unwrap()
    }

    /// Checks that an outcome is *complete* (no false negatives) for `range`
    /// and returns its evaluation.
    pub fn assert_complete(dataset: &Dataset, range: Range, outcome: &QueryOutcome) -> Evaluation {
        let expected = dataset.matching_ids(range);
        let eval = Evaluation::compare(&outcome.ids, &expected);
        assert!(
            eval.is_complete(),
            "scheme missed {} matching ids for {range}: returned {:?}, expected {:?}",
            eval.false_negatives,
            outcome.ids,
            expected
        );
        eval
    }

    /// Checks that an outcome is *exact* (complete, no false positives).
    pub fn assert_exact(dataset: &Dataset, range: Range, outcome: &QueryOutcome) {
        let eval = assert_complete(dataset, range, outcome);
        assert!(
            eval.is_exact(),
            "scheme returned {} false positives for {range}",
            eval.false_positives
        );
    }

    /// A spread of query ranges exercising edges, points and spans.
    pub fn query_mix(domain_size: u64) -> Vec<Range> {
        let max = domain_size - 1;
        vec![
            Range::new(0, max),
            Range::point(0),
            Range::point(max),
            Range::point(domain_size / 2),
            Range::new(1, domain_size / 2),
            Range::new(domain_size / 3, 2 * domain_size / 3),
            Range::new(max.saturating_sub(5), max),
            Range::new(2, 7),
            Range::new(3, 5),
        ]
    }

    /// Collects the ids of an outcome sorted, for order-insensitive equality.
    pub fn sorted_ids(outcome: &QueryOutcome) -> Vec<DocId> {
        let mut ids = outcome.ids.clone();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Unique scratch directory for persistence tests (shared helper from
    /// `rsse-sse`'s test support, so every crate maintains one copy).
    pub use rsse_sse::test_support::TempDir;
}
