//! Delegatable PRF (DPRF) in the sense of Kiayias, Papadopoulos,
//! Triandopoulos, Zacharias (CCS 2013), built on the GGM tree.
//!
//! The owner holds the GGM root seed over an ℓ-bit domain. To delegate the
//! PRF over a sub-range, it hands the server the GGM seeds of the nodes that
//! cover the range (the *token*, produced by the `T` function of the DPRF —
//! in our layering the covering nodes themselves are computed by
//! `rsse-cover`'s BRC or URC and passed in here). Each seed is paired with
//! the *level* of its node so the server knows how far to expand; from those
//! seeds the server's `C` function derives the leaf-level DPRF values of
//! every domain point in the range — and, by PRG security, learns nothing
//! about values outside the delegated sub-ranges.

use crate::ggm::{Ggm, Seed};
use crate::prf::{Key, KEY_LEN};

/// A delegated GGM inner-node seed together with the level of its node.
///
/// `level` is the height of the node's subtree: a node at level `h` covers
/// `2^h` consecutive leaves. Level 0 seeds are already leaf-level DPRF
/// values.
#[derive(Clone, PartialEq, Eq)]
pub struct GgmNodeSeed {
    /// GGM seed of the delegated node.
    pub seed: Seed,
    /// Height of the delegated node's subtree (0 = leaf).
    pub level: u32,
}

impl std::fmt::Debug for GgmNodeSeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GgmNodeSeed {{ level: {}, seed: <{} bytes> }}",
            self.level, KEY_LEN
        )
    }
}

/// A DPRF delegation token: the (randomly permutable) set of GGM node seeds
/// covering the delegated range.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DprfToken {
    /// Delegated node seeds. The order carries no information; callers are
    /// expected to shuffle before sending (the schemes do).
    pub nodes: Vec<GgmNodeSeed>,
}

impl DprfToken {
    /// Number of delegated nodes (the `O(log R)` of the paper).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the token delegates nothing.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Serialized size in bytes: each node ships a seed plus its level.
    /// Used by the Figure 8(a) experiment (query size at the owner).
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * (KEY_LEN + 4)
    }
}

/// One requested node of a batched delegation, in walk coordinates.
struct DelegateTarget {
    /// Leftmost leaf covered by the node (`index << level`).
    base: u64,
    /// Depth of the node below the root (`depth − level`).
    prefix_depth: u32,
    /// Position of the node in the caller's input list.
    pos: u32,
}

/// A delegatable PRF over an `ℓ`-bit domain (domain values `0 .. 2^ℓ`).
///
/// # Examples
///
/// The owner delegates a sub-range; the server expands the token into
/// exactly that range's leaf values and nothing else:
///
/// ```
/// use rsse_crypto::{Dprf, Key};
///
/// let dprf = Dprf::new(&Key::from_bytes([7u8; 32]), 4); // domain 0..16
///
/// // Delegate the aligned range [8, 12): one level-2 node (index 2).
/// let token = dprf.delegate(&[(2, 2)]);
/// assert_eq!(Dprf::token_coverage(&token), 4);
///
/// // Server-side expansion reproduces the owner's per-value PRF outputs.
/// let leaves = Dprf::expand_token(&token);
/// let expected: Vec<_> = (8..12).map(|v| dprf.eval(v)).collect();
/// assert_eq!(leaves, expected);
/// ```
#[derive(Clone, Debug)]
pub struct Dprf {
    root: Seed,
    depth: u32,
    ggm: Ggm,
}

impl Dprf {
    /// Creates a DPRF keyed by `key` over a domain of `depth` bits.
    pub fn new(key: &Key, depth: u32) -> Self {
        assert!(depth <= 63, "domain depth must fit in 63 bits");
        Self {
            root: *key.as_bytes(),
            depth,
            ggm: Ggm::new(),
        }
    }

    /// Number of bits of the domain (the height of the GGM tree).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Evaluates the full (leaf-level) DPRF on a single domain value.
    ///
    /// Only the key holder can call this; the server obtains the same values
    /// through [`expand_token`](Self::expand_token).
    pub fn eval(&self, value: u64) -> Seed {
        assert!(
            self.depth == 63 || value < (1u64 << self.depth),
            "value {value} outside the {}-bit domain",
            self.depth
        );
        self.ggm.walk(&self.root, value, self.depth)
    }

    /// Evaluates the DPRF on a strictly increasing list of domain values in
    /// one pass, sharing GGM tree prefixes between neighbouring values.
    ///
    /// Independent [`eval`](Self::eval) calls cost `depth` child
    /// derivations each; for a dense sorted set the shared-prefix walk
    /// visits each needed tree node exactly once, which for `n` values in a
    /// `2^ℓ` domain is `O(n·(1 + ℓ − log₂ n))` instead of `O(n·ℓ)` — the
    /// difference between the Constant schemes' BuildIndex being
    /// DPRF-bound or not.
    pub fn eval_sorted(&self, values: &[u64]) -> Vec<Seed> {
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "values must be strictly increasing"
        );
        if let Some(&last) = values.last() {
            assert!(
                self.depth == 63 || last < (1u64 << self.depth),
                "value {last} outside the {}-bit domain",
                self.depth
            );
        }
        let mut out = Vec::with_capacity(values.len());
        self.eval_sorted_rec(&self.root, self.depth, 0, values, &mut out);
        out
    }

    /// DFS helper: `seed` is the GGM node whose subtree spans
    /// `[base, base + 2^height)`, `values` the sorted values inside it.
    fn eval_sorted_rec(
        &self,
        seed: &Seed,
        height: u32,
        base: u64,
        values: &[u64],
        out: &mut Vec<Seed>,
    ) {
        if values.is_empty() {
            return;
        }
        if height == 0 {
            out.push(*seed);
            return;
        }
        let mid = base + (1u64 << (height - 1));
        let split = values.partition_point(|&v| v < mid);
        let (lo, hi) = values.split_at(split);
        match (lo.is_empty(), hi.is_empty()) {
            (false, false) => {
                // Both subtrees populated: one keying serves both children.
                let (left, right) = self.ggm.expand(seed);
                self.eval_sorted_rec(&left, height - 1, base, lo, out);
                self.eval_sorted_rec(&right, height - 1, mid, hi, out);
            }
            (false, true) => {
                let left = self.ggm.child(seed, false);
                self.eval_sorted_rec(&left, height - 1, base, lo, out);
            }
            (true, false) => {
                let right = self.ggm.child(seed, true);
                self.eval_sorted_rec(&right, height - 1, mid, hi, out);
            }
            (true, true) => unreachable!("values checked non-empty"),
        }
    }

    /// Delegates the PRF over the sub-ranges described by `nodes`.
    ///
    /// Each node is given as `(level, index)`: the node at height `level`
    /// covering leaves `[index * 2^level, (index + 1) * 2^level)`. The
    /// covering-node lists are produced by the BRC/URC algorithms of
    /// `rsse-cover`; this function only turns them into GGM seeds.
    ///
    /// Like [`eval_sorted`](Self::eval_sorted), the walk **shares GGM
    /// prefixes** between covering nodes: the nodes of a BRC/URC cover sit
    /// on at most two root-to-leaf paths, so independent walks re-derive
    /// almost every inner node up to `2·log m` times — one DFS over the
    /// requested set derives each needed GGM node exactly once (the
    /// difference matters for URC, whose covers are larger by design). The
    /// returned token lists the node seeds in **input order**, and every
    /// seed is identical to an independent root walk — the
    /// `delegate_matches_per_node_walks` property pins the trapdoors
    /// unchanged.
    pub fn delegate(&self, nodes: &[(u32, u64)]) -> DprfToken {
        let mut targets: Vec<DelegateTarget> = Vec::with_capacity(nodes.len());
        for (pos, &(level, index)) in nodes.iter().enumerate() {
            assert!(level <= self.depth, "node level exceeds tree depth");
            let prefix_depth = self.depth - level;
            assert!(
                prefix_depth == 0 || index < (1u64 << prefix_depth),
                "node index {index} out of range at level {level}"
            );
            // A level == depth node is the root; the per-node walk ignored
            // `index` there (`walk(root, index, 0) == root` for any index),
            // so the DFS coordinates must too, or the target's leaf base
            // would land outside the tree.
            targets.push(DelegateTarget {
                base: if prefix_depth == 0 { 0 } else { index << level },
                prefix_depth,
                pos: pos as u32,
            });
        }
        // Lexicographic path order: ancestors sort before their descendants
        // (same leaf base, shorter prefix first), siblings by leaf base.
        targets.sort_unstable_by_key(|t| (t.base, t.prefix_depth));
        let mut out = vec![
            GgmNodeSeed {
                seed: [0u8; KEY_LEN],
                level: 0,
            };
            nodes.len()
        ];
        self.delegate_rec(&self.root, 0, 0, &targets, &mut out);
        DprfToken { nodes: out }
    }

    /// DFS helper of [`delegate`](Self::delegate): `seed` is the GGM node at
    /// depth `cur_depth` whose subtree's leftmost leaf is `base`; `targets`
    /// the (path-ordered) requested nodes inside that subtree.
    fn delegate_rec(
        &self,
        seed: &Seed,
        cur_depth: u32,
        base: u64,
        mut targets: &[DelegateTarget],
        out: &mut [GgmNodeSeed],
    ) {
        // Emit every target sitting exactly at this node (duplicates allowed),
        // then keep descending for any deeper targets below it.
        while let Some(first) = targets.first() {
            if first.prefix_depth != cur_depth {
                break;
            }
            out[first.pos as usize] = GgmNodeSeed {
                seed: *seed,
                level: self.depth - cur_depth,
            };
            targets = &targets[1..];
        }
        if targets.is_empty() {
            return;
        }
        // Remaining targets are strictly deeper, so cur_depth < self.depth.
        let height = self.depth - cur_depth;
        let mid = base + (1u64 << (height - 1));
        let split = targets.partition_point(|t| t.base < mid);
        let (lo, hi) = targets.split_at(split);
        match (lo.is_empty(), hi.is_empty()) {
            (false, false) => {
                // Both subtrees requested: one keying serves both children.
                let (left, right) = self.ggm.expand(seed);
                self.delegate_rec(&left, cur_depth + 1, base, lo, out);
                self.delegate_rec(&right, cur_depth + 1, mid, hi, out);
            }
            (false, true) => {
                let left = self.ggm.child(seed, false);
                self.delegate_rec(&left, cur_depth + 1, base, lo, out);
            }
            (true, false) => {
                let right = self.ggm.child(seed, true);
                self.delegate_rec(&right, cur_depth + 1, mid, hi, out);
            }
            (true, true) => unreachable!("targets checked non-empty"),
        }
    }

    /// Server-side expansion: derives all leaf-level DPRF values delegated by
    /// `token`, in the order the token lists its nodes (leaves of each node
    /// left-to-right). Requires no secret key.
    ///
    /// Allocates the full leaf buffer once and expands every node's subtree
    /// in place inside its slice of it (large subtrees fan out across
    /// threads inside [`Ggm::expand_subtree_into`]).
    pub fn expand_token(token: &DprfToken) -> Vec<Seed> {
        let ggm = Ggm::new();
        let total: usize = token
            .nodes
            .iter()
            .map(|n| {
                // Mirror expand_subtree_into's bound *before* sizing the
                // buffer, so an oversized node fails here rather than as an
                // allocation failure or slice panic.
                assert!(n.level <= 32, "refusing to expand more than 2^32 leaves");
                1usize << n.level
            })
            .sum();
        let mut out = vec![[0u8; KEY_LEN]; total];
        let mut offset = 0usize;
        for node in &token.nodes {
            let len = 1usize << node.level;
            ggm.expand_subtree_into(&node.seed, node.level, &mut out[offset..offset + len]);
            offset += len;
        }
        out
    }

    /// Convenience: number of leaf values a token expands to.
    pub fn token_coverage(token: &DprfToken) -> u64 {
        token.nodes.iter().map(|n| 1u64 << n.level).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prf::Key;
    use proptest::prelude::*;

    fn key(byte: u8) -> Key {
        Key::from_bytes([byte; KEY_LEN])
    }

    #[test]
    fn eval_is_deterministic_and_value_sensitive() {
        let dprf = Dprf::new(&key(1), 8);
        assert_eq!(dprf.eval(5), dprf.eval(5));
        assert_ne!(dprf.eval(5), dprf.eval(6));
    }

    #[test]
    fn delegation_of_single_leaf_equals_eval() {
        let dprf = Dprf::new(&key(2), 8);
        let token = dprf.delegate(&[(0, 77)]);
        let leaves = Dprf::expand_token(&token);
        assert_eq!(leaves, vec![dprf.eval(77)]);
    }

    #[test]
    fn delegation_of_inner_node_covers_exact_range() {
        // Node (level=2, index=3) covers leaves 12..16 of the domain.
        let dprf = Dprf::new(&key(3), 6);
        let token = dprf.delegate(&[(2, 3)]);
        let leaves = Dprf::expand_token(&token);
        assert_eq!(leaves.len(), 4);
        for (i, leaf) in leaves.iter().enumerate() {
            assert_eq!(*leaf, dprf.eval(12 + i as u64));
        }
    }

    #[test]
    fn paper_example_range_2_to_7() {
        // Figure 1 of the paper: domain {0..7}, BRC of [2,7] = {N_{2,3}, N_{4,7}}
        // i.e. nodes (level 1, index 1) and (level 2, index 1).
        let dprf = Dprf::new(&key(4), 3);
        let token = dprf.delegate(&[(1, 1), (2, 1)]);
        assert_eq!(token.len(), 2);
        assert_eq!(Dprf::token_coverage(&token), 6);
        let leaves = Dprf::expand_token(&token);
        let expected: Vec<_> = (2..=7).map(|v| dprf.eval(v)).collect();
        assert_eq!(leaves, expected);
    }

    #[test]
    fn token_size_accounts_seed_and_level() {
        let dprf = Dprf::new(&key(5), 10);
        let token = dprf.delegate(&[(0, 1), (3, 2), (5, 0)]);
        assert_eq!(token.size_bytes(), 3 * (KEY_LEN + 4));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn eval_out_of_domain_panics() {
        let dprf = Dprf::new(&key(6), 4);
        let _ = dprf.eval(16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn delegate_out_of_range_node_panics() {
        let dprf = Dprf::new(&key(6), 4);
        let _ = dprf.delegate(&[(2, 4)]); // only indices 0..4 exist at level 2
    }

    #[test]
    fn debug_output_hides_seed_bytes() {
        let dprf = Dprf::new(&key(9), 4);
        let token = dprf.delegate(&[(1, 0)]);
        let rendered = format!("{:?}", token.nodes[0]);
        assert!(rendered.contains("<32 bytes>"));
    }

    #[test]
    fn eval_sorted_matches_individual_evals() {
        let dprf = Dprf::new(&key(7), 16);
        let values: Vec<u64> = vec![0, 1, 2, 100, 101, 4000, 65535];
        let batch = dprf.eval_sorted(&values);
        let individual: Vec<_> = values.iter().map(|&v| dprf.eval(v)).collect();
        assert_eq!(batch, individual);
        assert!(dprf.eval_sorted(&[]).is_empty());
    }

    #[test]
    fn delegate_shares_prefixes_without_changing_trapdoors() {
        // The ISSUE's satellite guard: batched delegation must hand out the
        // exact seeds independent per-node root walks produced before —
        // trapdoors are on the wire, so they may not change. BRC of [2,7]
        // over a 3-bit domain plus a nested duplicate exercises sharing,
        // nesting, and duplicates at once.
        let dprf = Dprf::new(&key(12), 3);
        let nodes = [(1u32, 1u64), (2, 1), (1, 1), (0, 2)];
        let token = dprf.delegate(&nodes);
        assert_eq!(token.len(), nodes.len());
        for (&(level, index), got) in nodes.iter().zip(&token.nodes) {
            assert_eq!(got.level, level);
            let reference = dprf.ggm.walk(&dprf.root, index, dprf.depth - level);
            assert_eq!(got.seed, reference, "seed for node ({level}, {index})");
        }
    }

    #[test]
    fn delegate_of_root_level_node_ignores_index_like_walk_did() {
        // `walk(root, index, 0)` returns the root whatever `index` is, and
        // the old per-node delegate inherited that; the batched DFS must
        // reproduce it (regression for a base-out-of-tree underflow).
        let dprf = Dprf::new(&key(14), 3);
        let token = dprf.delegate(&[(0, 0), (3, 1)]);
        assert_eq!(token.nodes[0].seed, dprf.ggm.walk(&dprf.root, 0, 3));
        assert_eq!(token.nodes[1].level, 3);
        assert_eq!(
            token.nodes[1].seed, dprf.root,
            "level == depth delegates the root"
        );
    }

    #[test]
    fn delegate_handles_max_depth_domain() {
        let dprf = Dprf::new(&key(13), 63);
        let nodes = [(63u32, 0u64), (62, 1), (0, (1u64 << 62) + 17)];
        let token = dprf.delegate(&nodes);
        for (&(level, index), got) in nodes.iter().zip(&token.nodes) {
            assert_eq!(
                got.seed,
                dprf.ggm.walk(&dprf.root, index, dprf.depth - level)
            );
        }
    }

    proptest! {
        /// Batched delegation returns, at every input position, exactly the
        /// seed an independent root walk derives — for arbitrary node sets
        /// (unsorted, overlapping, nested, duplicated).
        #[test]
        fn delegate_matches_per_node_walks(
            raw in proptest::collection::vec((0u32..=8, any::<u64>()), 0..24))
        {
            let depth = 8u32;
            let dprf = Dprf::new(&key(11), depth);
            let nodes: Vec<(u32, u64)> = raw
                .into_iter()
                .map(|(level, index)| {
                    let prefix_depth = depth - level;
                    // At prefix_depth == 0 any index is accepted (and
                    // ignored, as the zero-step walk ignores it).
                    let index = if prefix_depth == 0 { index } else { index % (1u64 << prefix_depth) };
                    (level, index)
                })
                .collect();
            let token = dprf.delegate(&nodes);
            prop_assert_eq!(token.len(), nodes.len());
            for (&(level, index), got) in nodes.iter().zip(&token.nodes) {
                prop_assert_eq!(got.level, level);
                let reference = dprf.ggm.walk(&dprf.root, index, depth - level);
                prop_assert_eq!(got.seed, reference);
            }
        }

        #[test]
        fn eval_sorted_agrees_on_arbitrary_sets(values in proptest::collection::hash_set(any::<u64>(), 0..40)) {
            let depth = 63u32;
            let dprf = Dprf::new(&key(9), depth);
            let mut sorted: Vec<u64> = values.into_iter().map(|v| v >> 1).collect();
            sorted.sort_unstable();
            sorted.dedup();
            let batch = dprf.eval_sorted(&sorted);
            for (value, seed) in sorted.iter().zip(&batch) {
                prop_assert_eq!(*seed, dprf.eval(*value));
            }
        }

        #[test]
        fn expansion_matches_direct_eval(start in 0u64..200, level in 0u32..5) {
            let depth = 8u32;
            let max_index = 1u64 << (depth - level);
            let index = start % max_index;
            let dprf = Dprf::new(&key(8), depth);
            let token = dprf.delegate(&[(level, index)]);
            let leaves = Dprf::expand_token(&token);
            let base = index << level;
            prop_assert_eq!(leaves.len() as u64, 1u64 << level);
            for (i, leaf) in leaves.iter().enumerate() {
                prop_assert_eq!(*leaf, dprf.eval(base + i as u64));
            }
        }
    }
}
