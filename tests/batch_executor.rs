//! The batch-executor battery: cross-query probe deduplication must be a
//! pure execution-layer optimization.
//!
//! The contract pinned here, across seeds × {in_memory, on_disk} backends:
//!
//! * **Byte-identical outcomes** — `answer_batch` (dedup on and off)
//!   returns exactly what serving each query alone returns, which in turn
//!   is exactly what the raw `QueryServer` returns: same ids in the same
//!   order, same `QueryStats`.
//! * **Identical per-query probe counts** — the per-query leakage profile
//!   (probes demanded: every hit plus each token's terminating miss) does
//!   not depend on dedup; only the *storage* read count shrinks, and the
//!   saving is visible exclusively in the executor's own counters.
//! * **Control plane** — deadlines cut one query at a round boundary with
//!   a typed partial without cancelling probes other queries share;
//!   transient faults are absorbed per unique probe; the batched drain
//!   serves the same fair plan as the sequential drain.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse::core::schemes::log_brc_urc::LogScheme;
use rsse::core::{QueryServer, StorageConfig};
use rsse::prelude::*;
use rsse::serve::{
    AdmissionConfig, BatchConfig, ResilientServer, ServeConfig, ServeError, VirtualClock,
};
use rsse::sse::test_support::TempDir;
use rsse::sse::{FaultInjectable, FaultPlan, SearchToken};
use std::sync::Arc;
use std::time::Duration;

fn dataset(seed: u64) -> Dataset {
    let domain = Domain::new(1 << 12);
    let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 0xda7a);
    let records = (0..1_500u64)
        .map(|i| Record::new(i, rng.gen_range(0..domain.size())))
        .collect();
    Dataset::new(domain, records).expect("values fit the domain")
}

/// A Zipf-flavored query mix with guaranteed overlap: a few hot ranges
/// repeated (some byte-identical, some jittered) plus scattered cold ones.
fn query_mix(seed: u64, domain: Domain, n: usize) -> Vec<Range> {
    let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 0x9e37_79b9);
    let hot: Vec<u64> = (0..4)
        .map(|_| rng.gen_range(0..domain.size() - 200))
        .collect();
    (0..n)
        .map(|i| {
            if i % 4 == 3 {
                let lo = rng.gen_range(0..domain.size() - 200);
                Range::new(lo, lo + rng.gen_range(1..200u64))
            } else {
                let center = hot[rng.gen_range(0..hot.len())];
                let jitter = if i % 2 == 0 {
                    0
                } else {
                    rng.gen_range(0..16u64)
                };
                Range::new(center + jitter, center + jitter + 120)
            }
        })
        .collect()
}

/// One backend lane under test: a Logarithmic-BRC client paired with a
/// `QueryServer` over its index, plus the tempdir guard for disk builds.
struct Lane {
    name: &'static str,
    client: LogScheme,
    qs: QueryServer,
    _dir: Option<TempDir>,
}

/// Builds both backend lanes for one seed: an in-memory sharded index, and
/// an on-disk build reopened through the budgeted block cache (64 KiB —
/// small enough that the batch sweeps evict).
fn lanes(seed: u64, tag: &str) -> Vec<Lane> {
    let data = dataset(seed);

    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let (client, server) = LogScheme::build_sharded_with(&data, CoverKind::Brc, 4, &mut rng);
    let mem = Lane {
        name: "in_memory",
        client,
        qs: server.into_query_server(),
        _dir: None,
    };

    let dir = TempDir::new(tag);
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let (client, server) = LogScheme::build_full_stored(
        &data,
        CoverKind::Brc,
        false,
        &StorageConfig::on_disk(4, dir.path()),
        &mut rng,
    )
    .expect("on-disk build");
    drop(server);
    let qs = QueryServer::open_dir_with_budget(dir.path(), Some(64 << 10))
        .expect("reopen budgeted on-disk index");
    let disk = Lane {
        name: "on_disk",
        client,
        qs,
        _dir: Some(dir),
    };

    vec![mem, disk]
}

fn config_with(dedup: bool) -> ServeConfig {
    ServeConfig {
        batch: BatchConfig {
            dedup,
            workers: Some(3),
        },
        ..ServeConfig::default()
    }
}

/// The headline property, swept across seeds and backends: batched-deduped
/// execution is outcome- and leakage-equivalent to naive per-query
/// execution, and only the storage probe count shrinks.
#[test]
fn batched_dedup_is_byte_identical_with_identical_probe_counts() {
    for seed in [1u64, 7, 23] {
        for lane in lanes(seed, "batch-prop") {
            let (backend, qs) = (lane.name, lane.qs);
            let domain = Domain::new(1 << 12);
            let queries: Vec<Vec<SearchToken>> = query_mix(seed, domain, 48)
                .into_iter()
                .filter_map(|r| lane.client.trapdoor(r))
                .collect();
            assert!(queries.len() >= 40, "query mix must mostly be in-domain");

            // Three servers over clones of one backend: dedup on, dedup
            // off, and the naive sequential path.
            let dedup_on = ResilientServer::new(qs.clone(), config_with(true));
            let dedup_off = ResilientServer::new(qs.clone(), config_with(false));
            let naive = ResilientServer::new(qs, config_with(true));

            let batched = dedup_on.answer_batch(&queries);
            let undeduped = dedup_off.answer_batch(&queries);
            let sequential: Vec<_> = queries.iter().map(|q| naive.answer(q)).collect();

            for (i, ((a, b), c)) in batched.iter().zip(&undeduped).zip(&sequential).enumerate() {
                let a = a.as_ref().expect("healthy backend");
                let b = b.as_ref().expect("healthy backend");
                let c = c.as_ref().expect("healthy backend");
                assert_eq!(
                    a, b,
                    "dedup on/off outcomes differ (seed {seed}, {backend}, query {i})"
                );
                assert_eq!(
                    a, c,
                    "batched/sequential outcomes differ (seed {seed}, {backend}, query {i})"
                );
            }

            // Per-query probe counts (the leakage profile) are identical:
            // the demanded-probe totals of all three paths agree.
            let on = dedup_on.stats();
            let off = dedup_off.stats();
            let seq = naive.stats();
            assert_eq!(
                on.probes_resolved, seq.probes_resolved,
                "dedup must not change demanded probe counts (seed {seed}, {backend})"
            );
            assert_eq!(
                off.probes_resolved, seq.probes_resolved,
                "batching alone must not change demanded probe counts (seed {seed}, {backend})"
            );
            assert_eq!(on.batch_probes_demanded, off.batch_probes_demanded);

            // Dedup off issues every demand to storage; dedup on strictly
            // fewer (the mix guarantees byte-identical hot queries).
            assert_eq!(off.batch_probes_unique, off.batch_probes_demanded);
            assert_eq!(off.batch_dedup_hits, 0);
            assert!(
                on.batch_probes_unique < on.batch_probes_demanded,
                "hot mix must dedup some probes (seed {seed}, {backend})"
            );
            assert_eq!(
                on.batch_dedup_hits,
                on.batch_probes_demanded - on.batch_probes_unique
            );
            assert!(on.batch_rounds > 0 && on.batch_max_lane_depth > 0);
        }
    }
}

/// An all-duplicates batch collapses to one query's worth of storage
/// probes, regardless of batch width.
#[test]
fn identical_queries_share_every_probe() {
    for lane in lanes(5, "batch-dup") {
        let (backend, qs) = (lane.name, lane.qs);
        let tokens = lane
            .client
            .trapdoor(Range::new(100, 900))
            .expect("in-domain");
        let queries: Vec<Vec<SearchToken>> = (0..16).map(|_| tokens.clone()).collect();
        let serve = ResilientServer::new(qs, config_with(true));
        let outcomes = serve.answer_batch(&queries);
        let first = outcomes[0].as_ref().expect("healthy backend");
        for slot in &outcomes {
            assert_eq!(slot.as_ref().expect("healthy backend"), first);
        }
        let stats = serve.stats();
        assert_eq!(
            stats.batch_probes_demanded,
            16 * stats.batch_probes_unique,
            "16 clones must demand 16× the unique probes ({backend})"
        );
        assert!(
            stats.batch_dedup_hit_rate() > 0.93,
            "hit rate {:.3} must approach 15/16 ({backend})",
            stats.batch_dedup_hit_rate()
        );
    }
}

/// Transient storage faults are absorbed per unique probe inside the batch;
/// outcomes stay byte-identical to the healthy server's.
#[test]
fn batch_absorbs_transient_faults_byte_identically() {
    let lane = lanes(11, "batch-fault").remove(0);
    let qs = lane.qs;
    let queries: Vec<Vec<SearchToken>> = query_mix(11, Domain::new(1 << 12), 24)
        .into_iter()
        .filter_map(|r| lane.client.trapdoor(r))
        .collect();

    let healthy = ResilientServer::new(qs.clone(), config_with(true));
    let expected = healthy.answer_batch(&queries);

    let mut chaotic = qs;
    chaotic.inject_fault_plan(FaultPlan::transient_window(2, 4));
    let degraded = ResilientServer::new(chaotic, config_with(true));
    let recovered = degraded.answer_batch(&queries);

    for (slot, expect) in recovered.iter().zip(&expected) {
        assert_eq!(
            slot.as_ref().expect("retries absorb the window"),
            expect.as_ref().expect("healthy backend"),
        );
    }
    let stats = degraded.stats();
    assert!(stats.faults_absorbed > 0, "the window must have been hit");
    assert_eq!(stats.retry_exhausted, 0);
}

/// A query whose deadline expired while queued is cut at the first round
/// boundary with a typed zero-probe partial — and the live query sharing
/// its exact probes still completes, byte-identical: cutting a demander
/// never cancels shared work.
#[test]
fn expired_deadline_cuts_query_without_cancelling_shared_probes() {
    let lane = lanes(3, "batch-deadline").remove(0);
    let qs = lane.qs;
    let tokens = lane
        .client
        .trapdoor(Range::new(50, 700))
        .expect("in-domain");

    let clock = Arc::new(VirtualClock::new());
    let config = ServeConfig {
        default_deadline: Some(Duration::from_millis(100)),
        ..config_with(true)
    };
    let reference = ResilientServer::new(qs.clone(), config_with(true));
    let expected = reference.answer(&tokens).expect("healthy backend");

    let serve = ResilientServer::with_clock(qs, config, clock.clone());
    serve
        .enqueue("tenant-a", tokens.clone())
        .expect("queue empty");
    clock.advance(Duration::from_millis(200)); // tenant-a's deadline passes
    serve
        .enqueue("tenant-b", tokens.clone())
        .expect("queue empty");

    let drained = serve.drain_batched();
    assert_eq!(drained.len(), 2);
    match &drained[0].1 {
        Err(ServeError::DeadlineExceeded { partial, .. }) => {
            assert_eq!(partial.probes_resolved, 0, "cut before any probe");
            assert!(partial.ids.is_empty());
        }
        other => panic!("tenant-a must be cut by its deadline, got {other:?}"),
    }
    assert_eq!(
        drained[1].1.as_ref().expect("tenant-b is within deadline"),
        &expected,
        "the surviving demander of the shared probes must complete identically"
    );
}

/// The batched drain serves the same oldest-tenant-fair plan as the
/// sequential drain: same tickets in the same order, byte-identical
/// outcomes.
#[test]
fn drain_batched_matches_sequential_drain() {
    let lane = lanes(9, "batch-drain").remove(0);
    let qs = lane.qs;
    let ranges = query_mix(9, Domain::new(1 << 12), 12);

    let sequential = ResilientServer::new(qs.clone(), config_with(true));
    let batched = ResilientServer::new(qs, config_with(true));
    for (i, range) in ranges.iter().enumerate() {
        let Some(tokens) = lane.client.trapdoor(*range) else {
            continue;
        };
        let tenant = format!("tenant-{}", i % 3);
        sequential.enqueue(&tenant, tokens.clone()).expect("fits");
        batched.enqueue(&tenant, tokens).expect("fits");
    }

    let a = sequential.drain();
    let b = batched.drain_batched();
    assert_eq!(a.len(), b.len());
    for ((ticket_a, outcome_a), (ticket_b, outcome_b)) in a.iter().zip(&b) {
        assert_eq!(ticket_a, ticket_b, "same fair plan order");
        assert_eq!(
            outcome_a.as_ref().expect("healthy backend"),
            outcome_b.as_ref().expect("healthy backend"),
        );
    }
}

/// The unattributed serving paths admit as the *configured* default tenant
/// (no more hardcoded `"adhoc"`): pressure sheds report it by name.
#[test]
fn default_tenant_is_taken_from_config() {
    let lane = lanes(13, "batch-tenant").remove(1);
    assert_eq!(lane.name, "on_disk");
    let config = ServeConfig {
        default_tenant: "reporting".to_string(),
        admission: AdmissionConfig {
            // Any resident ciphertext sheds — the second query must trip.
            shed_at_resident_bytes: Some(0),
            ..Default::default()
        },
        ..ServeConfig::default()
    };
    let tokens = lane.client.trapdoor(Range::new(0, 800)).expect("in-domain");
    let serve = ResilientServer::new(lane.qs, config);
    serve
        .answer(&tokens)
        .expect("cold cache: nothing resident yet");
    match serve.answer(&tokens) {
        Err(ServeError::Overloaded { tenant, .. }) => {
            assert_eq!(tenant, "reporting", "shed must name the configured tenant");
        }
        other => panic!("warm cache must shed for pressure, got {other:?}"),
    }
}
