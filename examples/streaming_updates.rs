//! Streaming-updates scenario: nightly batches of inserts, edits and
//! deletions over an encrypted, range-searchable dataset with forward
//! privacy (Section 7 of the paper).
//!
//! Each batch becomes a fresh static index under a fresh key; the manager
//! consolidates batches hierarchically (log-structured merge, step `s`), so
//! the number of live indexes — and therefore per-query overhead — stays
//! logarithmic in the number of batches.
//!
//! Run with:
//! ```sh
//! cargo run --release --example streaming_updates
//! ```

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse::core::schemes::log_brc_urc::LogScheme;
use rsse::prelude::*;

fn main() {
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let domain = Domain::new(1 << 16);
    let config = UpdateConfig {
        consolidation_step: 4,
        // Consolidation rebuilds go through the sharded BuildIndex: 2^4
        // label-prefix shards assemble in parallel on every merge.
        shard_bits: 4,
        // In-memory instances; see examples/persistent_server.rs for the
        // on-disk backend (UpdateConfig::storage_root).
        storage_root: None,
        // Only meaningful with a storage_root: bounds the resident
        // ciphertext blocks of each persisted instance.
        cache_budget: None,
    };
    let mut manager: UpdateManager<LogScheme> = UpdateManager::new(domain, config);

    println!("ingesting 20 nightly batches (consolidation step s = 4)\n");
    println!(
        "{:<8} {:>10} {:>16} {:>14} {:>14}",
        "night", "live ids", "active indexes", "index entries", "consolidations"
    );

    let mut next_id: u64 = 0;
    let mut live: Vec<(u64, u64)> = Vec::new(); // (id, value) the owner knows

    for night in 1..=20u32 {
        let mut batch: Vec<UpdateEntry> = Vec::new();

        // 200 new readings per night.
        for _ in 0..200 {
            let value = rng.gen_range(0..domain.size());
            batch.push(UpdateEntry::insert(next_id, value));
            live.push((next_id, value));
            next_id += 1;
        }
        // A few corrections…
        for _ in 0..5 {
            if live.is_empty() {
                break;
            }
            let idx = rng.gen_range(0..live.len());
            let new_value = rng.gen_range(0..domain.size());
            live[idx].1 = new_value;
            batch.push(UpdateEntry::modify(live[idx].0, new_value));
        }
        // …and a few deletions.
        for _ in 0..10 {
            if live.is_empty() {
                break;
            }
            let idx = rng.gen_range(0..live.len());
            let (id, value) = live.swap_remove(idx);
            batch.push(UpdateEntry::delete(id, value));
        }

        manager.ingest_batch(batch, &mut rng);
        println!(
            "{:<8} {:>10} {:>16} {:>14} {:>14}",
            night,
            live.len(),
            manager.active_instances(),
            manager.index_stats().entries,
            manager.consolidations()
        );
    }

    // Verify a few range queries against the owner's plaintext bookkeeping.
    println!("\nverifying query results against the plaintext state:");
    for (lo, hi) in [(0u64, 1 << 15), (1 << 14, 3 << 14), (60_000, 65_535)] {
        let range = Range::new(lo, hi);
        let outcome = manager.query(range);
        let mut expected: Vec<u64> = live
            .iter()
            .filter(|(_, v)| range.contains(*v))
            .map(|(id, _)| *id)
            .collect();
        expected.sort_unstable();
        let mut got = outcome.ids.clone();
        got.sort_unstable();
        assert_eq!(got, expected, "range {range} disagreed with ground truth");
        println!(
            "  {range}: {} tuples, {} tokens across {} active indexes",
            expected.len(),
            outcome.stats.tokens_sent,
            manager.active_instances()
        );
    }

    println!(
        "\nForward privacy: every batch is encrypted under its own key, so search\n\
         tokens issued before a batch existed cannot decrypt anything inside it;\n\
         consolidation re-encrypts merged batches with yet another fresh key."
    );
}
