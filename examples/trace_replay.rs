//! Trace-driven open-loop replay against the resilient serving layer.
//!
//! Benches that issue queries back-to-back (closed loop) hide queueing: a
//! stalled server just slows the generator down. This example does what a
//! real load test should — it generates a deterministic, multi-tenant trace
//! up front (Zipf-hotspot range queries on Poisson arrivals), then replays
//! it **open-loop**: every event fires at its trace-dictated send time, and
//! latency is measured from that scheduled time, so a server that falls
//! behind shows the slip in its tail percentiles instead of silently
//! back-pressuring the generator (the coordinated-omission correction).
//!
//! The same seed always produces a byte-identical trace (checked here via
//! the trace digest), which is what makes two replay runs comparable.
//!
//! Run with:
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse::core::schemes::log_brc_urc::LogScheme;
use rsse::prelude::*;
use rsse::workload::{replay, ArrivalProcess, ReplayConfig, ResilientTarget, TraceSpec};
use std::time::Duration;

fn main() {
    // ---------------------------------------------------------------
    // 1. A server worth load-testing: 20,000 tuples behind the full
    //    resilient serving stack (admission, deadlines, retries).
    // ---------------------------------------------------------------
    let mut rng = ChaCha20Rng::seed_from_u64(42);
    let domain = Domain::new(1 << 16);
    let records: Vec<Record> = (0..20_000u64)
        .map(|i| Record::new(i, (i * 6151 + 17) % domain.size()))
        .collect();
    let dataset = Dataset::new(domain, records).expect("values fit the domain");
    let (client, server) = LogScheme::build_sharded_with(&dataset, CoverKind::Brc, 4, &mut rng);
    let serve = ResilientServer::new(server.into_query_server(), ServeConfig::default());

    // ---------------------------------------------------------------
    // 2. The trace: one virtual second of Poisson arrivals at 800/s,
    //    4 tenants, queries clustered on 8 Zipf-weighted hotspots.
    // ---------------------------------------------------------------
    let spec = TraceSpec::queries_only(
        domain,
        ArrivalProcess::Poisson {
            rate_per_sec: 800.0,
        },
        Duration::from_secs(1),
    );
    let trace = spec.generate(&mut ChaCha20Rng::seed_from_u64(7));
    let again = spec.generate(&mut ChaCha20Rng::seed_from_u64(7));
    assert_eq!(
        trace.digest(),
        again.digest(),
        "same seed must regenerate a byte-identical trace"
    );
    println!(
        "trace {:#018x}: {} events, {} tenants, horizon {:.2}s",
        trace.digest(),
        trace.len(),
        trace.tenants.len(),
        trace.horizon().as_secs_f64(),
    );

    // ---------------------------------------------------------------
    // 3. Replay it open-loop, 4x faster than the trace says.
    // ---------------------------------------------------------------
    let target = ResilientTarget::new(&serve, |range| client.trapdoor(range), None);
    let report = replay(
        &trace,
        &target,
        &ReplayConfig {
            time_scale: 4.0,
            ..ReplayConfig::default()
        },
    );

    // ---------------------------------------------------------------
    // 4. The numbers a load test is for: tails, throughput, per-tenant
    //    outcome classes — and a hard zero on unexpected errors.
    // ---------------------------------------------------------------
    let totals = report.totals();
    assert_eq!(report.events, trace.len() as u64, "every event fires once");
    assert_eq!(report.unexpected_errors(), 0, "healthy replay");
    assert_eq!(
        totals.served_ok + totals.partial + totals.shed,
        totals.queries,
        "every query lands in a typed outcome class"
    );
    println!(
        "replayed {} queries in {:.2}s ({:.0}/s offered, {:.0}/s achieved)",
        totals.queries,
        report.wall.as_secs_f64(),
        report.offered_per_sec,
        report.achieved_per_sec,
    );
    println!(
        "latency from scheduled send: p50 {:.2}ms  p99 {:.2}ms  p999 {:.2}ms  max {:.2}ms \
         ({} late events, max lag {:.2}ms)",
        report.latency.quantile(0.50).as_secs_f64() * 1e3,
        report.latency.quantile(0.99).as_secs_f64() * 1e3,
        report.latency.quantile(0.999).as_secs_f64() * 1e3,
        report.latency.max().as_secs_f64() * 1e3,
        report.late_events,
        report.max_lag.as_secs_f64() * 1e3,
    );
    for tenant in &report.tenants {
        println!(
            "  {}: {} queries, {} served, {} shed, {} partial",
            tenant.tenant,
            tenant.counts.queries,
            tenant.counts.served_ok,
            tenant.counts.shed,
            tenant.counts.partial,
        );
    }
}
