//! Vendored minimal property-testing harness (offline stand-in for the
//! parts of `proptest` this workspace uses).
//!
//! Supported surface: the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` header), `any::<T>()` for the primitive types
//! used in the workspace, integer-range strategies, tuple strategies,
//! `proptest::collection::{vec, hash_set}`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted: no shrinking
//! (failures report the generated inputs instead), and generation is
//! deterministic per test (seeded from a fixed constant plus the case
//! index) so CI runs are reproducible.

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::RngCore;

    /// A source of generated values.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + ((rng.next_u64() as u128) % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128) - (start as u128) + 1;
                    start + ((rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::test_runner::TestRng;
    use rand::RngCore;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only; magnitude spread over a few decades.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let scale = 10f64.powi((rng.next_u64() % 13) as i32 - 6);
            (unit - 0.5) * 2.0 * scale
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> super::strategy::Any<T> {
        super::strategy::Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngCore;

    /// A size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + (rng.next_u64() as usize) % (self.max - self.min)
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `HashSet<S::Value>`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut out = std::collections::HashSet::with_capacity(target);
            // Bounded retries in case the element strategy's support is
            // smaller than the requested size.
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Generates hash sets of `element` values with size in `size`.
    pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Case-loop runner and configuration.

    use rand::SeedableRng;

    /// RNG handed to strategies.
    pub type TestRng = rand_chacha::ChaCha20Rng;

    /// Runner configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the workspace's debug
            // (`cargo test`) runs fast while still exercising the space.
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Overrides the number of cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a case did not produce a verdict.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
    }

    /// Result of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runs the case loop for one property.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner.
        pub fn new(config: ProptestConfig) -> Self {
            Self { config }
        }

        /// Runs `case` until `config.cases` cases were accepted (assume
        /// rejections do not count, up to a bounded retry budget).
        pub fn run(&mut self, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
            let mut accepted = 0u32;
            let mut attempts = 0u64;
            let max_attempts = (self.config.cases as u64) * 16 + 64;
            while accepted < self.config.cases && attempts < max_attempts {
                // Deterministic per (case index): reproducible CI, varied data.
                let mut rng = TestRng::seed_from_u64(0x5eed_0000_0000 + attempts);
                match case(&mut rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject) => {}
                }
                attempts += 1;
            }
        }
    }
}

/// The usual proptest prelude.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[doc(hidden)]
pub use rand as __rand;

/// Declares property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg_pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(|__proptest_rng| {
                $(let $arg_pat = $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Asserts within a property (panics with the formatted message on failure;
/// no shrinking in this vendored harness).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_runs_requested_cases() {
        let mut count = 0u32;
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(17));
        runner.run(|_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 0usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuple_and_nested(entries in crate::collection::vec(
            (crate::collection::vec(any::<u8>(), 1..4), any::<u64>()), 0..6))
        {
            for (bytes, _) in &entries {
                prop_assert!(!bytes.is_empty() && bytes.len() < 4);
            }
        }

        #[test]
        fn assume_rejects(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_parses(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn hash_set_reaches_size() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = crate::collection::hash_set(any::<u64>(), 3..6);
        let mut rng = crate::test_runner::TestRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = strat.new_value(&mut rng);
            assert!(s.len() >= 3 && s.len() < 6);
        }
    }
}
