//! The Logarithmic-SRC-i scheme (Section 6.3) — the paper's best
//! security/efficiency trade-off.
//!
//! Logarithmic-SRC can return up to `O(n)` false positives under skew
//! because its single covering node is chosen over the *domain*, where a
//! huge pile of tuples may sit on one value just outside the query. SRC-i
//! fixes this with a double index and one extra round:
//!
//! * `I1` indexes, for every **distinct domain value**, the contiguous range
//!   of positions its tuples occupy in the value-sorted order — a single
//!   `(value, [start, end])` document per distinct value — under the TDAG
//!   over the *domain* (`TDAG1`).
//! * `I2` indexes the tuples themselves, sorted by value (ties shuffled),
//!   under the TDAG over the *positions* `0 … n−1` (`TDAG2`).
//!
//! A query first asks `I1` for the SRC node of its range, learns which
//! position spans belong to qualifying values, merges them into one position
//! range, and then asks `I2` for the SRC node of that position range. False
//! positives drop to `O(R + r)` regardless of skew.

use crate::dataset::{Dataset, Record};
use crate::metrics::{IndexStats, QueryStats};
use crate::schemes::common::{
    clamp_query, decode_value_span, encode_value_span_array, grouped_fixed_index_external,
    grouped_fixed_index_stored, try_search_ids,
};
use crate::traits::{QueryOutcome, RangeScheme};
use rand::{CryptoRng, RngCore};
use rsse_cover::{Domain, Range, Tdag};
use rsse_crypto::{permute, KeyChain};
use rsse_sse::{SearchToken, ShardedIndex, SseKey, SseScheme, StorageConfig, StorageError};
use std::path::Path;

/// Owner-side state of Logarithmic-SRC-i.
#[derive(Clone, Debug)]
pub struct LogSrcIScheme {
    key1: SseKey,
    key2: SseKey,
    tdag1: Tdag,
    tdag2: Tdag,
}

/// Server-side state: the two encrypted indexes (each sharded by label
/// prefix when built through [`LogSrcIScheme::build_impl_sharded`]).
#[derive(Clone, Debug)]
pub struct LogSrcIServer {
    index1: ShardedIndex,
    index2: ShardedIndex,
}

impl LogSrcIServer {
    /// Subdirectory of a saved SRC-i server holding the first index.
    pub const I1_SUBDIR: &'static str = "i1";
    /// Subdirectory of a saved SRC-i server holding the second index.
    pub const I2_SUBDIR: &'static str = "i2";

    /// Serializes both dictionaries into `dir` (subdirectories
    /// [`I1_SUBDIR`](Self::I1_SUBDIR) and [`I2_SUBDIR`](Self::I2_SUBDIR)).
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<(), StorageError> {
        let dir = dir.as_ref();
        self.index1.save_to_dir(dir.join(Self::I1_SUBDIR))?;
        self.index2.save_to_dir(dir.join(Self::I2_SUBDIR))
    }

    /// Cold-opens a server over two previously saved (or disk-built)
    /// dictionaries; both are served via paged reads without a rebuild.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let dir = dir.as_ref();
        Ok(Self {
            index1: ShardedIndex::open_dir(dir.join(Self::I1_SUBDIR))?,
            index2: ShardedIndex::open_dir(dir.join(Self::I2_SUBDIR))?,
        })
    }
}

/// Chaos-harness support (see the `rsse_sse::fault` module): injected
/// faults wrap **both** indexes, sharing one injector — probe counting is
/// global across the two dictionaries.
impl rsse_sse::FaultInjectable for LogSrcIServer {
    fn fault_indexes(&mut self) -> Vec<&mut ShardedIndex> {
        vec![&mut self.index1, &mut self.index2]
    }
}

impl LogSrcIScheme {
    /// Builds both indexes with unsharded (single-arena) dictionaries.
    pub fn build_impl<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        rng: &mut R,
    ) -> (Self, LogSrcIServer) {
        Self::build_impl_sharded(dataset, 0, rng)
    }

    /// Builds both indexes, each split into `2^shard_bits` in-memory
    /// label-prefix shards.
    pub fn build_impl_sharded<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        shard_bits: u32,
        rng: &mut R,
    ) -> (Self, LogSrcIServer) {
        Self::build_impl_stored(dataset, &StorageConfig::in_memory(shard_bits), rng)
            .expect("in-memory build cannot fail")
    }

    /// Builds both indexes on the backend `config` selects; with an
    /// on-disk backend `I1` and `I2` are streamed into the
    /// [`I1_SUBDIR`](LogSrcIServer::I1_SUBDIR) /
    /// [`I2_SUBDIR`](LogSrcIServer::I2_SUBDIR) subdirectories of the
    /// configured directory.
    pub fn build_impl_stored<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<(Self, LogSrcIServer), StorageError> {
        let domain = *dataset.domain();
        let chain = KeyChain::generate(rng);
        let key1 = SseScheme::key_from(chain.derive(b"sse-i1"));
        let key2 = SseScheme::key_from(chain.derive(b"sse-i2"));
        let shuffle_key = chain.derive(b"shuffle");

        // Sort tuples by value; shuffle ties so the position of a tuple
        // within its value group is independent of its id.
        let mut sorted: Vec<Record> = dataset.sorted_by_value();
        let mut start = 0usize;
        while start < sorted.len() {
            let value = sorted[start].value;
            let mut end = start;
            while end < sorted.len() && sorted[end].value == value {
                end += 1;
            }
            permute::keyed_shuffle(&shuffle_key, &value.to_le_bytes(), &mut sorted[start..end]);
            start = end;
        }

        // TDAG1 over the domain indexes (value, position-span) documents.
        let tdag1 = Tdag::new(domain);
        let mut entries1: Vec<([u8; 13], [u8; 24])> = Vec::new();
        let mut i = 0usize;
        while i < sorted.len() {
            let value = sorted[i].value;
            let mut j = i;
            while j < sorted.len() && sorted[j].value == value {
                j += 1;
            }
            let payload = encode_value_span_array(value, i as u64, (j - 1) as u64);
            for node in tdag1.covering_nodes(value) {
                entries1.push((node.keyword(), payload));
            }
            i = j;
        }
        let index1 = grouped_fixed_index_stored(
            &key1,
            &chain.derive(b"shuffle-i1"),
            entries1,
            &config.subdir(LogSrcIServer::I1_SUBDIR),
            rng,
        )?;

        // TDAG2 over positions 0..n indexes the tuples themselves. This is
        // the corpus-sized index, so it streams entries into the grouped
        // build: with a build budget set, nothing n·log n-sized is ever
        // collected (the value-sorted record array itself stays resident —
        // a scheme-level floor documented in ARCHITECTURE.md).
        let position_domain = Domain::new(sorted.len().max(1) as u64);
        let tdag2 = Tdag::new(position_domain);
        let entries2 = sorted.iter().enumerate().flat_map(|(position, record)| {
            let payload = record.id_payload_array();
            tdag2
                .covering_nodes(position as u64)
                .into_iter()
                .map(move |node| (node.keyword(), payload))
        });
        let index2 = match grouped_fixed_index_external(
            &key2,
            &chain.derive(b"shuffle-i2"),
            entries2,
            &config.subdir(LogSrcIServer::I2_SUBDIR),
            rng,
        ) {
            Ok(index2) => index2,
            Err(error) => {
                // I2 failed after I1 was durably written: unwind I1 so a
                // failed build never leaves half a two-index server behind.
                if let rsse_sse::StorageBackend::OnDisk(dir) = &config.backend {
                    rsse_sse::storage::cleanup_partial_index(
                        &dir.join(LogSrcIServer::I1_SUBDIR),
                        1usize << config.shard_bits,
                    );
                    let _ = std::fs::remove_dir(dir);
                }
                return Err(error);
            }
        };
        Ok((
            Self {
                key1,
                key2,
                tdag1,
                tdag2,
            },
            LogSrcIServer { index1, index2 },
        ))
    }

    /// First-stage trapdoor: the SRC token over `TDAG1` for the query range.
    pub fn trapdoor_stage1(&self, range: Range) -> Option<SearchToken> {
        let clamped = clamp_query(self.tdag1.domain(), range)?;
        let node = self.tdag1.src_cover(clamped);
        Some(SseScheme::trapdoor(&self.key1, &node.keyword()))
    }

    /// Second-stage trapdoor: the SRC token over `TDAG2` for a merged
    /// position range.
    pub fn trapdoor_stage2(&self, positions: Range) -> Option<SearchToken> {
        let clamped = clamp_query(self.tdag2.domain(), positions)?;
        let node = self.tdag2.src_cover(clamped);
        Some(SseScheme::trapdoor(&self.key2, &node.keyword()))
    }

    /// Owner-side processing between the two rounds: decode the
    /// `(value, span)` documents returned by `I1`, keep those whose value
    /// satisfies the query, and merge their spans into one position range.
    pub fn merge_spans(range: Range, stage1_payloads: &[Vec<u8>]) -> Option<Range> {
        let mut merged: Option<Range> = None;
        for payload in stage1_payloads {
            let Some((value, start, end)) = decode_value_span(payload) else {
                continue;
            };
            if !range.contains(value) {
                continue;
            }
            let span = Range::new(start, end);
            merged = Some(match merged {
                Some(current) => current.union_hull(span),
                None => span,
            });
        }
        merged
    }

    /// The two TDAGs (domain, positions) — exposed for tests and benches.
    pub fn tdags(&self) -> (&Tdag, &Tdag) {
        (&self.tdag1, &self.tdag2)
    }
}

impl RangeScheme for LogSrcIScheme {
    type Server = LogSrcIServer;
    const NAME: &'static str = "Logarithmic-SRC-i";

    fn build<R: RngCore + CryptoRng>(dataset: &Dataset, rng: &mut R) -> (Self, Self::Server) {
        Self::build_impl(dataset, rng)
    }

    fn build_sharded<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        shard_bits: u32,
        rng: &mut R,
    ) -> (Self, Self::Server) {
        Self::build_impl_sharded(dataset, shard_bits, rng)
    }

    fn build_stored<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<(Self, Self::Server), StorageError> {
        Self::build_impl_stored(dataset, config, rng)
    }

    /// Fast reopen of a persisted two-index server: the owner state is a
    /// pure function of the RNG stream's leading `KeyChain` draw plus two
    /// public parameters (the domain and the dataset size, which fixes
    /// `TDAG2`'s position domain), so both dictionaries are cold-opened
    /// from their subdirectories without a rebuild. In-memory configs
    /// fall back to the deterministic rebuild.
    fn open_stored<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<(Self, Self::Server), StorageError> {
        match &config.backend {
            rsse_sse::StorageBackend::InMemory => Self::build_stored(dataset, config, rng),
            rsse_sse::StorageBackend::OnDisk(dir) => {
                // Exactly the key-material draws build_impl_stored makes
                // before it reads the dataset.
                let chain = KeyChain::generate(rng);
                let key1 = SseScheme::key_from(chain.derive(b"sse-i1"));
                let key2 = SseScheme::key_from(chain.derive(b"sse-i2"));
                let tdag1 = Tdag::new(*dataset.domain());
                let tdag2 = Tdag::new(Domain::new(dataset.len().max(1) as u64));
                let index1 = ShardedIndex::open_dir_with_budget(
                    dir.join(LogSrcIServer::I1_SUBDIR),
                    config.cache_budget,
                )?;
                let index2 = ShardedIndex::open_dir_with_budget(
                    dir.join(LogSrcIServer::I2_SUBDIR),
                    config.cache_budget,
                )?;
                Ok((
                    Self {
                        key1,
                        key2,
                        tdag1,
                        tdag2,
                    },
                    LogSrcIServer { index1, index2 },
                ))
            }
        }
    }

    fn try_query(&self, server: &Self::Server, range: Range) -> Result<QueryOutcome, StorageError> {
        let Some(clamped) = clamp_query(self.tdag1.domain(), range) else {
            return Ok(QueryOutcome::default());
        };
        // Round 1: query I1 for the (value, span) documents. A storage
        // failure here aborts before the second round is ever issued.
        let token1 = self
            .trapdoor_stage1(clamped)
            .expect("clamped range is inside the domain");
        let stage1 = SseScheme::search(&server.index1, &token1)?;
        let stage1_touched = stage1.len();

        // Owner merges the qualifying spans.
        let Some(positions) = Self::merge_spans(clamped, &stage1) else {
            // No qualifying value: empty result after a single round.
            return Ok(QueryOutcome {
                ids: Vec::new(),
                stats: QueryStats {
                    tokens_sent: 1,
                    token_bytes: SearchToken::SIZE_BYTES,
                    rounds: 1,
                    entries_touched: stage1_touched,
                    result_groups: 1,
                },
            });
        };

        // Round 2: query I2 for the tuples in the merged position range.
        let token2 = self
            .trapdoor_stage2(positions)
            .expect("merged positions are valid indices into the sorted dataset");
        let (ids, groups2) = try_search_ids(&server.index2, &[token2])?;
        Ok(QueryOutcome {
            ids,
            stats: QueryStats {
                tokens_sent: 2,
                token_bytes: 2 * SearchToken::SIZE_BYTES,
                rounds: 2,
                entries_touched: stage1_touched + groups2.iter().sum::<usize>(),
                result_groups: 1,
            },
        })
    }

    fn index_stats(server: &Self::Server) -> IndexStats {
        IndexStats {
            entries: server.index1.len(),
            storage_bytes: server.index1.storage_bytes(),
        }
        .merged(IndexStats {
            entries: server.index2.len(),
            storage_bytes: server.index2.storage_bytes(),
        })
    }
}

/// Index statistics of the two sub-indexes separately (the size of `I1`
/// leaks the number of distinct values — part of the scheme's extra
/// leakage, reported in the qualitative comparison of Section 6.3).
pub fn per_index_stats(server: &LogSrcIServer) -> (IndexStats, IndexStats) {
    (
        IndexStats {
            entries: server.index1.len(),
            storage_bytes: server.index1.storage_bytes(),
        },
        IndexStats {
            entries: server.index2.len(),
            storage_bytes: server.index2.storage_bytes(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Evaluation;
    use crate::schemes::common::encode_value_span;
    use crate::schemes::log_src::LogSrcScheme;
    use crate::schemes::testutil;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn results_are_complete_on_query_mix() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        for dataset in [testutil::skewed_dataset(), testutil::uniform_dataset()] {
            let (client, server) = LogSrcIScheme::build(&dataset, &mut rng);
            for range in testutil::query_mix(dataset.domain().size()) {
                let outcome = client.query(&server, range);
                testutil::assert_complete(&dataset, range, &outcome);
            }
        }
    }

    #[test]
    fn paper_example_figure4() {
        // D = {d0..d15} with d0..d9 on value 2, d10 on 4, d11-d12 on 5,
        // d13-d14 on 6, d15 on 7; query [3,5] must return d10, d11, d12 and
        // at most O(R + r) extras — in particular *not* the ten tuples on
        // value 2, which plain SRC would return.
        let records: Vec<Record> = (0..16u64)
            .map(|i| {
                let value = match i {
                    0..=9 => 2,
                    10 => 4,
                    11 | 12 => 5,
                    13 | 14 => 6,
                    _ => 7,
                };
                Record::new(i, value)
            })
            .collect();
        let dataset = Dataset::new(Domain::new(8), records).unwrap();
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let (client, server) = LogSrcIScheme::build(&dataset, &mut rng);
        let range = Range::new(3, 5);
        let outcome = client.query(&server, range);
        let eval = testutil::assert_complete(&dataset, range, &outcome);
        assert!(
            eval.false_positives <= 4,
            "SRC-i should return only a handful of false positives, got {}",
            eval.false_positives
        );
        // ids 0..9 are the value-2 pile; none of them may be returned.
        assert!(
            !outcome.ids.iter().any(|id| *id <= 9),
            "the value-2 pile must not be returned: {:?}",
            outcome.ids
        );
        assert_eq!(outcome.stats.rounds, 2);
        assert_eq!(outcome.stats.tokens_sent, 2);
    }

    #[test]
    fn src_i_beats_src_under_skew() {
        // The headline claim of Section 6.3, and the shape of Figure 6(b).
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let (src, src_server) = LogSrcScheme::build(&dataset, &mut rng);
        let (srci, srci_server) = LogSrcIScheme::build(&dataset, &mut rng);
        let range = Range::new(3, 5);
        let expected = dataset.matching_ids(range);
        let src_eval = Evaluation::compare(&src.query(&src_server, range).ids, &expected);
        let srci_eval = Evaluation::compare(&srci.query(&srci_server, range).ids, &expected);
        assert!(srci_eval.false_positives < src_eval.false_positives);
    }

    #[test]
    fn empty_result_needs_single_round() {
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let (client, server) = LogSrcIScheme::build(&dataset, &mut rng);
        // [40,45] contains no tuple values, and the SRC node around it
        // contains none either.
        let outcome = client.query(&server, Range::new(40, 45));
        assert!(outcome.is_empty());
        assert_eq!(outcome.stats.rounds, 1);
    }

    #[test]
    fn i1_size_tracks_distinct_values() {
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let (client, server) = LogSrcIScheme::build(&dataset, &mut rng);
        let (i1, i2) = per_index_stats(&server);
        let (tdag1, _) = client.tdags();
        let expected_i1: usize = {
            use std::collections::BTreeSet;
            let distinct: BTreeSet<u64> = dataset.records().iter().map(|r| r.value).collect();
            distinct
                .iter()
                .map(|v| tdag1.covering_nodes(*v).len())
                .sum()
        };
        assert_eq!(i1.entries, expected_i1);
        // I2 indexes every tuple once per covering TDAG2 node.
        assert!(i2.entries >= dataset.len());
        assert_eq!(
            LogSrcIScheme::index_stats(&server).entries,
            i1.entries + i2.entries
        );
    }

    #[test]
    fn merge_spans_filters_and_merges() {
        let payloads = vec![
            encode_value_span(2, 0, 9),
            encode_value_span(4, 10, 10),
            encode_value_span(5, 11, 12),
        ];
        // Query [3,5]: value 2 is filtered out, spans [10,10] and [11,12]
        // merge into [10,12] — the exact example of Section 6.3.
        assert_eq!(
            LogSrcIScheme::merge_spans(Range::new(3, 5), &payloads),
            Some(Range::new(10, 12))
        );
        assert_eq!(
            LogSrcIScheme::merge_spans(Range::new(0, 1), &payloads),
            None
        );
        // Corrupt payloads are ignored rather than crashing the owner.
        assert_eq!(
            LogSrcIScheme::merge_spans(Range::new(0, 10), &[vec![1, 2, 3]]),
            None
        );
    }

    #[test]
    fn out_of_domain_query_is_empty() {
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let (client, server) = LogSrcIScheme::build(&dataset, &mut rng);
        assert!(client.query(&server, Range::new(500, 600)).is_empty());
    }

    #[test]
    fn both_indexes_persist_and_cold_open() {
        use rsse_sse::StorageConfig;
        let dataset = testutil::skewed_dataset();
        let dir = testutil::TempDir::new("srci-disk");
        let mut rng_mem = ChaCha20Rng::seed_from_u64(31);
        let (_, mem_server) = LogSrcIScheme::build(&dataset, &mut rng_mem);
        let mut rng_disk = ChaCha20Rng::seed_from_u64(31);
        let (client, disk_server) = LogSrcIScheme::build_impl_stored(
            &dataset,
            &StorageConfig::on_disk(0, dir.path()),
            &mut rng_disk,
        )
        .unwrap();
        assert!(disk_server.index1.is_file_backed() && disk_server.index2.is_file_backed());
        drop(disk_server);
        let reopened = LogSrcIServer::open_dir(dir.path()).unwrap();
        for range in testutil::query_mix(dataset.domain().size()) {
            assert_eq!(
                client.query(&reopened, range).ids,
                client.query(&mem_server, range).ids,
                "cold-open must answer like the in-memory server for {range}"
            );
        }
        // Round-trip: save the reopened server and reopen again.
        let dir2 = testutil::TempDir::new("srci-resave");
        reopened.save_to_dir(dir2.path()).unwrap();
        let again = LogSrcIServer::open_dir(dir2.path()).unwrap();
        assert_eq!(again.index1.len(), reopened.index1.len());
        assert_eq!(again.index2.len(), reopened.index2.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn complete_and_false_positives_bounded_by_cover(
            values in proptest::collection::vec(0u64..100, 1..40),
            lo in 0u64..100,
            len in 1u64..100)
        {
            let domain = Domain::new(100);
            let records: Vec<Record> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| Record::new(i as u64, v))
                .collect();
            let dataset = Dataset::new(domain, records).unwrap();
            let mut rng = ChaCha20Rng::seed_from_u64(8);
            let (client, server) = LogSrcIScheme::build(&dataset, &mut rng);
            let hi = (lo + len - 1).min(99);
            let range = Range::new(lo, hi);
            let outcome = client.query(&server, range);
            let expected = dataset.matching_ids(range);
            let eval = Evaluation::compare(&outcome.ids, &expected);
            prop_assert!(eval.is_complete(), "missed ids for {range}");
            // The second index's cover is at most 4× the merged position
            // span, so false positives are bounded by 4(r + R) generously.
            let r = expected.len() as u64;
            prop_assert!((eval.false_positives as u64) <= 4 * (r + range.len()) + 4);
        }
    }
}
