//! Vendored minimal rayon-style data parallelism (offline stand-in).
//!
//! Supports the subset this workspace uses: `par_iter()` /
//! `into_par_iter()` over slices and vectors, `.map(..)`, and
//! `.collect::<Vec<_>>()`, plus a [`join`] helper. Work is distributed over
//! `std::thread::scope` workers pulling striped indices, and results are
//! reassembled **in input order**, so a parallel map is a drop-in,
//! deterministic replacement for the sequential one.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used for parallel maps.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("parallel task panicked"))
    })
}

/// A materialized parallel iterator: the owned items awaiting a map.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A parallel map pipeline: items plus the function to apply.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

/// A parallel map pipeline with per-worker state: each worker thread calls
/// `init` once and threads the value through every item it maps.
pub struct ParMapInit<I, G, F> {
    items: Vec<I>,
    init: G,
    f: F,
}

impl<I: Send> ParIter<I> {
    /// Attaches the mapping function.
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Attaches a mapping function with per-worker state: `init` runs once
    /// per worker thread, and the resulting value is passed (mutably) to
    /// every item that worker maps — the rayon idiom for scratch buffers
    /// reused across a worker's items instead of reallocated per item.
    pub fn map_init<T, R, G, F>(self, init: G, f: F) -> ParMapInit<I, G, F>
    where
        G: Fn() -> T + Sync,
        F: Fn(&mut T, I) -> R + Sync,
        R: Send,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

impl<I: Send, F> ParMap<I, F> {
    /// Executes the map on a scoped thread pool and collects in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(I) -> R + Sync,
        R: Send,
        C: FromParallelIterator<R>,
    {
        C::from_results(parallel_map(self.items, &self.f))
    }
}

impl<I: Send, G, F> ParMapInit<I, G, F> {
    /// Executes the map on a scoped thread pool and collects in input order.
    pub fn collect<C, T, R>(self) -> C
    where
        G: Fn() -> T + Sync,
        F: Fn(&mut T, I) -> R + Sync,
        R: Send,
        C: FromParallelIterator<R>,
    {
        C::from_results(parallel_map_init(self.items, &self.init, &self.f))
    }
}

/// Collection types a parallel map can gather into.
pub trait FromParallelIterator<R> {
    /// Builds the collection from in-order results.
    fn from_results(results: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_results(results: Vec<R>) -> Self {
        results
    }
}

fn parallel_map<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    parallel_map_init(items, &|| (), &|(), item| f(item))
}

fn parallel_map_init<I, T, R, G, F>(items: Vec<I>, init: &G, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    G: Fn() -> T + Sync,
    F: Fn(&mut T, I) -> R + Sync,
{
    let len = items.len();
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }

    // Workers pull indices from a shared counter (dynamic load balancing —
    // per-item costs can be very uneven, e.g. skewed keyword lists), write
    // results into their own (index, result) vectors, and the results are
    // reassembled in input order afterwards.
    let slots: Vec<std::sync::Mutex<Option<I>>> = items
        .into_iter()
        .map(|item| std::sync::Mutex::new(Some(item)))
        .collect();
    let next = AtomicUsize::new(0);

    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let slots = &slots;
                let next = &next;
                s.spawn(move || {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("no poisoning: slots are taken exactly once")
                            .take()
                            .expect("each slot is claimed by exactly one worker");
                        out.push((i, f(&mut state, item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });

    tagged.sort_unstable_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts into the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The usual rayon prelude.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_consumes_by_value() {
        let input: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 2);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![9];
        let out: Vec<u8> = one.into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn map_init_is_ordered_and_reuses_state() {
        let input: Vec<u64> = (0..5_000).collect();
        let out: Vec<u64> = input
            .par_iter()
            .map_init(
                || Vec::with_capacity(8),
                |scratch: &mut Vec<u64>, &x| {
                    scratch.clear();
                    scratch.push(x);
                    scratch[0] * 2
                },
            )
            .collect();
        assert_eq!(out, (0..5_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Mix of cheap and expensive items; result must still be ordered.
        let input: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = input
            .par_iter()
            .map(|&x| {
                if x % 7 == 0 {
                    (0..50_000u64).fold(x, |acc, v| acc.wrapping_add(v % 13))
                } else {
                    x
                }
            })
            .collect();
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], 1);
    }
}
