//! Integration tests pinning the qualitative claims of the paper's analysis
//! (Table 1 and Sections 4–7): storage ordering, query-size behaviour,
//! false-positive behaviour under skew, and the PB comparison.

use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse::prelude::*;

fn build_all(dataset: &Dataset, seed: u64) -> Vec<AnyScheme> {
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    SchemeKind::EVALUATED
        .iter()
        .map(|kind| AnyScheme::build(*kind, dataset, &mut rng))
        .collect()
}

fn stats_of(schemes: &[AnyScheme], kind: SchemeKind) -> IndexStats {
    schemes
        .iter()
        .find(|s| s.kind() == kind)
        .expect("scheme was built")
        .index_stats()
}

/// Table 1 storage column: O(n) < O(n log m) < O(n log m, TDAG) ≤ SRC-i,
/// and PB's O(n log n log m) exceeds the Logarithmic-BRC family.
#[test]
fn storage_ordering_matches_table1() {
    let mut rng = ChaCha20Rng::seed_from_u64(10);
    let dataset = gowalla_like(1_500, 1 << 14, &mut rng);
    let schemes = build_all(&dataset, 11);

    let constant = stats_of(&schemes, SchemeKind::ConstantBrc).entries;
    let log_brc = stats_of(&schemes, SchemeKind::LogarithmicBrc).entries;
    let log_src = stats_of(&schemes, SchemeKind::LogarithmicSrc).entries;
    let log_src_i = stats_of(&schemes, SchemeKind::LogarithmicSrcI).entries;
    let pb_bytes = stats_of(&schemes, SchemeKind::Pb).storage_bytes;
    let constant_bytes = stats_of(&schemes, SchemeKind::ConstantBrc).storage_bytes;

    assert_eq!(constant, dataset.len(), "Constant stores exactly n entries");
    assert!(constant < log_brc, "Constant < Logarithmic-BRC");
    assert!(
        log_brc < log_src,
        "the TDAG roughly doubles the replication"
    );
    assert!(
        log_src < log_src_i,
        "SRC-i adds the auxiliary index on top of SRC"
    );
    // PB's O(n log n log m) Bloom filters are far larger than the O(n)
    // Constant index. (At the paper's dataset sizes PB also exceeds
    // Logarithmic-BRC; at laptop scale the log n factor is small, so that
    // particular crossover is not asserted here — see EXPERIMENTS.md.)
    assert!(
        pb_bytes > 3 * constant_bytes,
        "PB's filters should dominate the Constant index ({pb_bytes} vs {constant_bytes})"
    );
}

/// On a near-uniform (Gowalla-like) dataset the SRC-i auxiliary index is almost
/// as large as the main one (most values are distinct), whereas on a skewed
/// (USPS-like) dataset it adds only a small overhead — the paper's Table 2
/// vs Figure 5 contrast.
#[test]
fn src_i_overhead_depends_on_distinct_values() {
    let mut rng = ChaCha20Rng::seed_from_u64(12);
    let uniform = gowalla_like(1_500, 1 << 14, &mut rng);
    let skewed = usps_like(1_500, 1 << 14, &mut rng);

    let ratio = |dataset: &Dataset| {
        let mut rng = ChaCha20Rng::seed_from_u64(13);
        let src = AnyScheme::build(SchemeKind::LogarithmicSrc, dataset, &mut rng);
        let src_i = AnyScheme::build(SchemeKind::LogarithmicSrcI, dataset, &mut rng);
        src_i.index_stats().entries as f64 / src.index_stats().entries as f64
    };

    let uniform_ratio = ratio(&uniform);
    let skewed_ratio = ratio(&skewed);
    assert!(
        uniform_ratio > skewed_ratio,
        "SRC-i overhead should be larger on distinct-heavy data \
         (uniform {uniform_ratio:.2} vs skewed {skewed_ratio:.2})"
    );
    assert!(
        skewed_ratio < 1.6,
        "on skewed data the auxiliary index must be comparatively small, got {skewed_ratio:.2}"
    );
}

/// Figure 6(b): under heavy skew SRC-i's false-positive rate is no worse
/// than SRC's, and strictly better for narrow queries next to a pile.
#[test]
fn src_i_false_positives_never_exceed_src_under_skew() {
    let mut rng = ChaCha20Rng::seed_from_u64(14);
    let dataset = usps_like(1_500, 1 << 13, &mut rng);
    let src = AnyScheme::build(SchemeKind::LogarithmicSrc, &dataset, &mut rng);
    let src_i = AnyScheme::build(SchemeKind::LogarithmicSrcI, &dataset, &mut rng);

    let mut src_fp_total = 0usize;
    let mut src_i_fp_total = 0usize;
    // The claim is about the aggregate trend, and individual query draws are
    // noisy: at 20 queries roughly a quarter of RNG seeds violate the
    // inequality by a few percent. 100 queries leaves a ~30% margin across
    // every seed we scanned.
    let queries = rsse::workload::random_queries_of_len(dataset.domain(), 1 << 9, 100, &mut rng);
    for query in queries {
        let expected = dataset.matching_ids(query);
        let src_eval = Evaluation::compare(&src.query(query).ids, &expected);
        let src_i_eval = Evaluation::compare(&src_i.query(query).ids, &expected);
        assert!(src_eval.is_complete() && src_i_eval.is_complete());
        src_fp_total += src_eval.false_positives;
        src_i_fp_total += src_i_eval.false_positives;
    }
    assert!(
        src_i_fp_total <= src_fp_total,
        "aggregate SRC-i false positives ({src_i_fp_total}) must not exceed SRC's ({src_fp_total})"
    );
}

/// Figure 8(a): URC query sizes depend only on the range size; SRC/SRC-i
/// query sizes are constant; BRC's vary with position but stay logarithmic.
#[test]
fn query_size_behaviour_matches_figure8() {
    let mut rng = ChaCha20Rng::seed_from_u64(15);
    let dataset = gowalla_like(800, 1 << 16, &mut rng);
    let schemes = build_all(&dataset, 16);
    let find = |kind: SchemeKind| schemes.iter().find(|s| s.kind() == kind).unwrap();

    let len = 777u64;
    let positions = [0u64, 1_000, 30_000, 65_535 - len];
    // URC: identical token count everywhere.
    let urc_counts: Vec<usize> = positions
        .iter()
        .map(|&lo| {
            find(SchemeKind::LogarithmicUrc)
                .trapdoor_cost(Range::new(lo, lo + len - 1))
                .0
        })
        .collect();
    assert!(
        urc_counts.windows(2).all(|w| w[0] == w[1]),
        "{urc_counts:?}"
    );

    // SRC / SRC-i: constant 1 and 2 tokens.
    for &lo in &positions {
        let range = Range::new(lo, lo + len - 1);
        assert_eq!(find(SchemeKind::LogarithmicSrc).trapdoor_cost(range).0, 1);
        assert_eq!(find(SchemeKind::LogarithmicSrcI).trapdoor_cost(range).0, 2);
    }

    // BRC: bounded by 2·log2(R) but larger than 1 for unaligned ranges.
    for &lo in &positions {
        let range = Range::new(lo, lo + len - 1);
        let (count, bytes) = find(SchemeKind::LogarithmicBrc).trapdoor_cost(range);
        assert!((1..=2 * 10).contains(&count));
        assert!(bytes >= count * 32);
    }

    // PB ships O(log R) dyadic ranges, each with several keyed hashes, so it
    // is the largest of the logarithmic-size trapdoors (Figure 8a).
    let range = Range::new(1_000, 1_000 + len - 1);
    let (_, pb_bytes) = find(SchemeKind::Pb).trapdoor_cost(range);
    let (_, brc_bytes) = find(SchemeKind::LogarithmicBrc).trapdoor_cost(range);
    assert!(pb_bytes > 0 && brc_bytes > 0);
}

/// Server work (entries touched) reflects the Table 1 search-time column:
/// Logarithmic-BRC touches exactly r entries, Constant touches r (plus GGM
/// expansion not visible in entry counts), SRC touches ≥ r.
#[test]
fn server_work_matches_search_time_analysis() {
    let mut rng = ChaCha20Rng::seed_from_u64(17);
    let dataset = usps_like(1_500, 1 << 13, &mut rng);
    let schemes = build_all(&dataset, 18);
    let find = |kind: SchemeKind| schemes.iter().find(|s| s.kind() == kind).unwrap();

    let query = Range::new(2_000, 6_000);
    let r = dataset.result_size(query);
    assert!(r > 0, "the query should match something");

    let brc = find(SchemeKind::LogarithmicBrc).query(query);
    let constant = find(SchemeKind::ConstantUrc).query(query);
    let src = find(SchemeKind::LogarithmicSrc).query(query);

    assert_eq!(brc.stats.entries_touched, r);
    assert_eq!(constant.stats.entries_touched, r);
    assert!(src.stats.entries_touched >= r);
}

/// Section 7: forward privacy — after ingesting a new batch, querying with
/// the manager returns the new tuples, but the indexes of older batches are
/// untouched (their statistics do not change), and consolidation reduces the
/// number of active indexes.
#[test]
fn update_manager_behaviour_matches_section7() {
    use rsse::core::schemes::log_brc_urc::LogScheme;

    let mut rng = ChaCha20Rng::seed_from_u64(19);
    let domain = Domain::new(1 << 12);
    let mut manager: UpdateManager<LogScheme> = UpdateManager::new(
        domain,
        UpdateConfig {
            consolidation_step: 3,
            ..UpdateConfig::default()
        },
    );

    for batch in 0..9u64 {
        let entries = (0..50u64)
            .map(|i| UpdateEntry::insert(batch * 1_000 + i, (batch * 131 + i * 7) % (1 << 12)))
            .collect();
        manager.ingest_batch(entries, &mut rng);
    }
    // 9 batches with s = 3 telescope into a single consolidated index.
    assert_eq!(manager.active_instances(), 1);
    assert!(manager.consolidations() >= 3);

    let all = manager.query(Range::new(0, (1 << 12) - 1));
    assert_eq!(all.ids.len(), 9 * 50);

    // Deleting a tuple hides it from subsequent queries even before the next
    // consolidation.
    let victim_query = Range::new(0, (1 << 12) - 1);
    let victim = all.ids[0];
    let victim_value = (0..1u64 << 12)
        .find(|v| manager.ground_truth(Range::point(*v)).contains(&victim))
        .expect("victim has a value");
    manager.ingest_batch(vec![UpdateEntry::delete(victim, victim_value)], &mut rng);
    let after = manager.query(victim_query);
    assert_eq!(after.ids.len(), 9 * 50 - 1);
    assert!(!after.ids.contains(&victim));
}
