//! Vendored minimal `rand` API surface (offline stand-in for rand 0.8).
//!
//! Provides exactly the traits and helpers this workspace uses: `RngCore`,
//! `CryptoRng`, `SeedableRng` (with the SplitMix64-based `seed_from_u64`),
//! `Rng::gen_range` over integer and float ranges, and
//! `seq::SliceRandom::shuffle`. Concrete generators live in the vendored
//! `rand_chacha` crate.

/// Core random number generation trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Marker trait for cryptographically secure generators.
pub trait CryptoRng {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// A generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (matching rand 0.8's
    /// documented behaviour) and constructs the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can describe a sampling range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128) - (self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                start + v as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling of slices, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift generator for the trait tests.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = XorShift(42);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut rng = XorShift(7);
        let mut items: Vec<u32> = (0..100).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(items, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = XorShift(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
