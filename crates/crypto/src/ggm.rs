//! The GGM length-doubling pseudorandom generator.
//!
//! Goldreich–Goldwasser–Micali construct a PRF from any length-doubling PRG
//! `G : {0,1}^λ → {0,1}^{2λ}` by walking a binary tree: the secret key is the
//! root seed, and the PRF value of an ℓ-bit input `a_{ℓ-1} … a_0` is obtained
//! by applying `G` ℓ times, each time keeping the left half (`G_0`) or the
//! right half (`G_1`) of the output depending on the next input bit
//! (most-significant bit first, matching the binary-tree picture of Figure 1
//! in the paper).
//!
//! The delegatable PRF of Kiayias et al. — used by the Constant-BRC/URC
//! schemes — exploits exactly this structure: revealing the seed of an inner
//! node of the GGM tree delegates the PRF on the whole sub-range below it.

use crate::prf::{Key, Prf, KEY_LEN};

/// Domain-separation tags for the two halves of the PRG output.
const LEFT_TAG: &[u8] = b"GGM-G0";
const RIGHT_TAG: &[u8] = b"GGM-G1";

/// A GGM seed: the λ-bit state attached to one node of the GGM tree.
pub type Seed = [u8; KEY_LEN];

/// The GGM pseudorandom generator `G(x) = (G_0(x), G_1(x))`.
///
/// Implemented as `G_b(x) = HMAC_x(tag_b)`, i.e. the current seed keys the
/// PRF and the child selector is the message — the standard way to realise a
/// PRG from a PRF.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ggm;

impl Ggm {
    /// Creates a GGM evaluator.
    pub fn new() -> Self {
        Self
    }

    /// Expands a seed into its two children `(G_0(seed), G_1(seed))`.
    pub fn expand(&self, seed: &Seed) -> (Seed, Seed) {
        (self.child(seed, false), self.child(seed, true))
    }

    /// Computes one child of a seed; `right == false` gives `G_0`,
    /// `right == true` gives `G_1`.
    pub fn child(&self, seed: &Seed, right: bool) -> Seed {
        let prf = Prf::new(&Key::from_bytes(*seed));
        prf.eval(if right { RIGHT_TAG } else { LEFT_TAG })
    }

    /// Walks `depth` levels down from `seed`, choosing children according to
    /// the top `depth` bits of `path` (most-significant of those bits first).
    ///
    /// With `seed` being the root key and `depth` the bit-length of the
    /// domain, this is exactly the GGM PRF evaluation
    /// `f_k(a) = G_{a_0}( … (G_{a_{ℓ-1}}(k)) … )` from the paper.
    pub fn walk(&self, seed: &Seed, path: u64, depth: u32) -> Seed {
        debug_assert!(depth <= 64);
        let mut current = *seed;
        for level in (0..depth).rev() {
            let bit = (path >> level) & 1 == 1;
            current = self.child(&current, bit);
        }
        current
    }

    /// Expands the full subtree of height `height` below `seed`, returning
    /// the `2^height` leaf seeds in left-to-right order.
    ///
    /// This is what the server does in the Constant schemes: given the GGM
    /// value of a covering node (and its level), it derives the DPRF values
    /// of every leaf in that node's sub-range.
    pub fn expand_subtree(&self, seed: &Seed, height: u32) -> Vec<Seed> {
        assert!(height <= 32, "refusing to expand more than 2^32 leaves");
        let mut frontier = vec![*seed];
        for _ in 0..height {
            let mut next = Vec::with_capacity(frontier.len() * 2);
            for s in &frontier {
                let (l, r) = self.expand(s);
                next.push(l);
                next.push(r);
            }
            frontier = next;
        }
        frontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seed(byte: u8) -> Seed {
        [byte; KEY_LEN]
    }

    #[test]
    fn children_are_distinct_and_deterministic() {
        let g = Ggm::new();
        let (l, r) = g.expand(&seed(1));
        assert_ne!(l, r);
        assert_eq!(l, g.child(&seed(1), false));
        assert_eq!(r, g.child(&seed(1), true));
    }

    #[test]
    fn walk_matches_manual_expansion() {
        let g = Ggm::new();
        let root = seed(42);
        // value 6 = 0b110 over a 3-bit domain: right, right, left — the
        // worked example from Section 2.2 of the paper.
        let expected = g.child(&g.child(&g.child(&root, true), true), false);
        assert_eq!(g.walk(&root, 6, 3), expected);
    }

    #[test]
    fn walk_depth_zero_is_identity() {
        let g = Ggm::new();
        assert_eq!(g.walk(&seed(9), 0, 0), seed(9));
    }

    #[test]
    fn expand_subtree_leaves_match_walks() {
        let g = Ggm::new();
        let root = seed(5);
        let leaves = g.expand_subtree(&root, 4);
        assert_eq!(leaves.len(), 16);
        for (i, leaf) in leaves.iter().enumerate() {
            assert_eq!(*leaf, g.walk(&root, i as u64, 4), "leaf {i}");
        }
    }

    #[test]
    fn sibling_subtrees_do_not_collide() {
        let g = Ggm::new();
        let root = seed(7);
        let (l, r) = g.expand(&root);
        let left_leaves = g.expand_subtree(&l, 3);
        let right_leaves = g.expand_subtree(&r, 3);
        for ll in &left_leaves {
            assert!(!right_leaves.contains(ll));
        }
    }

    proptest! {
        #[test]
        fn delegation_consistency(path in 0u64..1024, root_byte in any::<u8>()) {
            // Expanding from an inner node must agree with walking all the
            // way from the root: this is the core property that makes DPRF
            // delegation sound.
            let g = Ggm::new();
            let root = seed(root_byte);
            let depth = 10u32;
            let split = 4u32; // delegate at depth 4 (node covers 2^6 leaves)
            let prefix = path >> (depth - split);
            let suffix = path & ((1 << (depth - split)) - 1);
            let inner = g.walk(&root, prefix, split);
            let via_inner = g.walk(&inner, suffix, depth - split);
            let direct = g.walk(&root, path, depth);
            prop_assert_eq!(via_inner, direct);
        }

        #[test]
        fn distinct_paths_distinct_values(a in 0u64..4096, b in 0u64..4096) {
            prop_assume!(a != b);
            let g = Ggm::new();
            let root = seed(13);
            prop_assert_ne!(g.walk(&root, a, 12), g.walk(&root, b, 12));
        }
    }
}
