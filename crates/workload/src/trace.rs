//! Timestamped, multi-tenant event traces: *what* is sent *when* by *whom*.
//!
//! A [`Trace`] is the replay harness's unit of work: a time-sorted list of
//! [`TraceEvent`]s — range queries with Zipf-skewed hotspot centers
//! interleaved with insert batches — each tagged with the tenant that sends
//! it, so the admission layer's per-tenant queues see realistic mixed
//! traffic. Traces are generated from a declarative [`TraceSpec`] and one
//! seeded RNG: the same spec and seed produce a **byte-identical** trace
//! (checkable via [`Trace::to_bytes`]), which is what makes replay runs
//! comparable across machines and CI runs.

use crate::arrivals::ArrivalProcess;
use rand::Rng;
use rsse_cover::{Domain, Range};
use rsse_updates::UpdateEntry;
use std::time::Duration;

/// What a trace event asks the server to do.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A range query.
    Query(Range),
    /// A batch of updates routed through the update manager.
    InsertBatch(Vec<UpdateEntry>),
}

/// One timestamped, tenant-tagged event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Scheduled send time, relative to the start of the replay.
    pub at: Duration,
    /// Index into [`Trace::tenants`].
    pub tenant: u32,
    /// The request itself.
    pub kind: EventKind,
}

/// A deterministic, time-sorted event stream (see the [module docs](self)).
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The domain queries and inserts draw values from.
    pub domain: Domain,
    /// Tenant names; events refer to them by index.
    pub tenants: Vec<String>,
    /// Events, sorted by [`TraceEvent::at`].
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of query events.
    pub fn query_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Query(_)))
            .count()
    }

    /// Number of insert-batch events.
    pub fn insert_count(&self) -> usize {
        self.len() - self.query_count()
    }

    /// Scheduled time of the last event, or zero for an empty trace.
    pub fn horizon(&self) -> Duration {
        self.events.last().map(|e| e.at).unwrap_or(Duration::ZERO)
    }

    /// Canonical byte encoding of the whole trace. Two traces are equal iff
    /// their encodings are equal, so "same seed ⇒ byte-identical trace" is
    /// directly testable (and a digest of it can fingerprint a bench run).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.events.len() * 32);
        out.extend_from_slice(b"RSSE-TRACE-v1");
        out.extend_from_slice(&self.domain.size().to_le_bytes());
        out.extend_from_slice(&(self.tenants.len() as u32).to_le_bytes());
        for tenant in &self.tenants {
            out.extend_from_slice(&(tenant.len() as u32).to_le_bytes());
            out.extend_from_slice(tenant.as_bytes());
        }
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for event in &self.events {
            out.extend_from_slice(&(event.at.as_nanos() as u64).to_le_bytes());
            out.extend_from_slice(&event.tenant.to_le_bytes());
            match &event.kind {
                EventKind::Query(range) => {
                    out.push(0);
                    out.extend_from_slice(&range.lo().to_le_bytes());
                    out.extend_from_slice(&range.hi().to_le_bytes());
                }
                EventKind::InsertBatch(entries) => {
                    out.push(1);
                    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                    for entry in entries {
                        out.push(match entry.op {
                            rsse_updates::UpdateOp::Insert => 0,
                            rsse_updates::UpdateOp::Modify => 1,
                            rsse_updates::UpdateOp::Delete => 2,
                        });
                        out.extend_from_slice(&entry.record.id.to_le_bytes());
                        out.extend_from_slice(&entry.record.value.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// FNV-1a digest of [`to_bytes`](Self::to_bytes) — a cheap fingerprint
    /// for bench reports ("these two runs replayed the same trace").
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.to_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Declarative description of a trace; [`generate`](TraceSpec::generate)
/// turns it into a concrete [`Trace`] with one seeded RNG.
#[derive(Clone, Debug)]
pub struct TraceSpec {
    /// Domain queried and inserted into.
    pub domain: Domain,
    /// When events fire.
    pub arrivals: ArrivalProcess,
    /// Trace length in (virtual) time.
    pub horizon: Duration,
    /// Number of tenants; events are tagged uniformly at random. Must be at
    /// least 1.
    pub tenants: usize,
    /// Length of every query range.
    pub range_len: u64,
    /// Number of hotspot centers queries cluster around. Must be at least 1.
    pub hotspots: usize,
    /// Zipf exponent over the hotspot centers (0 = uniform across
    /// hotspots; ~1 = classic web skew).
    pub hotspot_skew: f64,
    /// Fraction of events that are insert batches instead of queries
    /// (`0.0..=1.0`).
    pub insert_fraction: f64,
    /// Entries per insert batch.
    pub insert_batch: usize,
    /// First [`rsse_core::DocId`] handed to generated inserts; successive
    /// entries get successive ids, so keep this above the ids of any
    /// pre-loaded dataset.
    pub first_insert_id: u64,
}

impl TraceSpec {
    /// A query-only spec with sane defaults: 4 tenants, 8 hotspots at skew
    /// 0.9, ranges covering 1% of the domain.
    pub fn queries_only(domain: Domain, arrivals: ArrivalProcess, horizon: Duration) -> Self {
        Self {
            domain,
            arrivals,
            horizon,
            tenants: 4,
            range_len: (domain.size() / 100).max(1),
            hotspots: 8,
            hotspot_skew: 0.9,
            insert_fraction: 0.0,
            insert_batch: 0,
            first_insert_id: 1 << 32,
        }
    }

    /// Generates the trace. Pure function of `(self, rng stream)`: the same
    /// spec and seed yield a byte-identical trace.
    ///
    /// Queries are centered on one of `hotspots` randomly placed centers,
    /// chosen Zipf(`hotspot_skew`)-distributed so a few centers absorb most
    /// of the traffic, then jittered by up to one range length so repeated
    /// hits on a hotspot are near-identical rather than identical ranges.
    ///
    /// # Panics
    /// Panics if `tenants` or `hotspots` is zero, `insert_fraction` is
    /// outside `[0, 1]`, a positive `insert_fraction` comes with a zero
    /// `insert_batch`, or `range_len` exceeds the domain.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Trace {
        assert!(self.tenants >= 1, "need at least one tenant");
        assert!(self.hotspots >= 1, "need at least one hotspot");
        assert!(
            (0.0..=1.0).contains(&self.insert_fraction),
            "insert_fraction must be in [0, 1]"
        );
        assert!(
            self.insert_fraction == 0.0 || self.insert_batch > 0,
            "insert events need a positive batch size"
        );
        assert!(
            self.range_len >= 1 && self.range_len <= self.domain.size(),
            "range_len must fit the domain"
        );

        let stamps = self.arrivals.timestamps(self.horizon, rng);
        let centers: Vec<u64> = (0..self.hotspots)
            .map(|_| rng.gen_range(0..self.domain.size()))
            .collect();
        let hotspot_dist = crate::distributions::Zipf::new(centers, self.hotspot_skew);

        let mut next_id = self.first_insert_id;
        let events = stamps
            .into_iter()
            .map(|at| {
                let tenant = rng.gen_range(0..self.tenants) as u32;
                let is_insert =
                    self.insert_fraction > 0.0 && rng.gen_range(0.0..1.0) < self.insert_fraction;
                let kind = if is_insert {
                    let entries = insert_batch(&self.domain, self.insert_batch, next_id, rng);
                    next_id += self.insert_batch as u64;
                    EventKind::InsertBatch(entries)
                } else {
                    use crate::distributions::ValueDistribution;
                    let center = hotspot_dist.sample(&self.domain, rng);
                    let jitter = rng.gen_range(0..=self.range_len);
                    let lo = center
                        .saturating_add(jitter)
                        .saturating_sub(self.range_len)
                        .min(self.domain.size() - self.range_len);
                    EventKind::Query(Range::new(lo, lo + self.range_len - 1))
                };
                TraceEvent { at, tenant, kind }
            })
            .collect();

        Trace {
            domain: self.domain,
            tenants: (0..self.tenants).map(|i| format!("tenant-{i}")).collect(),
            events,
        }
    }
}

/// One batch of `size` fresh insertions with ids `first_id..first_id+size`
/// and uniform values over `domain`. Shared by the trace generator and the
/// update benches so their ingest populations are the same distribution.
pub fn insert_batch<R: Rng + ?Sized>(
    domain: &Domain,
    size: usize,
    first_id: u64,
    rng: &mut R,
) -> Vec<UpdateEntry> {
    (0..size as u64)
        .map(|i| UpdateEntry::insert(first_id + i, rng.gen_range(0..domain.size())))
        .collect()
}

/// `batches` consecutive [`insert_batch`]es of `size` entries each, with
/// globally unique ids starting at `first_id`.
pub fn insert_batches<R: Rng + ?Sized>(
    domain: &Domain,
    batches: usize,
    size: usize,
    first_id: u64,
    rng: &mut R,
) -> Vec<Vec<UpdateEntry>> {
    (0..batches as u64)
        .map(|b| insert_batch(domain, size, first_id + b * size as u64, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn spec() -> TraceSpec {
        TraceSpec {
            domain: Domain::new(1 << 16),
            arrivals: ArrivalProcess::Poisson {
                rate_per_sec: 2000.0,
            },
            horizon: Duration::from_millis(500),
            tenants: 3,
            range_len: 256,
            hotspots: 4,
            hotspot_skew: 1.1,
            insert_fraction: 0.2,
            insert_batch: 8,
            first_insert_id: 1 << 32,
        }
    }

    #[test]
    fn same_seed_byte_identical_trace() {
        let a = spec().generate(&mut ChaCha20Rng::seed_from_u64(42));
        let b = spec().generate(&mut ChaCha20Rng::seed_from_u64(42));
        let c = spec().generate(&mut ChaCha20Rng::seed_from_u64(43));
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn trace_mixes_queries_and_inserts_in_time_order() {
        let trace = spec().generate(&mut ChaCha20Rng::seed_from_u64(7));
        assert!(
            trace.len() > 500,
            "expected ~1000 events, got {}",
            trace.len()
        );
        assert!(trace.query_count() > 0 && trace.insert_count() > 0);
        assert_eq!(trace.query_count() + trace.insert_count(), trace.len());
        assert!(trace.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(trace.horizon() < Duration::from_millis(500));
        // Insert fraction lands in the right ballpark (20% ± 10pp).
        let fraction = trace.insert_count() as f64 / trace.len() as f64;
        assert!((0.1..0.3).contains(&fraction), "insert fraction {fraction}");
    }

    #[test]
    fn queries_fit_the_domain_and_requested_length() {
        let spec = spec();
        let trace = spec.generate(&mut ChaCha20Rng::seed_from_u64(9));
        for event in &trace.events {
            assert!((event.tenant as usize) < trace.tenants.len());
            match &event.kind {
                EventKind::Query(range) => {
                    assert_eq!(range.len(), spec.range_len);
                    assert!(range.hi() < spec.domain.size());
                }
                EventKind::InsertBatch(entries) => {
                    assert_eq!(entries.len(), spec.insert_batch);
                    for entry in entries {
                        assert!(spec.domain.contains(entry.record.value));
                        assert!(entry.record.id >= spec.first_insert_id);
                    }
                }
            }
        }
    }

    #[test]
    fn insert_ids_are_globally_unique() {
        let trace = spec().generate(&mut ChaCha20Rng::seed_from_u64(11));
        let mut ids = std::collections::BTreeSet::new();
        for event in &trace.events {
            if let EventKind::InsertBatch(entries) = &event.kind {
                for entry in entries {
                    assert!(
                        ids.insert(entry.record.id),
                        "duplicate id {}",
                        entry.record.id
                    );
                }
            }
        }
        assert!(!ids.is_empty());
    }

    #[test]
    fn hotspots_skew_query_mass() {
        let mut spec = spec();
        spec.insert_fraction = 0.0;
        spec.hotspot_skew = 1.3;
        let trace = spec.generate(&mut ChaCha20Rng::seed_from_u64(5));
        // Count queries per distinct range start bucket; with 4 hotspots at
        // skew 1.3 the busiest hotspot should hold well over 1/4 of mass.
        let mut by_bucket = std::collections::HashMap::new();
        for event in &trace.events {
            if let EventKind::Query(range) = event.kind {
                *by_bucket.entry(range.lo() / 1024).or_insert(0usize) += 1;
            }
        }
        let max = by_bucket.values().copied().max().unwrap();
        assert!(
            max * 3 > trace.len(),
            "hottest bucket {max} of {} queries is not skewed",
            trace.len()
        );
    }

    #[test]
    fn insert_batches_helper_is_deterministic_and_unique() {
        let domain = Domain::new(1 << 12);
        let a = insert_batches(&domain, 4, 16, 100, &mut ChaCha20Rng::seed_from_u64(1));
        let b = insert_batches(&domain, 4, 16, 100, &mut ChaCha20Rng::seed_from_u64(1));
        assert_eq!(a, b);
        let ids: std::collections::BTreeSet<u64> =
            a.iter().flatten().map(|e| e.record.id).collect();
        assert_eq!(ids.len(), 64);
        assert_eq!(ids.iter().next(), Some(&100));
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn insert_fraction_without_batch_size_rejected() {
        let mut bad = spec();
        bad.insert_batch = 0;
        let _ = bad.generate(&mut ChaCha20Rng::seed_from_u64(0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Cap cases: every case generates a full trace.
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn any_seed_and_shape_regenerates_byte_identically(
                seed in any::<u64>(),
                domain_bits in 8u32..20,
                tenants in 1usize..8,
                hotspots in 1usize..12,
                skew_tenths in 0u32..15,
                insert_percent in 0u32..50,
            ) {
                let skew = skew_tenths as f64 / 10.0;
                let insert_fraction = insert_percent as f64 / 100.0;
                let spec = TraceSpec {
                    domain: Domain::with_bits(domain_bits),
                    arrivals: ArrivalProcess::Poisson { rate_per_sec: 5_000.0 },
                    horizon: Duration::from_millis(40),
                    tenants,
                    range_len: (1u64 << domain_bits) / 64 + 1,
                    hotspots,
                    hotspot_skew: skew,
                    insert_fraction,
                    insert_batch: 4,
                    first_insert_id: 1 << 40,
                };
                let a = spec.generate(&mut ChaCha20Rng::seed_from_u64(seed));
                let b = spec.generate(&mut ChaCha20Rng::seed_from_u64(seed));
                prop_assert_eq!(a.to_bytes(), b.to_bytes());
                // Well-formedness holds for every shape, not just defaults.
                prop_assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
                for event in &a.events {
                    prop_assert!((event.tenant as usize) < tenants);
                    if let EventKind::Query(range) = event.kind {
                        prop_assert!(range.hi() < spec.domain.size());
                    }
                }
            }
        }
    }
}
