//! The TDAG (tree-like directed acyclic graph) and Single Range Cover (SRC).
//!
//! The Logarithmic-SRC scheme covers every query with a *single* node so the
//! server cannot partition the results into sub-range groups. Covering with
//! the binary tree alone is hopeless — a tiny range straddling the middle of
//! the domain is only covered by the root — so the paper injects, at every
//! level, one extra node "between" every two adjacent nodes (linking every
//! pair of cousins through a new parent). Lemma 1 then guarantees that any
//! range of size `R` is covered by a TDAG node of width at most `4R`.

use crate::domain::{Domain, Range};
use std::fmt;

/// A node of the TDAG built over a domain.
///
/// `level` is the subtree height (width `2^level`); `start` is the first
/// domain value covered. Regular (binary-tree) nodes have `start` divisible
/// by `2^level`; injected nodes are shifted by half a width,
/// `start ≡ 2^(level-1) (mod 2^level)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TdagNode {
    level: u32,
    start: u64,
}

impl TdagNode {
    /// Creates a TDAG node; `start` must be aligned either to the node width
    /// or to half the node width.
    pub fn new(level: u32, start: u64) -> Self {
        assert!(level <= 63);
        let width = 1u64 << level;
        let half = width >> 1;
        assert!(
            start.is_multiple_of(width) || (level > 0 && start % width == half),
            "start {start} is not a valid regular or injected position at level {level}"
        );
        Self { level, start }
    }

    /// The node's level (subtree height); leaves are level 0.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// First domain value covered by this node.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of domain values covered.
    pub fn width(&self) -> u64 {
        1u64 << self.level
    }

    /// The range of domain values covered by this node.
    pub fn range(&self) -> Range {
        Range::new(self.start, self.start + self.width() - 1)
    }

    /// Whether this is one of the injected ("gray" in Figure 3) nodes.
    pub fn is_injected(&self) -> bool {
        self.level > 0 && !self.start.is_multiple_of(self.width())
    }

    /// Whether the node's subtree contains `value`.
    pub fn contains(&self, value: u64) -> bool {
        self.range().contains(value)
    }

    /// A stable byte-string keyword identifying the node, suitable for use
    /// as an SSE keyword. The leading tag keeps TDAG keywords disjoint from
    /// binary-tree keywords.
    pub fn keyword(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0] = b'T';
        out[1..5].copy_from_slice(&self.level.to_le_bytes());
        out[5..13].copy_from_slice(&self.start.to_le_bytes());
        out
    }
}

impl fmt::Debug for TdagNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.range();
        let tag = if self.is_injected() { "i" } else { "" };
        write!(f, "T[{},{}]@L{}{}", r.lo(), r.hi(), self.level, tag)
    }
}

/// The TDAG built over a domain.
#[derive(Clone, Copy, Debug)]
pub struct Tdag {
    domain: Domain,
}

impl Tdag {
    /// Builds the (implicit) TDAG over `domain`.
    pub fn new(domain: Domain) -> Self {
        Self { domain }
    }

    /// The underlying domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The root node (covers the whole padded domain).
    pub fn root(&self) -> TdagNode {
        TdagNode::new(self.domain.bits(), 0)
    }

    /// All TDAG nodes whose subtree contains `value`, bottom-up.
    ///
    /// These are the keywords assigned to a tuple with attribute value
    /// `value` in the Logarithmic-SRC BuildIndex: the `⌈log m⌉ + 1` regular
    /// nodes on the root path plus, at each level, the (at most one)
    /// injected node containing the value — `O(log m)` keywords in total.
    pub fn covering_nodes(&self, value: u64) -> Vec<TdagNode> {
        assert!(
            self.domain.contains(value),
            "value {value} outside the domain"
        );
        let bits = self.domain.bits();
        let padded = self.domain.padded_size();
        let mut out = Vec::with_capacity(2 * bits as usize + 1);
        for level in 0..=bits {
            let width = 1u64 << level;
            // Regular node containing the value.
            out.push(TdagNode::new(level, (value >> level) << level));
            // Injected node containing the value, if one exists at this level.
            if level >= 1 && level < bits {
                let half = width >> 1;
                if value >= half {
                    let start = (((value - half) >> level) << level) + half;
                    if start + width <= padded {
                        out.push(TdagNode::new(level, start));
                    }
                }
            }
        }
        out
    }

    /// Single Range Cover: the lowest TDAG node that fully covers `range`.
    ///
    /// By Lemma 1 of the paper the returned node has width at most `4R`
    /// (where `R = range.len()`), so the number of false positives a query
    /// can incur from over-covering is `O(R)` for uniform data.
    ///
    /// # Panics
    /// Panics if the range does not fit in the (padded) domain.
    pub fn src_cover(&self, range: Range) -> TdagNode {
        assert!(
            range.hi() < self.domain.padded_size(),
            "range {range} outside the padded domain"
        );
        let bits = self.domain.bits();
        // Smallest level whose nodes are wide enough to possibly cover R.
        let needed = range.len();
        let first_level = 64 - (needed - 1).leading_zeros().min(63);
        let first_level = if needed == 1 { 0 } else { first_level };
        for level in first_level..=bits {
            let width = 1u64 << level;
            // Regular node?
            if (range.lo() >> level) == (range.hi() >> level) {
                return TdagNode::new(level, (range.lo() >> level) << level);
            }
            // Injected node?
            if level >= 1 && level < bits {
                let half = width >> 1;
                if range.lo() >= half {
                    let lo_s = range.lo() - half;
                    let hi_s = range.hi() - half;
                    if (lo_s >> level) == (hi_s >> level) {
                        let start = ((lo_s >> level) << level) + half;
                        if start + width <= self.domain.padded_size() {
                            return TdagNode::new(level, start);
                        }
                    }
                }
            }
        }
        self.root()
    }

    /// Total number of nodes in the TDAG (regular + injected) — useful for
    /// storage accounting. For a `b`-bit domain this is
    /// `(2^{b+1} - 1) + Σ_{ℓ=1}^{b-1} (2^{b-ℓ} - 1)`.
    pub fn node_count(&self) -> u64 {
        let bits = self.domain.bits();
        let regular = (1u128 << (bits + 1)) - 1;
        let injected: u128 = (1..bits).map(|level| (1u128 << (bits - level)) - 1).sum();
        (regular + injected) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn figure3_structure() {
        // Domain {0..7}: injected nodes are N_{1,2}, N_{3,4}, N_{5,6} at
        // level 1 and N_{2,5} at level 2; none at level 0 or at the root.
        let tdag = Tdag::new(Domain::new(8));
        let injected: Vec<TdagNode> = (0..8)
            .flat_map(|v| tdag.covering_nodes(v))
            .filter(TdagNode::is_injected)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        let mut ranges: Vec<Range> = injected.iter().map(TdagNode::range).collect();
        ranges.sort();
        assert_eq!(
            ranges,
            vec![
                Range::new(1, 2),
                Range::new(2, 5),
                Range::new(3, 4),
                Range::new(5, 6),
            ]
        );
    }

    #[test]
    fn node_count_matches_enumeration_for_8_leaves() {
        // 15 regular nodes + 3 + 1 injected = 19.
        let tdag = Tdag::new(Domain::new(8));
        assert_eq!(tdag.node_count(), 19);
    }

    #[test]
    fn covering_nodes_contains_value_and_is_logarithmic() {
        let domain = Domain::with_bits(20);
        let tdag = Tdag::new(domain);
        let nodes = tdag.covering_nodes(123_456);
        assert!(nodes.iter().all(|n| n.contains(123_456)));
        // At most one regular + one injected node per level.
        assert!(nodes.len() <= 2 * (domain.bits() as usize) + 1);
        // At each level at most 2 nodes.
        for level in 0..=domain.bits() {
            let at_level = nodes.iter().filter(|n| n.level() == level).count();
            assert!(at_level <= 2, "level {level} has {at_level} covering nodes");
        }
    }

    #[test]
    fn src_cover_paper_examples() {
        let tdag = Tdag::new(Domain::new(8));
        assert_eq!(tdag.src_cover(Range::new(2, 7)).range(), Range::new(0, 7));
        let n = tdag.src_cover(Range::new(3, 5));
        assert_eq!(n.range(), Range::new(2, 5));
        assert!(n.is_injected());
        // A single value is covered by its leaf.
        assert_eq!(tdag.src_cover(Range::point(6)).range(), Range::point(6));
        // [3,4] straddles the midpoint of the domain's left half; the lowest
        // covering node is the injected N_{3,4}.
        assert_eq!(tdag.src_cover(Range::new(3, 4)).range(), Range::new(3, 4));
    }

    #[test]
    fn src_cover_is_lowest_on_small_domain() {
        // Exhaustively verify on a 32-value domain that (a) the cover
        // contains the range and (b) no lower-level TDAG node covers it.
        let domain = Domain::new(32);
        let tdag = Tdag::new(domain);
        for lo in 0..32u64 {
            for hi in lo..32u64 {
                let range = Range::new(lo, hi);
                let cover = tdag.src_cover(range);
                assert!(cover.range().covers(range), "{range} not covered");
                // Any strictly lower node wide enough must fail to cover.
                for level in 0..cover.level() {
                    let width = 1u64 << level;
                    if width < range.len() {
                        continue;
                    }
                    let aligned = TdagNode::new(level, (lo >> level) << level);
                    assert!(
                        !aligned.range().covers(range) || aligned == cover,
                        "{range}: lower regular node {aligned:?} also covers"
                    );
                    if level >= 1 && level < domain.bits() && lo >= width / 2 {
                        let start = (((lo - width / 2) >> level) << level) + width / 2;
                        if start + width <= domain.padded_size() {
                            let inj = TdagNode::new(level, start);
                            assert!(
                                !inj.range().covers(range),
                                "{range}: lower injected node {inj:?} also covers"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lemma1_bound_holds_exhaustively_small() {
        let domain = Domain::new(64);
        let tdag = Tdag::new(domain);
        for lo in 0..64u64 {
            for hi in lo..64u64 {
                let range = Range::new(lo, hi);
                let cover = tdag.src_cover(range);
                assert!(
                    cover.width() <= 4 * range.len(),
                    "Lemma 1 violated for {range}: cover width {}",
                    cover.width()
                );
            }
        }
    }

    #[test]
    fn keywords_distinguish_regular_from_injected() {
        let regular = TdagNode::new(1, 2);
        let injected = TdagNode::new(1, 1);
        assert!(!regular.is_injected());
        assert!(injected.is_injected());
        assert_ne!(regular.keyword(), injected.keyword());
    }

    #[test]
    #[should_panic(expected = "not a valid")]
    fn misaligned_node_rejected() {
        let _ = TdagNode::new(2, 3);
    }

    #[test]
    fn covering_nodes_are_exactly_the_nodes_containing_value() {
        // On a small domain, enumerate all valid TDAG nodes and check that
        // covering_nodes(v) returns exactly those containing v.
        let domain = Domain::new(16);
        let tdag = Tdag::new(domain);
        let mut all_nodes = Vec::new();
        for level in 0..=domain.bits() {
            let width = 1u64 << level;
            let mut start = 0;
            while start + width <= domain.padded_size() {
                all_nodes.push(TdagNode::new(level, start));
                start += width;
            }
            if level >= 1 && level < domain.bits() {
                let mut start = width / 2;
                while start + width <= domain.padded_size() {
                    all_nodes.push(TdagNode::new(level, start));
                    start += width;
                }
            }
        }
        for v in 0..16u64 {
            let expected: HashSet<TdagNode> = all_nodes
                .iter()
                .copied()
                .filter(|n| n.contains(v))
                .collect();
            let got: HashSet<TdagNode> = tdag.covering_nodes(v).into_iter().collect();
            assert_eq!(got, expected, "value {v}");
        }
    }

    proptest! {
        #[test]
        fn src_cover_contains_range_and_respects_lemma1(lo in 0u64..100_000, len in 1u64..50_000) {
            let domain = Domain::with_bits(17);
            let lo = lo.min(domain.size() - 1);
            let hi = (lo + len - 1).min(domain.size() - 1);
            let range = Range::new(lo, hi);
            let tdag = Tdag::new(domain);
            let cover = tdag.src_cover(range);
            prop_assert!(cover.range().covers(range));
            prop_assert!(cover.width() <= 4 * range.len());
        }

        #[test]
        fn covering_nodes_always_include_src_of_point_queries(v in 0u64..(1u64 << 14)) {
            let domain = Domain::with_bits(14);
            let tdag = Tdag::new(domain);
            let nodes: HashSet<_> = tdag.covering_nodes(v).into_iter().collect();
            prop_assert!(nodes.contains(&tdag.src_cover(Range::point(v))));
            // The root is always among the covering nodes.
            prop_assert!(nodes.contains(&tdag.root()));
        }

        #[test]
        fn any_query_keyword_is_indexed_for_all_matching_values(lo in 0u64..4096, len in 1u64..2048) {
            // The SRC node of a query must be among the covering nodes of
            // every value inside the query — otherwise Logarithmic-SRC would
            // return false negatives. This is the correctness core of the
            // scheme.
            let domain = Domain::with_bits(12);
            let lo = lo.min(domain.size() - 1);
            let hi = (lo + len - 1).min(domain.size() - 1);
            let range = Range::new(lo, hi);
            let tdag = Tdag::new(domain);
            let cover = tdag.src_cover(range);
            for v in [range.lo(), (range.lo() + range.hi()) / 2, range.hi()] {
                let nodes: HashSet<_> = tdag.covering_nodes(v).into_iter().collect();
                prop_assert!(nodes.contains(&cover), "value {v} misses SRC node {cover:?}");
            }
        }
    }
}
