//! The query-attribute domain and ranges over it.

use std::fmt;

/// The query attribute domain `A = {0, 1, …, size-1}`.
///
/// The paper assumes positive integer domains (any real attribute is scaled
/// and translated into one). The dyadic binary tree is built over the
/// smallest power of two that is at least `size`, so a domain of size `m`
/// has `bits = ⌈log₂ m⌉` levels of internal nodes above the leaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Domain {
    size: u64,
    bits: u32,
}

impl Domain {
    /// Creates a domain of `size` values `0 … size-1`.
    ///
    /// # Panics
    /// Panics if `size` is zero or exceeds `2^63` (so that node arithmetic
    /// never overflows `u64`).
    pub fn new(size: u64) -> Self {
        assert!(size > 0, "domain must contain at least one value");
        assert!(size <= 1 << 63, "domain size must be at most 2^63");
        let bits = if size == 1 {
            0
        } else {
            64 - (size - 1).leading_zeros()
        };
        Self { size, bits }
    }

    /// Creates a domain with exactly `bits` bits, i.e. size `2^bits`.
    pub fn with_bits(bits: u32) -> Self {
        assert!(bits <= 63, "at most 63-bit domains are supported");
        Self {
            size: 1u64 << bits,
            bits,
        }
    }

    /// Number of values in the domain (`m` in the paper).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of bits needed to address a value, `⌈log₂ m⌉`.
    ///
    /// This is also the level of the binary-tree root (leaves are level 0).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of leaves of the (full) binary tree built over the domain,
    /// i.e. the domain size rounded up to a power of two.
    pub fn padded_size(&self) -> u64 {
        1u64 << self.bits
    }

    /// Whether `value` belongs to the domain.
    pub fn contains(&self, value: u64) -> bool {
        value < self.size
    }

    /// The full range `[0, size-1]`.
    pub fn full_range(&self) -> Range {
        Range::new(0, self.size - 1)
    }

    /// Clamps a range to the domain. Returns `None` if they do not overlap.
    pub fn clamp(&self, range: Range) -> Option<Range> {
        if range.lo() >= self.size {
            return None;
        }
        Some(Range::new(range.lo(), range.hi().min(self.size - 1)))
    }
}

/// An inclusive range `[lo, hi]` of domain values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Range {
    lo: u64,
    hi: u64,
}

impl Range {
    /// Creates the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "invalid range: lo={lo} > hi={hi}");
        Self { lo, hi }
    }

    /// A range containing a single value.
    pub fn point(value: u64) -> Self {
        Self::new(value, value)
    }

    /// Lower endpoint (inclusive).
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Upper endpoint (inclusive).
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// Number of values covered (the paper's `R`).
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// A range always contains at least one value.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `value` lies inside the range.
    pub fn contains(&self, value: u64) -> bool {
        self.lo <= value && value <= self.hi
    }

    /// Whether `other` is completely contained in `self`.
    pub fn covers(&self, other: Range) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the two ranges share at least one value.
    pub fn intersects(&self, other: Range) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The intersection of the two ranges, if any.
    pub fn intersection(&self, other: Range) -> Option<Range> {
        if !self.intersects(other) {
            return None;
        }
        Some(Range::new(self.lo.max(other.lo), self.hi.min(other.hi)))
    }

    /// The smallest range containing both ranges.
    pub fn union_hull(&self, other: Range) -> Range {
        Range::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Iterates over the values in the range.
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        self.lo..=self.hi
    }
}

impl fmt::Debug for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn domain_bit_computation() {
        assert_eq!(Domain::new(1).bits(), 0);
        assert_eq!(Domain::new(2).bits(), 1);
        assert_eq!(Domain::new(3).bits(), 2);
        assert_eq!(Domain::new(8).bits(), 3);
        assert_eq!(Domain::new(9).bits(), 4);
        assert_eq!(Domain::new(1 << 20).bits(), 20);
        assert_eq!(Domain::new((1 << 20) + 1).bits(), 21);
    }

    #[test]
    fn padded_size_is_next_power_of_two() {
        assert_eq!(Domain::new(5).padded_size(), 8);
        assert_eq!(Domain::new(8).padded_size(), 8);
        assert_eq!(Domain::new(1000).padded_size(), 1024);
    }

    #[test]
    fn with_bits_matches_new() {
        assert_eq!(Domain::with_bits(10), Domain::new(1 << 10));
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_domain_rejected() {
        let _ = Domain::new(0);
    }

    #[test]
    fn domain_membership_and_full_range() {
        let d = Domain::new(100);
        assert!(d.contains(0));
        assert!(d.contains(99));
        assert!(!d.contains(100));
        assert_eq!(d.full_range(), Range::new(0, 99));
    }

    #[test]
    fn clamp_behaviour() {
        let d = Domain::new(10);
        assert_eq!(d.clamp(Range::new(5, 20)), Some(Range::new(5, 9)));
        assert_eq!(d.clamp(Range::new(0, 3)), Some(Range::new(0, 3)));
        assert_eq!(d.clamp(Range::new(10, 20)), None);
    }

    #[test]
    fn range_basic_operations() {
        let r = Range::new(3, 7);
        assert_eq!(r.len(), 5);
        assert!(r.contains(3) && r.contains(7) && !r.contains(8));
        assert!(r.covers(Range::new(4, 6)));
        assert!(!r.covers(Range::new(4, 8)));
        assert!(r.intersects(Range::new(7, 9)));
        assert!(!r.intersects(Range::new(8, 9)));
        assert_eq!(r.intersection(Range::new(5, 9)), Some(Range::new(5, 7)));
        assert_eq!(r.intersection(Range::new(8, 9)), None);
        assert_eq!(r.union_hull(Range::new(10, 12)), Range::new(3, 12));
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_range_rejected() {
        let _ = Range::new(5, 4);
    }

    #[test]
    fn point_range() {
        let p = Range::point(42);
        assert_eq!(p.len(), 1);
        assert_eq!(p.lo(), p.hi());
    }

    #[test]
    fn display_formats_inclusive() {
        assert_eq!(format!("{}", Range::new(2, 7)), "[2, 7]");
        assert_eq!(format!("{:?}", Range::new(2, 7)), "[2, 7]");
    }

    proptest! {
        #[test]
        fn intersection_is_symmetric_and_contained(a in 0u64..1000, b in 0u64..1000,
                                                   c in 0u64..1000, d in 0u64..1000) {
            let r1 = Range::new(a.min(b), a.max(b));
            let r2 = Range::new(c.min(d), c.max(d));
            let i12 = r1.intersection(r2);
            let i21 = r2.intersection(r1);
            prop_assert_eq!(i12, i21);
            if let Some(i) = i12 {
                prop_assert!(r1.covers(i));
                prop_assert!(r2.covers(i));
            }
        }

        #[test]
        fn bits_is_minimal(size in 1u64..(1 << 40)) {
            let d = Domain::new(size);
            prop_assert!(d.padded_size() >= size);
            if d.bits() > 0 {
                prop_assert!((1u64 << (d.bits() - 1)) < size);
            }
        }
    }
}
