//! The multi-query batched search server.
//!
//! The paper's server model (Sections 6–7) is a machine answering many
//! concurrent range queries, each of which expands into a *vector* of SSE
//! tokens — one per BRC/URC covering node. Issuing those tokens one
//! [`SseScheme::search`] call at a time pays per-token fixed costs (scratch
//! setup, result allocation, scattered dictionary probes) that have nothing
//! to do with the cover size. [`QueryServer`] is the batched alternative:
//!
//! * one query's whole token vector is answered in a single lockstep pass
//!   ([`SseScheme::search_batch_scan`]) sharing one label-PRF scratch
//!   buffer across tokens and resolving every counter round's probes
//!   together, grouped by shard of the underlying [`ShardedIndex`];
//! * payloads are decrypted into one reused buffer per query
//!   (`StreamCipher::decrypt_into`) and decoded straight into the flat id
//!   list — no per-payload heap allocation;
//! * multiple concurrent queries fan out across cores with
//!   [`QueryServer::answer_many`]; shards are immutable behind `&self`, so
//!   the concurrent reads are lock-free.
//!
//! Results are **deterministic and identical to the per-token path**: per
//! query, ids come back grouped by token in token order, each group in
//! storage-counter order, and `answer_many` returns outcomes in query
//! order regardless of scheduling.

use crate::dataset::{decode_id_payload, DocId};
use crate::metrics::QueryStats;
use crate::traits::QueryOutcome;
use rayon::prelude::*;
use rsse_crypto::StreamCipher;
use rsse_sse::{IndexLookup, SearchToken, ShardedIndex, SseScheme, StorageError};
use std::path::Path;

/// Decrypts one probe hit with its token's payload cipher (into the reused
/// `plaintext` buffer) and decodes the tuple id. Returns `None` for a
/// corrupt (undecryptable or undecodable) entry — the scan skips it, it is
/// never a panic.
///
/// This is the single definition of hit decoding: the sequential scan
/// ([`scan_query_into`]) and the batch executor in `rsse-serve` both decode
/// through it, which is what makes their outcomes byte-identical.
pub fn decode_hit_into(
    cipher: &StreamCipher,
    ciphertext: &[u8],
    plaintext: &mut Vec<u8>,
) -> Option<DocId> {
    if cipher.decrypt_into(ciphertext, plaintext) {
        decode_id_payload(plaintext)
    } else {
        None
    }
}

/// Reusable per-query scan state: the per-token payload ciphers and the one
/// plaintext buffer every hit decrypts into. A serving layer answering many
/// queries keeps one `ScanScratch` per worker thread and rekeys it per
/// query, so steady-state serving does no per-query scratch allocation.
#[derive(Debug, Default)]
pub struct ScanScratch {
    ciphers: Vec<StreamCipher>,
    plaintext: Vec<u8>,
}

impl ScanScratch {
    /// (Re)derives the payload ciphers of `tokens` into the reused vector.
    pub fn rekey(&mut self, tokens: &[SearchToken]) {
        self.ciphers.clear();
        self.ciphers
            .extend(tokens.iter().map(SearchToken::payload_cipher));
    }

    /// Decodes one hit of token `t` (see [`decode_hit_into`]). Call
    /// [`rekey`](Self::rekey) with the query's tokens first.
    pub fn decode_hit(&mut self, t: usize, ciphertext: &[u8]) -> Option<DocId> {
        decode_hit_into(&self.ciphers[t], ciphertext, &mut self.plaintext)
    }
}

/// Runs one range query's whole token vector against any fallible index in
/// a single lockstep scan, decrypting and decoding every hit into
/// `per_token` (one id group per token, in token order, each group in
/// storage-counter order). Returns the per-token entry counts on success.
///
/// This is the probe-and-decode core of [`QueryServer::answer`], exposed so
/// serving layers (the `rsse-serve` crate) can wrap the index — deadlines,
/// per-probe retries, circuit breakers — while producing **byte-identical
/// outcomes** to the raw server: same scan order, same scratch reuse, same
/// decode.
///
/// # Errors
///
/// A failed probe aborts the scan with its typed [`StorageError`]. On
/// error, `per_token` keeps every id decoded before the failure — the
/// lockstep scan visits all tokens in counter rounds, so the groups are a
/// faithful "what was resolved so far" snapshot a caller can surface as a
/// typed partial result.
pub fn scan_query_into<I>(
    index: &I,
    tokens: &[SearchToken],
    per_token: &mut Vec<Vec<DocId>>,
) -> Result<Vec<usize>, StorageError>
where
    I: IndexLookup<Error = StorageError>,
{
    let mut scratch = ScanScratch::default();
    scan_query_into_with(index, tokens, per_token, &mut scratch)
}

/// [`scan_query_into`] with caller-owned scratch, for serving layers that
/// answer many queries and want the per-token ciphers and the decrypt
/// buffer reused across queries instead of reallocated per query.
pub fn scan_query_into_with<I>(
    index: &I,
    tokens: &[SearchToken],
    per_token: &mut Vec<Vec<DocId>>,
    scratch: &mut ScanScratch,
) -> Result<Vec<usize>, StorageError>
where
    I: IndexLookup<Error = StorageError>,
{
    per_token.clear();
    per_token.resize_with(tokens.len(), Vec::new);
    scratch.rekey(tokens);
    SseScheme::search_batch_scan(index, tokens, |t, ciphertext| {
        if let Some(id) = scratch.decode_hit(t, ciphertext) {
            per_token[t].push(id);
        }
    })
}

/// Flattens the per-token id groups of a completed [`scan_query_into`] pass
/// into the [`QueryOutcome`] the serving APIs return — the single place the
/// outcome shape (id order and [`QueryStats`] accounting) is defined, so
/// every serving layer reports identically.
pub fn assemble_outcome(
    tokens: &[SearchToken],
    per_token: Vec<Vec<DocId>>,
    counts: &[usize],
) -> QueryOutcome {
    let mut ids: Vec<DocId> = Vec::with_capacity(per_token.iter().map(Vec::len).sum());
    for group in per_token {
        ids.extend(group);
    }
    QueryOutcome {
        ids,
        stats: QueryStats {
            tokens_sent: tokens.len(),
            token_bytes: tokens.len() * SearchToken::SIZE_BYTES,
            rounds: 1,
            entries_touched: counts.iter().sum(),
            result_groups: tokens.len(),
        },
    }
}

/// A server-side search endpoint answering whole token vectors — and whole
/// batches of concurrent queries — over one sharded encrypted dictionary.
///
/// # Examples
///
/// ```
/// use rsse_core::{Dataset, Record, RangeScheme};
/// use rsse_core::schemes::{CoverKind, log_brc_urc::LogScheme};
/// use rsse_cover::{Domain, Range};
/// use rand::SeedableRng;
///
/// let dataset = Dataset::new(
///     Domain::new(1 << 10),
///     (0..200).map(|i| Record::new(i, (i * 37) % 1024)).collect(),
/// ).unwrap();
/// let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(7);
///
/// // Build with a 2^4-way sharded dictionary and stand up the server.
/// let (client, server) = LogScheme::build_sharded_with(&dataset, CoverKind::Brc, 4, &mut rng);
/// let server = server.into_query_server();
///
/// // A batch of concurrent range queries: one token vector each.
/// let ranges = [Range::new(0, 100), Range::new(500, 800)];
/// let queries: Vec<_> = ranges.iter().map(|&r| client.trapdoor(r).unwrap()).collect();
/// let outcomes = server.answer_many_strict(&queries).unwrap();
///
/// for (range, outcome) in ranges.iter().zip(&outcomes) {
///     let mut got = outcome.ids.clone();
///     let mut expected = dataset.matching_ids(*range);
///     got.sort(); expected.sort();
///     assert_eq!(got, expected);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct QueryServer {
    index: ShardedIndex,
}

impl QueryServer {
    /// Wraps a sharded dictionary in a batched search endpoint.
    pub fn new(index: ShardedIndex) -> Self {
        Self { index }
    }

    /// Cold-opens a batched search endpoint over an index previously
    /// persisted with [`ShardedIndex::save_to_dir`] (or built straight to
    /// disk through a `StorageConfig::on_disk` build): the shard
    /// directories are loaded, the ciphertext regions stay on disk behind
    /// paged reads, and [`answer_many`](Self::answer_many) serves queries
    /// immediately — no rebuild, no full-index residency.
    ///
    /// # Errors
    ///
    /// Surfaces every malformed input as a typed [`StorageError`] (see
    /// [`ShardedIndex::open_dir`]).
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Ok(Self::new(ShardedIndex::open_dir(dir)?))
    }

    /// Like [`open_dir`](Self::open_dir), but bounds the resident
    /// ciphertext blocks of the served index at `cache_budget` bytes
    /// (`None` = unlimited): all shards share one clock block cache, so a
    /// long-running server's memory tracks its working set instead of
    /// everything it ever touched. Query outcomes are identical for every
    /// budget; `index().cache_stats()` exposes the hit/miss/eviction
    /// counters.
    pub fn open_dir_with_budget(
        dir: impl AsRef<Path>,
        cache_budget: Option<usize>,
    ) -> Result<Self, StorageError> {
        Ok(Self::new(ShardedIndex::open_dir_with_budget(
            dir,
            cache_budget,
        )?))
    }

    /// Serializes the underlying dictionary into `dir` (see
    /// [`ShardedIndex::save_to_dir`]).
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<(), StorageError> {
        self.index.save_to_dir(dir)
    }

    /// The underlying sharded dictionary.
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// Number of label-prefix bits sharding the dictionary.
    pub fn shard_bits(&self) -> u32 {
        self.index.shard_bits()
    }

    /// Answers one range query's whole token vector in a single batched
    /// pass.
    ///
    /// Returns the same ids as running [`SseScheme::search`] token by token
    /// and decoding each payload list — grouped by token in token order,
    /// each group in storage-counter order — but shares the label-PRF
    /// scratch across tokens, groups each counter round's dictionary probes
    /// by shard, and decrypts every hit into one reused buffer.
    ///
    /// # Errors
    ///
    /// A failed block read on a disk-backed index aborts the query with a
    /// typed [`StorageError`] instead of silently shortening the result —
    /// the caller can tell "label absent" (an empty group in `Ok`) from
    /// "the disk failed" (`Err`) per query. In-memory indexes never fail.
    pub fn answer(&self, tokens: &[SearchToken]) -> Result<QueryOutcome, StorageError> {
        let mut per_token: Vec<Vec<DocId>> = Vec::new();
        let counts = scan_query_into(&self.index, tokens, &mut per_token)?;
        Ok(assemble_outcome(tokens, per_token, &counts))
    }

    /// Answers a batch of concurrent queries — one token vector per client
    /// — in parallel, returning **per-query** results in query order.
    ///
    /// The shards are immutable behind `&self`, so the per-query worker
    /// threads read them lock-free; each query is answered with the batched
    /// single-query pass of [`answer`](Self::answer), and the output order
    /// is the input order regardless of thread scheduling.
    ///
    /// # Partial-batch error reporting
    ///
    /// Queries are independent, so one query's storage fault does not abort
    /// its whole batch: each slot carries its own `Result`, and a healthy
    /// query in a faulted batch still returns `Ok`. This is the **raw**
    /// serving path — a probe failure surfaces immediately as its typed
    /// [`StorageError`] with no retry. Production callers that want
    /// transient faults absorbed (budgeted per-probe retries with jittered
    /// backoff, deadlines, per-shard circuit breakers) should serve through
    /// `rsse_serve::ResilientServer`, which wraps this server and keeps
    /// outcomes byte-identical. Callers that want all-or-nothing collection
    /// can `collect` the slots into a `Result<Vec<_>, _>` (that is
    /// [`answer_many_strict`](Self::answer_many_strict)).
    pub fn answer_many(
        &self,
        queries: &[Vec<SearchToken>],
    ) -> Vec<Result<QueryOutcome, StorageError>> {
        queries
            .par_iter()
            .map(|tokens| self.answer(tokens))
            .collect()
    }

    /// Answers a batch of concurrent queries, aborting on the first
    /// storage fault: the all-or-nothing collection of
    /// [`answer_many`](Self::answer_many) (which see for the per-query
    /// retry semantics), for callers that treat any fault as fatal for
    /// the whole batch.
    pub fn answer_many_strict(
        &self,
        queries: &[Vec<SearchToken>],
    ) -> Result<Vec<QueryOutcome>, StorageError> {
        self.answer_many(queries).into_iter().collect()
    }

    /// Reopens one batched search endpoint per **active instance** of a
    /// persisted update manager, in level order, from the manager's
    /// storage root alone — the server-side half of a process restart
    /// (`UpdateManager::open_root` in `rsse-updates` is the owner-side
    /// half, and heals any crash leftovers first).
    ///
    /// Reads the root's `manager.meta` manifest, cold-opens every
    /// instance directory it references under the manifest's recorded
    /// cache budget, and returns the endpoints in the same instance order
    /// the owner iterates — the server never needs the owner's master
    /// key, because everything it serves is encrypted.
    ///
    /// Supports managers whose scheme keeps a single dictionary per
    /// instance directory (the Logarithmic/Constant families);
    /// multi-index layouts (Logarithmic-SRC-i's `i1`/`i2`) fail typed on
    /// the missing top-level `index.meta`.
    ///
    /// # Errors
    ///
    /// Surfaces a missing or corrupt manifest, and every malformed
    /// instance directory, as typed [`StorageError`]s. A manifest left
    /// stale by a crash (referencing GC'd directories) also fails typed —
    /// run the owner-side `open_root` recovery first, which re-commits a
    /// healed manifest.
    pub fn open_manager_root(root: impl AsRef<Path>) -> Result<Vec<QueryServer>, StorageError> {
        let root = root.as_ref();
        let manifest = rsse_sse::storage::read_manager_manifest(root)?;
        let budget = manifest.cache_budget.map(|bytes| bytes as usize);
        manifest
            .levels
            .iter()
            .flatten()
            .map(|instance| {
                let dir = root.join(rsse_sse::storage::ManagerManifest::instance_dir_name(
                    instance.build_id,
                ));
                Self::open_dir_with_budget(dir, budget)
            })
            .collect()
    }
}

/// Chaos-harness support: faults injected into a `QueryServer` wrap its
/// dictionary's shards (see the `rsse_sse::fault` module). Test support
/// only — production servers never carry fault wrappers.
impl rsse_sse::FaultInjectable for QueryServer {
    fn fault_indexes(&mut self) -> Vec<&mut ShardedIndex> {
        vec![&mut self.index]
    }
}

#[cfg(test)]
mod tests {
    use crate::schemes::common::search_ids;
    use crate::schemes::log_brc_urc::LogScheme;
    use crate::schemes::testutil;
    use crate::schemes::CoverKind;
    use crate::traits::RangeScheme;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;
    use rsse_cover::Range;

    #[test]
    fn answer_matches_per_token_search_ids() {
        let dataset = testutil::uniform_dataset();
        for bits in [0u32, 3, 6] {
            let mut rng = ChaCha20Rng::seed_from_u64(1);
            let (client, server) =
                LogScheme::build_sharded_with(&dataset, CoverKind::Urc, bits, &mut rng);
            let index = server.index().clone();
            let qs = server.into_query_server();
            assert_eq!(qs.shard_bits(), bits);
            for range in testutil::query_mix(dataset.domain().size()) {
                let tokens = client.trapdoor(range).unwrap();
                let outcome = qs.answer(&tokens).unwrap();
                let (expected_ids, groups) = search_ids(&index, &tokens);
                assert_eq!(outcome.ids, expected_ids, "ids must match per-token order");
                assert_eq!(outcome.stats.entries_touched, groups.iter().sum::<usize>());
                assert_eq!(outcome.stats.tokens_sent, tokens.len());
                assert_eq!(outcome.stats.result_groups, tokens.len());
            }
        }
    }

    #[test]
    fn answer_many_is_deterministic_and_query_ordered() {
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let (client, server) = LogScheme::build_sharded_with(&dataset, CoverKind::Brc, 4, &mut rng);
        let qs = server.into_query_server();
        let ranges: Vec<Range> = (0..16u64).map(|i| Range::new(i, i + 7)).collect();
        let queries: Vec<Vec<rsse_sse::SearchToken>> = ranges
            .iter()
            .map(|&r| client.trapdoor(r).unwrap())
            .collect();
        let a = qs.answer_many_strict(&queries).unwrap();
        let b = qs.answer_many_strict(&queries).unwrap();
        assert_eq!(a, b, "same batch must produce identical outcomes");
        for (outcome, range) in a.iter().zip(&ranges) {
            testutil::assert_exact(&dataset, *range, outcome);
        }
    }

    #[test]
    fn query_many_handles_out_of_domain_queries() {
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let (client, server) = LogScheme::build_sharded_with(&dataset, CoverKind::Brc, 2, &mut rng);
        let qs = server.into_query_server();
        let ranges = [Range::new(2, 7), Range::new(1000, 2000), Range::new(0, 63)];
        let outcomes = client.query_many(&qs, &ranges).unwrap();
        assert_eq!(outcomes.len(), 3);
        testutil::assert_exact(&dataset, ranges[0], &outcomes[0]);
        assert!(outcomes[1].is_empty(), "out-of-domain query must be empty");
        testutil::assert_exact(&dataset, ranges[2], &outcomes[2]);
    }

    #[test]
    fn cold_opened_server_answers_identically_to_in_memory() {
        // The PR 3 acceptance criterion: build with the file backend (same
        // RNG stream as the in-memory build), drop everything, reopen from
        // disk via QueryServer::open_dir, and serve answer_many with
        // results identical to the in-memory backend — no rebuild.
        use crate::schemes::testutil::TempDir;
        use crate::server::QueryServer;
        use crate::traits::RangeScheme;
        use rsse_sse::StorageConfig;

        let dataset = testutil::uniform_dataset();
        for bits in [0u32, 4] {
            let mut rng_mem = ChaCha20Rng::seed_from_u64(11);
            let (_, mem_server) = LogScheme::build_sharded(&dataset, bits, &mut rng_mem);
            let mem_qs = mem_server.into_query_server();

            let dir = TempDir::new("cold-open");
            let mut rng_disk = ChaCha20Rng::seed_from_u64(11);
            let (client, disk_server) = LogScheme::build_stored(
                &dataset,
                &StorageConfig::on_disk(bits, dir.path()),
                &mut rng_disk,
            )
            .unwrap();
            assert!(disk_server.index().is_file_backed());
            drop(disk_server); // nothing of the built index survives in RAM

            let qs = QueryServer::open_dir(dir.path()).unwrap();
            assert_eq!(qs.shard_bits(), bits);
            assert!(qs.index().is_file_backed());
            let ranges: Vec<Range> = testutil::query_mix(dataset.domain().size());
            let queries: Vec<Vec<rsse_sse::SearchToken>> = ranges
                .iter()
                .map(|&r| client.trapdoor(r).unwrap())
                .collect();
            let cold = qs.answer_many_strict(&queries).unwrap();
            let warm = mem_qs.answer_many_strict(&queries).unwrap();
            assert_eq!(
                cold, warm,
                "cold-open outcomes must match in-memory (k={bits})"
            );
            for (range, outcome) in ranges.iter().zip(&cold) {
                testutil::assert_exact(&dataset, *range, outcome);
            }
        }
    }

    #[test]
    fn query_many_agrees_with_single_query_path() {
        let dataset = testutil::uniform_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let (client, server) = LogScheme::build_sharded_with(&dataset, CoverKind::Urc, 5, &mut rng);
        let single_server = server.clone();
        let qs = server.into_query_server();
        let ranges: Vec<Range> = testutil::query_mix(dataset.domain().size());
        let batched = client.query_many(&qs, &ranges).unwrap();
        for (range, outcome) in ranges.iter().zip(&batched) {
            assert_eq!(outcome.ids, client.query(&single_server, *range).ids);
        }
    }
}
