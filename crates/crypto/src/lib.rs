//! Cryptographic primitives for the RSSE (Range Searchable Symmetric
//! Encryption) framework of *Practical Private Range Search Revisited*
//! (Demertzis et al., SIGMOD 2016).
//!
//! The paper's constructions are defined on top of four primitives, all of
//! which this crate provides:
//!
//! * a **pseudorandom function** ([`Prf`]) — the paper uses HMAC-SHA-512,
//!   we use HMAC-SHA-256 which is interchangeable for every construction;
//! * the **GGM pseudorandom generator** ([`ggm::Ggm`]) — a length-doubling
//!   PRG `G : {0,1}^λ → {0,1}^{2λ}` used to build the GGM tree;
//! * a **delegatable PRF** ([`dprf::Dprf`]) in the sense of Kiayias et al.
//!   (CCS 2013): the key holder hands out a *token* (a small set of GGM
//!   inner-node seeds) from which an untrusted party can derive the PRF
//!   values of an entire sub-range of the domain, and nothing else;
//! * a **semantically secure symmetric cipher** ([`cipher::StreamCipher`]) —
//!   a counter-mode stream cipher keyed by the PRF, used to encrypt index
//!   payloads and records.
//!
//! In addition it offers a keyed [`permute::keyed_shuffle`] (Fisher–Yates
//! driven by a PRF keystream) used by the schemes to randomly permute
//! document lists and token vectors, and a simple [`KeyChain`] helper for
//! deriving independent sub-keys from a master key.

#![deny(missing_docs)]

pub mod cipher;
pub mod dprf;
pub mod ggm;
pub mod permute;
pub mod prf;

pub use cipher::{decrypt_call_count, encrypt_call_count, StreamCipher};
pub use dprf::{Dprf, DprfToken, GgmNodeSeed};
pub use ggm::Ggm;
pub use prf::{Key, Prf, KEY_LEN};

use rand::{CryptoRng, RngCore};

/// Derives a family of independent keys from a single master key.
///
/// Sub-keys are computed as `PRF(master, domain_separator)`, so two chains
/// built from the same master key but different separators are independent,
/// and the same `(master, label)` pair always yields the same key (which is
/// what the deterministic `Trpdr` algorithms of the schemes rely on).
#[derive(Clone, Debug)]
pub struct KeyChain {
    master: Key,
    /// Cached keyed PRF state — derivations share one key schedule.
    prf: Prf,
}

impl KeyChain {
    /// Creates a key chain from an existing master key.
    pub fn new(master: Key) -> Self {
        let prf = Prf::new(&master);
        Self { master, prf }
    }

    /// Generates a fresh random master key and wraps it in a chain.
    pub fn generate<R: RngCore + CryptoRng>(rng: &mut R) -> Self {
        Self::new(Key::generate(rng))
    }

    /// Returns the master key.
    pub fn master(&self) -> &Key {
        &self.master
    }

    /// Derives the sub-key identified by `label`.
    pub fn derive(&self, label: &[u8]) -> Key {
        Key::from_bytes(self.prf.eval(label))
    }

    /// Derives the sub-key identified by a label and a numeric index.
    ///
    /// Convenient for per-batch or per-level keys (e.g. the update manager
    /// derives one key per batch: `derive_indexed(b"batch", i)`).
    pub fn derive_indexed(&self, label: &[u8], index: u64) -> Key {
        let mut input = Vec::with_capacity(label.len() + 8);
        input.extend_from_slice(label);
        input.extend_from_slice(&index.to_le_bytes());
        self.derive(&input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn keychain_is_deterministic() {
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let chain = KeyChain::generate(&mut rng);
        assert_eq!(chain.derive(b"sse"), chain.derive(b"sse"));
        assert_ne!(chain.derive(b"sse"), chain.derive(b"dprf"));
    }

    #[test]
    fn keychain_indexed_labels_are_independent() {
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let chain = KeyChain::generate(&mut rng);
        let a = chain.derive_indexed(b"batch", 0);
        let b = chain.derive_indexed(b"batch", 1);
        let c = chain.derive_indexed(b"other", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, chain.derive_indexed(b"batch", 0));
    }

    #[test]
    fn different_masters_give_different_subkeys() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let c1 = KeyChain::generate(&mut rng);
        let c2 = KeyChain::generate(&mut rng);
        assert_ne!(c1.derive(b"x"), c2.derive(b"x"));
    }

    #[test]
    fn indexed_derivation_is_not_prefix_ambiguous() {
        // derive_indexed must not collide with a plain derive over the
        // concatenated byte string interpretation of a different split.
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let chain = KeyChain::generate(&mut rng);
        let a = chain.derive_indexed(b"ab", 0);
        let b = chain.derive_indexed(b"a", u64::from_le_bytes(*b"b\0\0\0\0\0\0\0"));
        // These inputs genuinely differ in byte length, so they must differ.
        assert_ne!(a, b);
    }
}
