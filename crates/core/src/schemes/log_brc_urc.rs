//! The Logarithmic-BRC and Logarithmic-URC schemes (Section 6.1).
//!
//! Each tuple is replicated once per node on the path from the binary-tree
//! root to its value's leaf (`⌈log m⌉ + 1` keywords), and a query is covered
//! with BRC or URC exactly as in the Constant schemes — but the covering
//! nodes are ordinary SSE keywords, so no DPRF is needed, the search time
//! drops to `O(log R + r)`, and the heavy structural leakage of the Constant
//! schemes (the exact mapping of ids onto subtree leaves) disappears. What
//! remains visible to the server is only the *partitioning of the result
//! into one group per covering node*.

use crate::dataset::Dataset;
use crate::metrics::{IndexStats, QueryStats};
use crate::schemes::common::{
    clamp_query, grouped_fixed_index_external, grouped_fixed_index_stored, search_ids,
    try_search_ids, CoverKind,
};
use crate::server::QueryServer;
use crate::traits::{MergeInput, QueryOutcome, RangeScheme};
use rand::{CryptoRng, RngCore};
use rsse_cover::{Domain, Node, Range};
use rsse_crypto::{permute, Key, KeyChain};
use rsse_sse::{
    padding, SearchToken, ShardedIndex, SseDatabase, SseKey, SseScheme, StorageBackend,
    StorageConfig, StorageError,
};
use std::path::Path;

/// Owner-side state of Logarithmic-BRC / Logarithmic-URC.
#[derive(Clone, Debug)]
pub struct LogScheme {
    key: SseKey,
    shuffle_key: Key,
    domain: Domain,
    kind: CoverKind,
}

/// Server-side state: one encrypted multimap with `O(n log m)` entries,
/// split into `2^k` label-prefix shards (`k = 0`, a single arena, unless
/// built through a `*_sharded` constructor).
#[derive(Clone, Debug)]
pub struct LogServer {
    index: ShardedIndex,
}

impl LogServer {
    /// Number of label-prefix bits sharding the dictionary.
    pub fn shard_bits(&self) -> u32 {
        self.index.shard_bits()
    }

    /// The underlying sharded dictionary.
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// Converts this server into a [`QueryServer`] answering batched
    /// multi-query workloads over the same dictionary.
    pub fn into_query_server(self) -> QueryServer {
        QueryServer::new(self.index)
    }

    /// Serializes the server's dictionary into `dir` (see
    /// [`ShardedIndex::save_to_dir`]).
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> Result<(), StorageError> {
        self.index.save_to_dir(dir)
    }

    /// Cold-opens a server over a dictionary previously saved with
    /// [`save_to_dir`](Self::save_to_dir) or built on disk through
    /// [`LogScheme::build_full_stored`]; the shards are served via paged
    /// reads without a rebuild.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Ok(Self {
            index: ShardedIndex::open_dir(dir)?,
        })
    }
}

/// Chaos-harness support (see the `rsse_sse::fault` module): injected
/// faults wrap this server's dictionary.
impl rsse_sse::FaultInjectable for LogServer {
    fn fault_indexes(&mut self) -> Vec<&mut ShardedIndex> {
        vec![&mut self.index]
    }
}

impl LogScheme {
    /// Builds the scheme with an explicit covering technique, optional
    /// padding of the multimap to `n · (⌈log m⌉ + 1)` entries, and the
    /// dictionary held by the storage backend `config` selects — in-memory
    /// shard arenas, or shard files streamed to disk during BuildIndex and
    /// served via paged reads.
    pub fn build_full_stored<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        kind: CoverKind,
        pad: bool,
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<(Self, LogServer), StorageError> {
        let domain = *dataset.domain();
        let chain = KeyChain::generate(rng);
        let key = SseScheme::key_from(chain.derive(b"sse"));
        let shuffle_key = chain.derive(b"shuffle");

        // Randomly permuting the documents sharing a keyword, as prescribed
        // by BuildIndex, happens inside both build paths below (the keyed
        // shuffle), so storage order leaks nothing about attribute order.
        let index = if pad {
            let mut db = SseDatabase::new();
            for record in dataset.records() {
                for node in Node::path_to_root(&domain, record.value) {
                    db.add(node.keyword().to_vec(), record.id_payload());
                }
            }
            db.shuffle_lists(&shuffle_key);
            let target = padding::logarithmic_padding_target(dataset.len(), domain.size(), false);
            padding::pad_to(&mut db, target, 8);
            SseScheme::build_index_stored(&key, &db, config, rng)?
        } else if config.build_budget.is_some() {
            // Budgeted build: stream the (node keyword, id) entries into
            // the external spill/merge pipeline without ever collecting
            // them — RAM stays bounded by the budget, output stays
            // byte-identical to the collected path below.
            let entries = dataset.records().iter().flat_map(|record| {
                let payload = record.id_payload_array();
                Node::path_to_root(&domain, record.value)
                    .into_iter()
                    .map(move |node| (node.keyword(), payload))
            });
            grouped_fixed_index_external(&key, &shuffle_key, entries, config, rng)?
        } else {
            // Unpadded fast path: flat (node keyword, id) entries, grouped
            // by one sort — no per-entry allocations before encryption.
            let mut entries = Vec::with_capacity(dataset.len() * (domain.bits() as usize + 1));
            for record in dataset.records() {
                let payload = record.id_payload_array();
                for node in Node::path_to_root(&domain, record.value) {
                    entries.push((node.keyword(), payload));
                }
            }
            grouped_fixed_index_stored(&key, &shuffle_key, entries, config, rng)?
        };
        Ok((
            Self {
                key,
                shuffle_key,
                domain,
                kind,
            },
            LogServer { index },
        ))
    }

    /// Builds the scheme with an explicit covering technique, optional
    /// padding of the multimap to `n · (⌈log m⌉ + 1)` entries, and the
    /// dictionary split into `2^shard_bits` in-memory label-prefix shards.
    pub fn build_full_sharded<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        kind: CoverKind,
        pad: bool,
        shard_bits: u32,
        rng: &mut R,
    ) -> (Self, LogServer) {
        Self::build_full_stored(
            dataset,
            kind,
            pad,
            &StorageConfig::in_memory(shard_bits),
            rng,
        )
        .expect("in-memory build cannot fail")
    }

    /// Builds the scheme with an explicit covering technique and optional
    /// padding, with an unsharded (single-arena) dictionary.
    pub fn build_full<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        kind: CoverKind,
        pad: bool,
        rng: &mut R,
    ) -> (Self, LogServer) {
        Self::build_full_sharded(dataset, kind, pad, 0, rng)
    }

    /// Builds the scheme with the given covering technique (no padding).
    pub fn build_with<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        kind: CoverKind,
        rng: &mut R,
    ) -> (Self, LogServer) {
        Self::build_full(dataset, kind, false, rng)
    }

    /// Builds the scheme with the given covering technique and a
    /// `2^shard_bits`-way sharded dictionary (no padding).
    pub fn build_sharded_with<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        kind: CoverKind,
        shard_bits: u32,
        rng: &mut R,
    ) -> (Self, LogServer) {
        Self::build_full_sharded(dataset, kind, false, shard_bits, rng)
    }

    /// Issues many range queries against a [`QueryServer`] over this
    /// scheme's dictionary, one batched server pass per query, returning
    /// outcomes in query order (out-of-domain queries come back empty).
    ///
    /// # Errors
    ///
    /// Propagates the server's typed [`StorageError`] if a disk-backed
    /// index failed to resolve a probe mid-batch (see
    /// [`QueryServer::answer_many`]).
    pub fn query_many(
        &self,
        server: &QueryServer,
        ranges: &[Range],
    ) -> Result<Vec<QueryOutcome>, StorageError> {
        let token_vectors: Vec<Option<Vec<SearchToken>>> =
            ranges.iter().map(|&range| self.trapdoor(range)).collect();
        let present: Vec<Vec<SearchToken>> = token_vectors.iter().flatten().cloned().collect();
        let mut answered = server.answer_many_strict(&present)?.into_iter();
        Ok(token_vectors
            .into_iter()
            .map(|tokens| match tokens {
                Some(_) => answered.next().expect("one answer per present query"),
                None => QueryOutcome::default(),
            })
            .collect())
    }

    /// The covering technique this client uses.
    pub fn cover_kind(&self) -> CoverKind {
        self.kind
    }

    /// `Trpdr`: one SSE token per covering node, randomly permuted.
    /// Returns `None` if the range lies entirely outside the domain.
    pub fn trapdoor(&self, range: Range) -> Option<Vec<SearchToken>> {
        let clamped = clamp_query(&self.domain, range)?;
        let cover = self.kind.cover(&self.domain, clamped);
        let mut tokens: Vec<SearchToken> = cover
            .iter()
            .map(|node| SseScheme::trapdoor(&self.key, &node.keyword()))
            .collect();
        let mut label = Vec::with_capacity(17);
        label.push(b'L');
        label.extend_from_slice(&clamped.lo().to_le_bytes());
        label.extend_from_slice(&clamped.hi().to_le_bytes());
        permute::keyed_shuffle(&self.shuffle_key, &label, &mut tokens);
        Some(tokens)
    }

    /// `Search`: one SSE search per token; the union of the groups is the
    /// result. A failed block read on a disk-backed dictionary aborts the
    /// query with a typed [`StorageError`] instead of silently dropping
    /// the affected group.
    pub fn try_search(
        server: &LogServer,
        tokens: &[SearchToken],
    ) -> Result<QueryOutcome, StorageError> {
        let (ids, groups) = try_search_ids(&server.index, tokens)?;
        let touched = groups.iter().sum();
        Ok(QueryOutcome {
            ids,
            stats: QueryStats {
                tokens_sent: tokens.len(),
                token_bytes: tokens.len() * SearchToken::SIZE_BYTES,
                rounds: 1,
                entries_touched: touched,
                result_groups: tokens.len(),
            },
        })
    }

    /// Infallible wrapper over [`try_search`](Self::try_search); panics if
    /// the storage backend fails (in-memory dictionaries cannot).
    pub fn search(server: &LogServer, tokens: &[SearchToken]) -> QueryOutcome {
        Self::try_search(server, tokens)
            .expect("storage backend failed during search (use try_search to handle I/O errors)")
    }

    /// The per-token result-group sizes of a query — the "result
    /// partitioning" leakage that distinguishes this scheme from
    /// Logarithmic-SRC (used by leakage tests and the ablation benches).
    pub fn result_partitioning(&self, server: &LogServer, range: Range) -> Vec<usize> {
        match self.trapdoor(range) {
            Some(tokens) => {
                let (_, groups) = search_ids(&server.index, &tokens);
                groups
            }
            None => Vec::new(),
        }
    }
}

impl RangeScheme for LogScheme {
    type Server = LogServer;
    const NAME: &'static str = "Logarithmic-BRC/URC";

    fn build<R: RngCore + CryptoRng>(dataset: &Dataset, rng: &mut R) -> (Self, Self::Server) {
        Self::build_with(dataset, CoverKind::Brc, rng)
    }

    fn build_sharded<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        shard_bits: u32,
        rng: &mut R,
    ) -> (Self, Self::Server) {
        Self::build_sharded_with(dataset, CoverKind::Brc, shard_bits, rng)
    }

    fn build_stored<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<(Self, Self::Server), StorageError> {
        Self::build_full_stored(dataset, CoverKind::Brc, false, config, rng)
    }

    /// Fast reopen: the owner state is a pure function of the RNG stream's
    /// leading `KeyChain` draw (plus the dataset's domain), so an on-disk
    /// index is reopened by re-deriving the keys and cold-opening the
    /// persisted shards — no rebuild, no re-encryption. In-memory configs
    /// fall back to the deterministic rebuild.
    fn open_stored<R: RngCore + CryptoRng>(
        dataset: &Dataset,
        config: &StorageConfig,
        rng: &mut R,
    ) -> Result<(Self, Self::Server), StorageError> {
        match &config.backend {
            StorageBackend::InMemory => Self::build_stored(dataset, config, rng),
            StorageBackend::OnDisk(dir) => {
                // Exactly the key-material draws build_full_stored makes
                // before it reads the dataset.
                let chain = KeyChain::generate(rng);
                let key = SseScheme::key_from(chain.derive(b"sse"));
                let shuffle_key = chain.derive(b"shuffle");
                let index = ShardedIndex::open_dir_with_budget(dir, config.cache_budget)?;
                Ok((
                    Self {
                        key,
                        shuffle_key,
                        domain: *dataset.domain(),
                        kind: CoverKind::Brc,
                    },
                    LogServer { index },
                ))
            }
        }
    }

    /// The server is one encrypted multimap probed by exact label lookups
    /// under per-instance keys: distinct instances' labels are disjoint
    /// (w.h.p.), so a disjoint union of the dictionaries answers every
    /// input client exactly as its own dictionary did.
    fn supports_structural_merge() -> bool {
        true
    }

    /// Structural merge of committed dictionaries: ciphertext regions are
    /// copied verbatim and the label directories re-emitted — see
    /// [`ShardedIndex::merge_in_memory`] / [`ShardedIndex::merge_dirs`].
    /// No payload decrypt or re-encrypt happens on this path.
    fn merge_stored(
        inputs: &[MergeInput<'_, Self::Server>],
        config: &StorageConfig,
    ) -> Result<Self::Server, StorageError> {
        let index = match &config.backend {
            StorageBackend::InMemory => {
                let indexes: Vec<&ShardedIndex> =
                    inputs.iter().map(|input| input.server.index()).collect();
                ShardedIndex::merge_in_memory(&indexes)?
            }
            StorageBackend::OnDisk(out) => {
                let dirs = inputs
                    .iter()
                    .map(|input| {
                        input.dir.ok_or(StorageError::Unsupported(
                            "structural on-disk merge of an instance without a saved directory",
                        ))
                    })
                    .collect::<Result<Vec<&Path>, StorageError>>()?;
                ShardedIndex::merge_dirs(&dirs, out, config.cache_budget)?
            }
        };
        Ok(LogServer { index })
    }

    /// Exactly the key-material draws `build_full_stored` makes before it
    /// reads the dataset — replaying an instance's seed reproduces the
    /// client whose trapdoors match its persisted (or merged) dictionary.
    fn derive_client<R: RngCore + CryptoRng>(
        domain: &Domain,
        rng: &mut R,
    ) -> Result<Self, StorageError> {
        let chain = KeyChain::generate(rng);
        Ok(Self {
            key: SseScheme::key_from(chain.derive(b"sse")),
            shuffle_key: chain.derive(b"shuffle"),
            domain: *domain,
            kind: CoverKind::Brc,
        })
    }

    fn open_merged(dir: &Path, config: &StorageConfig) -> Result<Self::Server, StorageError> {
        let index = match &config.backend {
            StorageBackend::InMemory => ShardedIndex::open_dir_resident(dir)?,
            StorageBackend::OnDisk(_) => {
                ShardedIndex::open_dir_with_budget(dir, config.cache_budget)?
            }
        };
        Ok(LogServer { index })
    }

    fn try_query(&self, server: &Self::Server, range: Range) -> Result<QueryOutcome, StorageError> {
        match self.trapdoor(range) {
            Some(tokens) => Self::try_search(server, &tokens),
            None => Ok(QueryOutcome::default()),
        }
    }

    fn index_stats(server: &Self::Server) -> IndexStats {
        IndexStats {
            entries: server.index.len(),
            storage_bytes: server.index.storage_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Record;
    use crate::schemes::testutil;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    #[test]
    fn brc_and_urc_are_exact_on_query_mix() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        for dataset in [testutil::skewed_dataset(), testutil::uniform_dataset()] {
            for kind in [CoverKind::Brc, CoverKind::Urc] {
                let (client, server) = LogScheme::build_with(&dataset, kind, &mut rng);
                for range in testutil::query_mix(dataset.domain().size()) {
                    let outcome = client.query(&server, range);
                    testutil::assert_exact(&dataset, range, &outcome);
                }
            }
        }
    }

    #[test]
    fn index_has_n_log_m_entries() {
        let dataset = testutil::skewed_dataset(); // domain 64 → 7 keywords/tuple
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let (_, server) = LogScheme::build(&dataset, &mut rng);
        assert_eq!(
            LogScheme::index_stats(&server).entries,
            dataset.len() * (dataset.domain().bits() as usize + 1)
        );
    }

    #[test]
    fn padded_build_hides_dataset_size_detail_and_still_answers() {
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let dataset = testutil::skewed_dataset();
        let (client, server) = LogScheme::build_full(&dataset, CoverKind::Brc, true, &mut rng);
        assert_eq!(
            LogScheme::index_stats(&server).entries,
            dataset.len() * (dataset.domain().bits() as usize + 1)
        );
        let range = Range::new(2, 7);
        testutil::assert_exact(&dataset, range, &client.query(&server, range));
    }

    #[test]
    fn query_size_is_logarithmic_and_urc_uniform() {
        let dataset = testutil::uniform_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let (brc, _) = LogScheme::build_with(&dataset, CoverKind::Brc, &mut rng);
        let (urc, _) = LogScheme::build_with(&dataset, CoverKind::Urc, &mut rng);
        for len in [5u64, 17, 60, 128] {
            let t1 = urc.trapdoor(Range::new(3, 3 + len - 1)).unwrap();
            let t2 = urc.trapdoor(Range::new(100, 100 + len - 1)).unwrap();
            assert_eq!(t1.len(), t2.len(), "URC token count must not leak position");
        }
        let t = brc.trapdoor(Range::new(0, 127)).unwrap();
        assert_eq!(t.len(), 1);
        let t = brc.trapdoor(Range::new(1, 254)).unwrap();
        assert!(t.len() <= 2 * 8);
    }

    #[test]
    fn result_partitioning_matches_group_structure() {
        // Section 6.1: the only extra leakage is the partitioning of results
        // into per-node groups. Check the group sizes sum to r and that SRC
        // would not see this (covered in log_src tests).
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let (client, server) = LogScheme::build_with(&dataset, CoverKind::Brc, &mut rng);
        let range = Range::new(2, 7);
        let groups = client.result_partitioning(&server, range);
        assert!(groups.len() >= 2, "BRC covers [2,7] with multiple nodes");
        assert_eq!(
            groups.iter().sum::<usize>(),
            dataset.result_size(range),
            "groups must partition the exact result"
        );
    }

    #[test]
    fn entries_touched_equals_result_size() {
        // No false positives: server work is log R + r.
        let dataset = testutil::uniform_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let (client, server) = LogScheme::build_with(&dataset, CoverKind::Urc, &mut rng);
        let range = Range::new(10, 200);
        let outcome = client.query(&server, range);
        assert_eq!(outcome.stats.entries_touched, dataset.result_size(range));
        assert_eq!(outcome.stats.rounds, 1);
        assert_eq!(outcome.stats.result_groups, outcome.stats.tokens_sent);
    }

    #[test]
    fn out_of_domain_query_is_empty() {
        let dataset = testutil::skewed_dataset();
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let (client, server) = LogScheme::build(&dataset, &mut rng);
        assert!(client.query(&server, Range::new(200, 300)).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn random_datasets_random_queries_are_exact(
            values in proptest::collection::vec(0u64..128, 1..60),
            lo in 0u64..128,
            len in 1u64..128,
            kind_is_brc in any::<bool>())
        {
            let domain = Domain::new(128);
            let records: Vec<Record> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| Record::new(i as u64, v))
                .collect();
            let dataset = Dataset::new(domain, records).unwrap();
            let mut rng = ChaCha20Rng::seed_from_u64(42);
            let kind = if kind_is_brc { CoverKind::Brc } else { CoverKind::Urc };
            let (client, server) = LogScheme::build_with(&dataset, kind, &mut rng);
            let hi = (lo + len - 1).min(127);
            let range = Range::new(lo, hi);
            let outcome = client.query(&server, range);
            let expected = {
                let mut e = dataset.matching_ids(range);
                e.sort_unstable();
                e
            };
            prop_assert_eq!(testutil::sorted_ids(&outcome), expected);
        }
    }
}
