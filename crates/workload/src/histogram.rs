//! A mergeable log-bucketed latency histogram.
//!
//! The replay engine runs one recorder per worker thread and merges them at
//! the end, so the recorder must be **mergeable**: bucket counts are plain
//! element-wise sums and merging is associative and commutative. Buckets
//! are log-linear (HDR style): values below 64ns get exact single-value
//! buckets; above that, each power-of-two octave is split into 32
//! sub-buckets, so every bucket's width is at most `2^-5 ≈ 3.2%` of its
//! lower bound. Quantiles are reported as the **upper edge** of the bucket
//! holding the requested rank, which bounds the quantile error by one
//! bucket width — cheap enough to record every event of a multi-million
//! event trace, precise enough for p999.

use std::time::Duration;

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Values below this get exact single-value buckets.
const EXACT_LIMIT: u64 = 1 << (SUB_BITS + 1);
/// Total bucket count, enough to index any `u64` nanosecond value.
const BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS as usize) + (1 << SUB_BITS);

/// Maps a nanosecond value to its bucket index. Monotone: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
fn bucket_index(value_ns: u64) -> usize {
    if value_ns < EXACT_LIMIT {
        return value_ns as usize;
    }
    let msb = 63 - value_ns.leading_zeros(); // >= SUB_BITS + 1
    let shift = msb - SUB_BITS;
    let sub = ((value_ns >> shift) as usize) & ((1 << SUB_BITS) - 1);
    (((msb - SUB_BITS) as usize) << SUB_BITS) + (1 << SUB_BITS) + sub
}

/// The inclusive `[lo, hi]` nanosecond bounds of bucket `index`.
fn bucket_range(index: usize) -> (u64, u64) {
    if index < EXACT_LIMIT as usize {
        return (index as u64, index as u64);
    }
    let block = (index >> SUB_BITS) as u32; // >= 2
    let shift = block - 1;
    let sub = (index & ((1 << SUB_BITS) - 1)) as u64;
    let lo = ((1u64 << SUB_BITS) + sub) << shift;
    (lo, lo + ((1u64 << shift) - 1))
}

/// The inclusive bounds of the bucket that `value_ns` falls into — the
/// maximum error of a quantile estimate for a value in that bucket.
pub fn bucket_bounds(value_ns: u64) -> (u64, u64) {
    bucket_range(bucket_index(value_ns))
}

/// A mergeable log-bucketed histogram of nanosecond latencies (see the
/// [module docs](self) for the bucket layout and error bound).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one latency sample given in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Adds every sample of `other` into `self`. Element-wise, so merging
    /// is associative and commutative and loses no information.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded sample, or zero when empty.
    pub fn min(&self) -> Duration {
        if self.total == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample, or zero when empty.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Exact mean of the recorded samples (sums are kept exactly; only
    /// quantiles are bucketed), or zero when empty.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    /// The `q`-quantile (`0 < q <= 1`), reported as the upper edge of the
    /// bucket containing the `⌈q·count⌉`-th smallest sample — an
    /// overestimate by at most one bucket width (≈3.2% relative). Returns
    /// zero when empty.
    ///
    /// # Panics
    /// Panics if `q` is not in `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Clamp to the recorded max: the true quantile can't exceed
                // it, and the top bucket's edge may be far above it.
                return Duration::from_nanos(bucket_range(index).1.min(self.max_ns));
            }
        }
        Duration::from_nanos(self.max_ns)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("min", &self.min())
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut last = bucket_index(0);
        for v in 1u64..10_000 {
            let index = bucket_index(v);
            assert!(index == last || index == last + 1, "gap at {v}");
            last = index;
        }
        // Spot-check bounds: the bucket containing v must contain v.
        for v in [0, 1, 63, 64, 65, 1000, 123_456_789, u64::MAX] {
            let (lo, hi) = bucket_bounds(v);
            assert!(lo <= v && v <= hi, "bucket [{lo},{hi}] misses {v}");
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 5, 63] {
            h.record_ns(v);
        }
        assert_eq!(h.quantile(0.25), Duration::from_nanos(0));
        assert_eq!(h.quantile(0.5), Duration::from_nanos(1));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(63));
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.max(), Duration::from_nanos(63));
    }

    #[test]
    fn quantile_error_is_within_one_bucket() {
        let mut h = LatencyHistogram::new();
        let mut values: Vec<u64> = (0..5_000u64)
            .map(|i| (i * 7919 + 13) % 90_000_000)
            .collect();
        for &v in &values {
            h.record_ns(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let estimate = h.quantile(q).as_nanos() as u64;
            let (lo, hi) = bucket_bounds(exact);
            assert!(
                estimate >= exact && estimate <= hi,
                "q={q}: estimate {estimate} not in [{exact}, {hi}] (bucket lo {lo})"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = (i * 31) % 100_000;
            if i % 2 == 0 {
                left.record_ns(v);
            } else {
                right.record_ns(v);
            }
            all.record_ns(v);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert_eq!(left.mean(), all.mean());
        for q in [0.1, 0.5, 0.99, 1.0] {
            assert_eq!(left.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn zero_quantile_rejected() {
        let _ = LatencyHistogram::new().quantile(0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn hist_of(values: &[u64]) -> LatencyHistogram {
            let mut h = LatencyHistogram::new();
            for &v in values {
                h.record_ns(v);
            }
            h
        }

        /// Observable state of a histogram for equality checks.
        fn fingerprint(h: &LatencyHistogram) -> (u64, Duration, Duration, Duration, Vec<Duration>) {
            let quantiles = [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0]
                .iter()
                .map(|&q| h.quantile(q))
                .collect();
            (h.count(), h.min(), h.max(), h.mean(), quantiles)
        }

        proptest! {
            #[test]
            fn merge_is_associative_and_commutative(
                a in proptest::collection::vec(0u64..10_000_000_000, 1..100),
                b in proptest::collection::vec(0u64..10_000_000_000, 1..100),
                c in proptest::collection::vec(0u64..10_000_000_000, 1..100),
            ) {
                // (a ⊕ b) ⊕ c
                let mut left = hist_of(&a);
                left.merge(&hist_of(&b));
                left.merge(&hist_of(&c));
                // a ⊕ (b ⊕ c)
                let mut bc = hist_of(&b);
                bc.merge(&hist_of(&c));
                let mut right = hist_of(&a);
                right.merge(&bc);
                prop_assert_eq!(fingerprint(&left), fingerprint(&right));
                // c ⊕ (b ⊕ a): commutativity
                let mut ba = hist_of(&b);
                ba.merge(&hist_of(&a));
                let mut rev = hist_of(&c);
                rev.merge(&ba);
                prop_assert_eq!(fingerprint(&left), fingerprint(&rev));
                // And both equal recording everything into one histogram.
                let mut all = a.clone();
                all.extend(&b);
                all.extend(&c);
                prop_assert_eq!(fingerprint(&left), fingerprint(&hist_of(&all)));
            }

            #[test]
            fn quantile_error_at_most_one_bucket_width(
                mut values in proptest::collection::vec(0u64..100_000_000_000, 1..200),
                q_millis in 1u32..=1000,
            ) {
                let q = q_millis as f64 / 1000.0;
                let h = hist_of(&values);
                values.sort_unstable();
                let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
                let exact = values[rank - 1];
                let estimate = h.quantile(q).as_nanos() as u64;
                let (_, hi) = bucket_bounds(exact);
                // Never an underestimate, and over by at most the width of
                // the exact value's bucket (clamped to the recorded max).
                prop_assert!(estimate >= exact, "estimate {estimate} < exact {exact}");
                prop_assert!(estimate <= hi, "estimate {estimate} > bucket hi {hi}");
            }
        }
    }
}
