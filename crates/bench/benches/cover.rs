//! Criterion micro-bench for the pure range-covering algorithms (no crypto):
//! BRC, URC and the TDAG single-range cover. These dominate neither build
//! nor search time, but they are the combinatorial heart of the framework
//! and the ablation the DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsse_cover::{brc, urc, Domain, Range, Tdag};
use std::time::Duration;

fn bench_cover(c: &mut Criterion) {
    let domain = Domain::with_bits(30);
    let tdag = Tdag::new(domain);
    let mut group = c.benchmark_group("range_cover");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    for &len in &[100u64, 1_000_000] {
        let range = Range::new(123_456_789, 123_456_789 + len - 1);
        group.bench_with_input(BenchmarkId::new("BRC", len), &range, |b, r| {
            b.iter(|| brc(&domain, *r))
        });
        group.bench_with_input(BenchmarkId::new("URC", len), &range, |b, r| {
            b.iter(|| urc(&domain, *r))
        });
        group.bench_with_input(BenchmarkId::new("SRC", len), &range, |b, r| {
            b.iter(|| tdag.src_cover(*r))
        });
    }

    group.bench_function("TDAG covering_nodes", |b| {
        b.iter(|| tdag.covering_nodes(987_654_321 % domain.size()))
    });
    group.finish();
}

criterion_group!(benches, bench_cover);
criterion_main!(benches);
