//! The Π_bas-style encrypted multimap (Cash et al., NDSS 2014).
//!
//! `BuildIndex` turns the plaintext multimap into a flat dictionary: the
//! `c`-th payload of keyword `w` is stored under label `F(K1_w, c)` with
//! value `Enc(K2_w, payload)`, where `K1_w, K2_w` are two per-keyword keys
//! derived from the master key. A search token for `w` is just `(K1_w,
//! K2_w)`: the server recomputes labels for `c = 0, 1, 2, …` until it misses,
//! decrypting each hit. The server therefore learns the access pattern (how
//! many and which dictionary entries matched) and the search pattern (token
//! equality), and nothing else — the leakage profile the paper assumes of
//! its underlying SSE.
//!
//! # Storage and build layout (hot path)
//!
//! [`EncryptedIndex`] is **arena-backed**: all ciphertexts live in one
//! contiguous byte buffer, and a `label → (offset, len)` table resolves
//! lookups — one allocation for the whole index instead of one `Vec<u8>`
//! per entry, and cache-friendly sequential writes during build.
//!
//! The lookup table uses [`LabelHasher`], a trivial hasher that folds the
//! label bytes into a `u64` instead of running SipHash. That is safe *in
//! this trust model* because labels are not attacker-chosen: every label is
//! a truncated PRF output produced owner-side under a secret key, so label
//! distribution is computationally indistinguishable from uniform and no
//! party in the protocol can craft colliding inputs. (An adversarial
//! *client* inserting chosen labels is outside the paper's model — the
//! owner is the only writer.) HashDoS-resistant hashing would only re-hash
//! already-pseudorandom bytes.
//!
//! `BuildIndex` parallelizes across keywords with rayon: per-keyword nonce
//! seeds are drawn from the caller's RNG *sequentially* (keeping the build
//! a deterministic function of key + RNG stream), the per-keyword label
//! PRF + encryption work runs on all cores, and the chunks are merged into
//! the arena in keyword order, so the resulting index is deterministic
//! regardless of thread scheduling.

use crate::database::SseDatabase;
use rand::{CryptoRng, RngCore, SeedableRng};
use rand_chacha::ChaCha20Rng;
use rayon::prelude::*;
use rsse_crypto::{Key, Prf, StreamCipher, KEY_LEN};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Byte length of dictionary labels (128-bit truncated PRF outputs).
pub const LABEL_LEN: usize = 16;

/// Dictionary label type.
pub type Label = [u8; LABEL_LEN];

/// Trivial hasher for PRF-output labels: folds the written bytes into a
/// `u64` with an xor/rotate, i.e. essentially "use the first 8 label bytes".
///
/// See the module docs for why dropping SipHash is sound here: labels are
/// owner-side PRF outputs (uniform, non-adversarial), so the first 8 bytes
/// are already an ideal hash value.
#[derive(Clone, Copy, Debug, Default)]
pub struct LabelHasher(u64);

impl Hasher for LabelHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = self.0.rotate_left(1) ^ u64::from_le_bytes(word);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type LabelTable = HashMap<Label, (u32, u32), BuildHasherDefault<LabelHasher>>;

/// Owner-side secret key of the SSE scheme: the keyed PRF state on the
/// master key, cached so every trapdoor derivation shares one key schedule.
#[derive(Clone, Debug)]
pub struct SseKey {
    prf: Prf,
}

/// Search token for one keyword: the two per-keyword keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchToken {
    label_key: Key,
    payload_key: Key,
}

impl SearchToken {
    /// Serialized size of a token in bytes (used for query-size accounting).
    pub const SIZE_BYTES: usize = 2 * KEY_LEN;

    /// Derives a token from an externally supplied 32-byte seed.
    ///
    /// This is the hook the Constant-BRC/URC schemes use: instead of letting
    /// the SSE scheme derive the per-keyword keys from its own master key,
    /// the per-keyword keys are derived from the *DPRF value* of the
    /// keyword, so that the server — after expanding a delegated GGM token
    /// into leaf DPRF values — can reconstruct exactly the tokens for the
    /// delegated sub-range and nothing else.
    pub fn derive_from_seed(seed: &[u8; KEY_LEN]) -> Self {
        let seed_key = Key::from_bytes(*seed);
        let prf = Prf::new(&seed_key);
        Self {
            label_key: Key::from_bytes(prf.eval(b"label")),
            payload_key: Key::from_bytes(prf.eval(b"payload")),
        }
    }

    /// The keyed cipher decrypting this token's payloads — what `Search`
    /// instantiates server-side. Exposed so batched callers can decrypt
    /// hits from [`SseScheme::search_batch_scan`] themselves (e.g. into one
    /// reused scratch buffer instead of a fresh allocation per payload).
    pub fn payload_cipher(&self) -> StreamCipher {
        StreamCipher::new(&self.payload_key)
    }
}

/// Incremental label expansion for one token: the counter-scan's label
/// schedule `F(K1_w, 0), F(K1_w, 1), …` exposed **separately from probing**,
/// so batch executors can plan a counter round's probes — dedupe identical
/// labels across queries, group them by shard — before touching storage.
///
/// Trapdoors are deterministic (that *is* the search-pattern leakage), so
/// two equal tokens yield identical label sequences; a planner that merges
/// their probes reveals nothing the per-query scan would not. The PRF key
/// schedule is cached at construction and shared across every call, exactly
/// as in the sequential scan loop.
#[derive(Clone, Debug)]
pub struct TokenLabeler {
    prf: Prf,
}

impl TokenLabeler {
    /// Caches the label-PRF key schedule of `token`.
    pub fn new(token: &SearchToken) -> Self {
        Self {
            prf: Prf::new(&token.label_key),
        }
    }

    /// The dictionary label the scan probes at `counter` (the truncated PRF
    /// output `F(K1_w, counter)`).
    pub fn label_at(&self, counter: u64) -> Label {
        let mut full = [0u8; KEY_LEN];
        self.prf.eval_u64_into(counter, &mut full);
        let mut label = [0u8; LABEL_LEN];
        label.copy_from_slice(&full[..LABEL_LEN]);
        label
    }
}

/// A ciphertext resolved by a dictionary probe.
///
/// In-memory arenas hand out plain borrows of their arena bytes; budgeted
/// disk-backed shards hand out spans **pinned** inside a reference-counted
/// cache block, which stays alive for as long as the span does even if the
/// cache evicts the block concurrently. Either way the payload bytes are
/// reached through [`Deref`], so search code never distinguishes the two.
#[derive(Clone, Debug)]
pub struct CipherSpan<'a>(SpanRepr<'a>);

#[derive(Clone, Debug)]
enum SpanRepr<'a> {
    /// Borrowed straight from an in-memory arena (or a resident block).
    Borrowed(&'a [u8]),
    /// Pinned inside a shared cache block; the `Arc` keeps the block's
    /// bytes alive across a concurrent eviction.
    Pinned {
        block: Arc<[u8]>,
        offset: usize,
        len: usize,
    },
}

impl<'a> CipherSpan<'a> {
    /// A span borrowed from storage owned by the index itself.
    pub fn borrowed(bytes: &'a [u8]) -> Self {
        CipherSpan(SpanRepr::Borrowed(bytes))
    }

    /// A span pinned inside a reference-counted cache block.
    pub fn pinned(block: Arc<[u8]>, offset: usize, len: usize) -> Self {
        debug_assert!(offset + len <= block.len());
        CipherSpan(SpanRepr::Pinned { block, offset, len })
    }
}

impl Deref for CipherSpan<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.0 {
            SpanRepr::Borrowed(bytes) => bytes,
            SpanRepr::Pinned { block, offset, len } => &block[*offset..*offset + *len],
        }
    }
}

impl PartialEq for CipherSpan<'_> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for CipherSpan<'_> {}

/// Read-side interface shared by the dictionary variants: the single-arena
/// [`EncryptedIndex`] and the [`ShardedIndex`](crate::sharded::ShardedIndex).
///
/// All search algorithms ([`SseScheme::search`], [`SseScheme::try_search`],
/// [`SseScheme::search_batch`], …) are generic over this trait, so a scheme
/// can move between the unsharded and sharded server layouts without
/// touching its query logic.
///
/// Probes are **fallible**: a disk-backed index distinguishes "label
/// absent" (`Ok(None)`) from "the storage failed" (`Err`). The in-memory
/// backends set [`Error`](Self::Error) to [`std::convert::Infallible`], so
/// the compiler statically erases every error branch on the hot path —
/// the fallible API costs the arena layout nothing.
pub trait IndexLookup {
    /// Probe failure type: [`std::convert::Infallible`] for in-memory
    /// backends, `StorageError` for disk-backed ones.
    type Error;

    /// Looks up the ciphertext stored under `label`.
    ///
    /// `Ok(None)` means the label is genuinely absent; `Err` means the
    /// backend could not resolve the probe (e.g. a block read failed).
    fn try_get(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, Self::Error>;

    /// Resolves a batch of probes, writing `out[i] = try_get(&labels[i])?`.
    ///
    /// The default implementation probes in input order; sharded
    /// implementations override it to group probes by shard for table
    /// locality. `out` is cleared first, and results always come back in
    /// probe order regardless of the internal grouping. The first failed
    /// probe aborts the batch.
    fn try_get_many<'a>(
        &'a self,
        labels: &[Label],
        out: &mut Vec<Option<CipherSpan<'a>>>,
    ) -> Result<(), Self::Error> {
        out.clear();
        for label in labels {
            out.push(self.try_get(label)?);
        }
        Ok(())
    }
}

/// The server-side encrypted index: a flat dictionary from labels to
/// encrypted payloads, stored as one contiguous ciphertext arena plus a
/// `label → (offset, len)` table.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rsse_sse::{SseDatabase, SseScheme};
///
/// let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(1);
/// let key = SseScheme::setup(&mut rng);
/// let mut db = SseDatabase::new();
/// db.add(b"keyword".to_vec(), b"payload".to_vec());
///
/// let index = SseScheme::build_index(&key, &db, &mut rng);
/// assert_eq!(index.len(), 1);
/// let token = SseScheme::trapdoor(&key, b"keyword");
/// assert_eq!(
///     SseScheme::search(&index, &token).unwrap(),
///     vec![b"payload".to_vec()]
/// );
/// ```
#[derive(Clone, Debug, Default)]
pub struct EncryptedIndex {
    pub(crate) table: LabelTable,
    pub(crate) arena: Vec<u8>,
}

impl IndexLookup for EncryptedIndex {
    type Error = std::convert::Infallible;

    fn try_get(&self, label: &Label) -> Result<Option<CipherSpan<'_>>, Self::Error> {
        Ok(EncryptedIndex::get(self, label).map(CipherSpan::borrowed))
    }
}

impl EncryptedIndex {
    /// Number of entries in the dictionary (the only thing the index leaks,
    /// `L1` in the paper's terminology).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Approximate server-side storage footprint in bytes
    /// (labels + encrypted payloads).
    pub fn storage_bytes(&self) -> usize {
        self.table.len() * LABEL_LEN + self.arena.len()
    }

    /// Looks up the ciphertext stored under `label`.
    pub fn get(&self, label: &Label) -> Option<&[u8]> {
        self.table
            .get(label)
            .map(|&(offset, len)| &self.arena[offset as usize..(offset + len) as usize])
    }

    /// Iterates over the stored ciphertexts (used by leakage-oriented tests).
    pub fn ciphertexts(&self) -> impl Iterator<Item = &[u8]> {
        self.table
            .values()
            .map(|&(offset, len)| &self.arena[offset as usize..(offset + len) as usize])
    }

    /// Appends an entry; the value bytes were already appended to the arena
    /// by the caller at `offset`.
    fn insert_span(&mut self, label: Label, offset: usize, len: usize) {
        assert!(
            offset + len <= u32::MAX as usize,
            "arena limited to 4 GiB per index; shard the dataset first"
        );
        self.table.insert(label, (offset as u32, len as u32));
    }

    /// Creates an empty index with pre-sized table and arena — the shard
    /// builder knows both exactly from its tally pass.
    pub(crate) fn with_capacity(entries: usize, arena_bytes: usize) -> Self {
        Self {
            table: LabelTable::with_capacity_and_hasher(entries, BuildHasherDefault::default()),
            arena: Vec::with_capacity(arena_bytes),
        }
    }

    /// Appends one `(label, ciphertext)` entry at the end of the arena.
    pub(crate) fn append_entry(&mut self, label: Label, ciphertext: &[u8]) {
        let offset = self.arena.len();
        self.arena.extend_from_slice(ciphertext);
        self.insert_span(label, offset, ciphertext.len());
    }

    /// The `(label, offset, len)` directory sorted by arena offset — the
    /// deterministic serialization order of the on-disk shard format (arena
    /// spans tile the region in exactly this order).
    pub(crate) fn entries_by_offset(&self) -> Vec<(Label, u32, u32)> {
        let mut entries: Vec<(Label, u32, u32)> = self
            .table
            .iter()
            .map(|(label, &(offset, len))| (*label, offset, len))
            .collect();
        entries.sort_unstable_by_key(|&(_, offset, _)| offset);
        entries
    }

    /// Raw arena bytes (the ciphertext region of the serialized format).
    pub(crate) fn arena_raw(&self) -> &[u8] {
        &self.arena
    }

    /// Raw arena bytes (used by the byte-identity property tests).
    #[cfg(test)]
    pub(crate) fn arena_bytes_raw(&self) -> &[u8] {
        &self.arena
    }

    /// Raw label table (used by the byte-identity property tests).
    #[cfg(test)]
    pub(crate) fn table_raw(&self) -> &LabelTable {
        &self.table
    }
}

/// One keyword's worth of encrypted entries, produced on a worker thread
/// and merged into the arena (or distributed across shards) in
/// deterministic keyword order.
pub(crate) struct KeywordChunk {
    /// Entry labels in counter order.
    pub(crate) labels: Vec<Label>,
    /// Ciphertext spans (offset within `buf`, len), parallel to `labels`.
    pub(crate) spans: Vec<(u32, u32)>,
    /// Concatenated ciphertexts for this keyword.
    pub(crate) buf: Vec<u8>,
}

/// Encrypts one keyword's payload list with a cached label PRF and cipher
/// state; `nonce_seed` keys the per-entry encryption nonce stream.
fn encrypt_list(
    token: &SearchToken,
    payloads: &[Vec<u8>],
    nonce_seed: [u8; KEY_LEN],
) -> KeywordChunk {
    let total: usize = payloads
        .iter()
        .map(|p| StreamCipher::ciphertext_len(p.len()))
        .sum();
    encrypt_payloads(
        token,
        payloads.iter().map(Vec::as_slice),
        payloads.len(),
        total,
        nonce_seed,
    )
}

/// Generic encryption core shared by the `Vec`-payload, fixed-stride and
/// external-memory build paths.
pub(crate) fn encrypt_payloads<'a>(
    token: &SearchToken,
    payloads: impl Iterator<Item = &'a [u8]>,
    count: usize,
    total_ciphertext: usize,
    nonce_seed: [u8; KEY_LEN],
) -> KeywordChunk {
    let label_prf = Prf::new(&token.label_key);
    let cipher = StreamCipher::new(&token.payload_key);
    let mut nonce_rng = ChaCha20Rng::from_seed(nonce_seed);
    let mut chunk = KeywordChunk {
        labels: Vec::with_capacity(count),
        spans: Vec::with_capacity(count),
        buf: Vec::with_capacity(total_ciphertext),
    };
    let mut label_full = [0u8; KEY_LEN];
    for (counter, payload) in payloads.enumerate() {
        label_prf.eval_u64_into(counter as u64, &mut label_full);
        let mut label = [0u8; LABEL_LEN];
        label.copy_from_slice(&label_full[..LABEL_LEN]);
        let offset = chunk.buf.len();
        let len = cipher.encrypt_to(&mut nonce_rng, payload, &mut chunk.buf);
        chunk.labels.push(label);
        chunk.spans.push((offset as u32, len as u32));
    }
    chunk
}

/// Merges per-keyword chunks (already in deterministic keyword order) into
/// the final arena-backed index.
pub(crate) fn merge_chunks(chunks: Vec<KeywordChunk>) -> EncryptedIndex {
    let entries: usize = chunks.iter().map(|c| c.labels.len()).sum();
    let arena_len: usize = chunks.iter().map(|c| c.buf.len()).sum();
    let mut index = EncryptedIndex {
        table: LabelTable::with_capacity_and_hasher(entries, BuildHasherDefault::default()),
        arena: Vec::with_capacity(arena_len),
    };
    for chunk in chunks {
        let base = index.arena.len();
        index.arena.extend_from_slice(&chunk.buf);
        for (label, (offset, len)) in chunk.labels.into_iter().zip(chunk.spans) {
            index.insert_span(label, base + offset as usize, len as usize);
        }
    }
    index
}

/// Draws one 32-byte nonce seed per keyword from the caller's RNG.
///
/// Drawing happens sequentially, in keyword order, so the whole build stays
/// a deterministic function of (key, RNG stream) no matter how the
/// follow-on encryption work is scheduled across threads.
fn draw_nonce_seeds<R: RngCore + CryptoRng>(count: usize, rng: &mut R) -> Vec<[u8; KEY_LEN]> {
    (0..count)
        .map(|_| {
            let mut seed = [0u8; KEY_LEN];
            rng.fill_bytes(&mut seed);
            seed
        })
        .collect()
}

/// The static SSE scheme (Setup, BuildIndex, Trpdr, Search).
#[derive(Clone, Copy, Debug, Default)]
pub struct SseScheme;

impl SseScheme {
    /// `Setup(1^λ)`: samples the owner's secret key.
    pub fn setup<R: RngCore + CryptoRng>(rng: &mut R) -> SseKey {
        Self::key_from(Key::generate(rng))
    }

    /// Deterministically derives an SSE key from an existing key — used by
    /// the range schemes, which derive all their sub-keys from one master.
    pub fn key_from(master: Key) -> SseKey {
        SseKey {
            prf: Prf::new(&master),
        }
    }

    /// `BuildIndex(k, D)`: encrypts the multimap into a flat dictionary.
    ///
    /// Per-keyword work (trapdoor derivation, label PRF, payload
    /// encryption) runs in parallel across all cores; the merge order is
    /// the database's keyword order, so the output is deterministic.
    pub fn build_index<R: RngCore + CryptoRng>(
        key: &SseKey,
        database: &SseDatabase,
        rng: &mut R,
    ) -> EncryptedIndex {
        merge_chunks(Self::chunks_from_database(key, database, rng))
    }

    /// Produces the per-keyword encrypted chunks of [`build_index`]
    /// (shared by the arena and sharded assembly paths; RNG consumption is
    /// identical in both, one nonce seed per keyword).
    ///
    /// [`build_index`]: Self::build_index
    pub(crate) fn chunks_from_database<R: RngCore + CryptoRng>(
        key: &SseKey,
        database: &SseDatabase,
        rng: &mut R,
    ) -> Vec<KeywordChunk> {
        let keywords: Vec<(&[u8], &[Vec<u8>])> = database.iter().collect();
        let seeds = draw_nonce_seeds(keywords.len(), rng);
        let jobs: Vec<_> = keywords.into_iter().zip(seeds).collect();
        jobs.into_par_iter()
            .map(|((keyword, payloads), seed)| {
                let token = Self::trapdoor(key, keyword);
                encrypt_list(&token, payloads, seed)
            })
            .collect()
    }

    /// Variant of `BuildIndex` that takes pre-derived per-keyword tokens.
    ///
    /// Used by schemes (Constant-BRC/URC) whose decryption capability must
    /// come from a delegatable PRF rather than from the SSE master key; the
    /// index produced is structurally identical to [`build_index`]'s and is
    /// searched with the exact same [`search`] algorithm.
    ///
    /// [`build_index`]: Self::build_index
    /// [`search`]: Self::search
    pub fn build_index_from_token_lists<R: RngCore + CryptoRng>(
        lists: &[(SearchToken, Vec<Vec<u8>>)],
        rng: &mut R,
    ) -> EncryptedIndex {
        merge_chunks(Self::chunks_from_token_lists(lists, rng))
    }

    /// Chunk-producing core of [`build_index_from_token_lists`]
    /// (shared with the sharded assembly path).
    ///
    /// [`build_index_from_token_lists`]: Self::build_index_from_token_lists
    pub(crate) fn chunks_from_token_lists<R: RngCore + CryptoRng>(
        lists: &[(SearchToken, Vec<Vec<u8>>)],
        rng: &mut R,
    ) -> Vec<KeywordChunk> {
        let seeds = draw_nonce_seeds(lists.len(), rng);
        let jobs: Vec<_> = lists.iter().zip(seeds).collect();
        jobs.into_par_iter()
            .map(|((token, payloads), seed)| encrypt_list(token, payloads, seed))
            .collect()
    }

    /// Fixed-stride `BuildIndex`: every payload of a keyword is a `[u8; P]`
    /// array, stored contiguously. This is the fast path the range schemes
    /// use — their payloads are fixed-size id or value-span encodings — and
    /// it avoids one heap allocation per plaintext payload on top of the
    /// arena's per-ciphertext savings. Identical output layout to
    /// [`build_index`](Self::build_index): the index is searched with the
    /// same tokens and algorithms.
    pub fn build_index_fixed<const P: usize, R: RngCore + CryptoRng>(
        key: &SseKey,
        lists: &[(Vec<u8>, Vec<[u8; P]>)],
        rng: &mut R,
    ) -> EncryptedIndex {
        merge_chunks(Self::chunks_from_fixed(key, lists, rng))
    }

    /// Chunk-producing core of [`build_index_fixed`]
    /// (shared with the sharded assembly path).
    ///
    /// [`build_index_fixed`]: Self::build_index_fixed
    pub(crate) fn chunks_from_fixed<const P: usize, R: RngCore + CryptoRng>(
        key: &SseKey,
        lists: &[(Vec<u8>, Vec<[u8; P]>)],
        rng: &mut R,
    ) -> Vec<KeywordChunk> {
        let seeds = draw_nonce_seeds(lists.len(), rng);
        let jobs: Vec<_> = lists.iter().zip(seeds).collect();
        jobs.into_par_iter()
            .map(|((keyword, payloads), seed)| {
                let token = Self::trapdoor(key, keyword);
                encrypt_payloads(
                    &token,
                    payloads.iter().map(|p| p.as_slice()),
                    payloads.len(),
                    payloads.len() * StreamCipher::ciphertext_len(P),
                    seed,
                )
            })
            .collect()
    }

    /// `Trpdr(k, w)`: derives the search token for keyword `w`.
    ///
    /// Deterministic, as in the paper: issuing the same keyword twice yields
    /// the same token (this *is* the search-pattern leakage).
    pub fn trapdoor(key: &SseKey, keyword: &[u8]) -> SearchToken {
        SearchToken {
            label_key: Key::from_bytes(key.prf.eval_parts(&[b"label", keyword])),
            payload_key: Key::from_bytes(key.prf.eval_parts(&[b"payload", keyword])),
        }
    }

    /// The shared counter-scan: walks labels `F(K1_w, 0), F(K1_w, 1), …`
    /// until the first miss, invoking `visit` on each hit's ciphertext. A
    /// failed probe aborts the scan with the backend's error instead of
    /// being silently treated as the end of the list.
    fn scan_entries<I: IndexLookup>(
        index: &I,
        token: &SearchToken,
        mut visit: impl FnMut(&[u8]),
    ) -> Result<usize, I::Error> {
        let labeler = TokenLabeler::new(token);
        let mut counter = 0u64;
        loop {
            let label = labeler.label_at(counter);
            match index.try_get(&label)? {
                Some(ciphertext) => {
                    visit(&ciphertext);
                    counter += 1;
                }
                None => return Ok(counter as usize),
            }
        }
    }

    /// `Search(t, I)`: returns the decrypted payloads for the token's
    /// keyword, in storage-counter order.
    ///
    /// A corrupt (undecryptable) entry is **skipped**, not a panic: the
    /// server must stay available even if a stored ciphertext was damaged.
    /// Use [`try_search`](Self::try_search) to surface corruption instead.
    ///
    /// A *storage* failure (a disk-backed index that could not read a
    /// block) is never skipped: it aborts the scan with the backend's
    /// typed error, so a caller can distinguish "no more entries" from
    /// "the disk failed mid-scan". In-memory indexes have
    /// `Error = Infallible` and cannot take that branch.
    pub fn search<I: IndexLookup>(
        index: &I,
        token: &SearchToken,
    ) -> Result<Vec<Vec<u8>>, I::Error> {
        let cipher = StreamCipher::new(&token.payload_key);
        let mut results = Vec::new();
        Self::scan_entries(index, token, |ciphertext| {
            if let Some(plaintext) = cipher.decrypt(ciphertext) {
                results.push(plaintext);
            }
        })?;
        Ok(results)
    }

    /// Like [`search`](Self::search) but also propagates corruption:
    /// returns [`SearchError::Corrupt`] with the counter position of the
    /// first undecryptable entry, or [`SearchError::Storage`] if the
    /// backend failed mid-scan.
    pub fn try_search<I: IndexLookup>(
        index: &I,
        token: &SearchToken,
    ) -> Result<Vec<Vec<u8>>, SearchError<I::Error>> {
        let cipher = StreamCipher::new(&token.payload_key);
        let mut results = Vec::new();
        let mut corrupt: Option<usize> = None;
        let mut position = 0usize;
        Self::scan_entries(index, token, |ciphertext| {
            match cipher.decrypt(ciphertext) {
                Some(plaintext) => results.push(plaintext),
                None => {
                    if corrupt.is_none() {
                        corrupt = Some(position);
                    }
                }
            }
            position += 1;
        })
        .map_err(SearchError::Storage)?;
        match corrupt {
            Some(position) => Err(SearchError::Corrupt(CorruptEntry { position })),
            None => Ok(results),
        }
    }

    /// Like [`search`](Self::search) but only counts matches without
    /// decrypting — handy for benchmarks isolating dictionary lookups.
    pub fn search_count<I: IndexLookup>(index: &I, token: &SearchToken) -> Result<usize, I::Error> {
        Self::scan_entries(index, token, |_| {})
    }

    /// The batched counter-scan underlying [`search_batch`]: advances all
    /// tokens in lockstep, one counter round at a time. Each round computes
    /// the next label of every still-live token into one shared PRF scratch
    /// buffer, resolves the whole probe vector with [`IndexLookup::get_many`]
    /// (which groups probes by shard on a sharded index), and calls
    /// `visit(token_index, ciphertext)` for every hit. A token leaves the
    /// live set at its first miss, exactly as in the per-token scan, so the
    /// per-token visit sequences are identical to [`scan_entries`]'s.
    ///
    /// Returns the per-token match counts.
    ///
    /// [`search_batch`]: Self::search_batch
    fn scan_batch<'a, I: IndexLookup>(
        index: &'a I,
        tokens: &[SearchToken],
        mut visit: impl FnMut(usize, &[u8]),
    ) -> Result<Vec<usize>, I::Error> {
        let mut counts = vec![0usize; tokens.len()];
        // One cached PRF key schedule per token, shared across rounds (the
        // label-expansion half of the scan, reused by external batch
        // planners through [`TokenLabeler`]).
        let labelers: Vec<TokenLabeler> = tokens.iter().map(TokenLabeler::new).collect();
        let mut live: Vec<u32> = (0..tokens.len() as u32).collect();
        let mut labels: Vec<Label> = Vec::with_capacity(live.len());
        let mut hits: Vec<Option<CipherSpan<'a>>> = Vec::with_capacity(live.len());
        let mut counter = 0u64;
        while !live.is_empty() {
            labels.clear();
            for &t in &live {
                labels.push(labelers[t as usize].label_at(counter));
            }
            index.try_get_many(&labels, &mut hits)?;
            let mut kept = 0usize;
            for (slot, hit) in hits.iter().enumerate() {
                let t = live[slot] as usize;
                if let Some(ciphertext) = hit {
                    visit(t, ciphertext);
                    counts[t] += 1;
                    live[kept] = t as u32;
                    kept += 1;
                }
            }
            live.truncate(kept);
            counter += 1;
        }
        Ok(counts)
    }

    /// Batched `Search`: answers a whole token vector in one pass, returning
    /// each token's decrypted payload list in token order.
    ///
    /// Per-token results are **identical** to calling
    /// [`search`](Self::search) once per token (same payloads, same
    /// counter order, corrupt entries skipped the same way); what changes is
    /// the work layout: label-PRF scratch is shared across tokens, every
    /// counter round's probes are resolved together (grouped by shard on a
    /// [`ShardedIndex`](crate::sharded::ShardedIndex)), and per-token
    /// allocations are amortized. This is the server entry point for a range
    /// query's whole BRC/URC cover.
    pub fn search_batch<I: IndexLookup>(
        index: &I,
        tokens: &[SearchToken],
    ) -> Result<Vec<Vec<Vec<u8>>>, I::Error> {
        let ciphers: Vec<StreamCipher> = tokens
            .iter()
            .map(|token| StreamCipher::new(&token.payload_key))
            .collect();
        let mut results: Vec<Vec<Vec<u8>>> = tokens.iter().map(|_| Vec::new()).collect();
        Self::scan_batch(index, tokens, |t, ciphertext| {
            if let Some(plaintext) = ciphers[t].decrypt(ciphertext) {
                results[t].push(plaintext);
            }
        })?;
        Ok(results)
    }

    /// Visitor variant of [`search_batch`](Self::search_batch) for callers
    /// that post-process payloads without keeping them (e.g. decoding tuple
    /// ids into a flat result set with one reused decryption buffer).
    /// `visit` receives `(token index, ciphertext)`; returns per-token match
    /// counts (matched entries, decryptable or not). A failed probe aborts
    /// the whole batch with the backend's typed error.
    pub fn search_batch_scan<I: IndexLookup>(
        index: &I,
        tokens: &[SearchToken],
        visit: impl FnMut(usize, &[u8]),
    ) -> Result<Vec<usize>, I::Error> {
        Self::scan_batch(index, tokens, visit)
    }
}

/// Error returned by [`SseScheme::try_search`] when a stored entry fails to
/// decrypt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorruptEntry {
    /// Counter position of the first corrupt entry within the keyword's list.
    pub position: usize,
}

impl std::fmt::Display for CorruptEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "index entry at counter {} failed to decrypt",
            self.position
        )
    }
}

impl std::error::Error for CorruptEntry {}

/// Error returned by [`SseScheme::try_search`]: either a stored entry
/// failed to decrypt, or the storage backend failed to resolve a probe.
///
/// `E` is the index's [`IndexLookup::Error`]; for in-memory indexes it is
/// [`std::convert::Infallible`], so only the corruption variant can occur.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchError<E> {
    /// An entry matched the token but could not be decrypted.
    Corrupt(CorruptEntry),
    /// The storage backend failed mid-scan.
    Storage(E),
}

impl<E: std::fmt::Display> std::fmt::Display for SearchError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::Corrupt(corrupt) => corrupt.fmt(f),
            SearchError::Storage(error) => write!(f, "storage failed during search: {error}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for SearchError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SearchError::Corrupt(corrupt) => Some(corrupt),
            SearchError::Storage(error) => Some(error),
        }
    }
}

/// Reference (pre-arena) implementation used by the equivalence property
/// tests: one `HashMap<Label, Vec<u8>>` with a heap allocation per entry
/// and SipHash hashing, built sequentially. Kept runnable so the tests can
/// prove the arena-backed path byte-identical, and as a baseline for the
/// `index_build` benches.
pub mod reference {
    use super::*;

    /// The old per-entry dictionary.
    #[derive(Clone, Debug, Default)]
    pub struct ReferenceIndex {
        /// Label → individually allocated ciphertext.
        pub dictionary: HashMap<Label, Vec<u8>>,
    }

    /// Sequential `BuildIndex` against the per-entry dictionary, consuming
    /// the RNG exactly like [`SseScheme::build_index`] (one nonce seed per
    /// keyword) so both paths produce byte-identical ciphertexts.
    pub fn build_index<R: RngCore + CryptoRng>(
        key: &SseKey,
        database: &SseDatabase,
        rng: &mut R,
    ) -> ReferenceIndex {
        let mut dictionary = HashMap::new();
        for (keyword, payloads) in database.iter() {
            let token = SseScheme::trapdoor(key, keyword);
            let mut seed = [0u8; KEY_LEN];
            rng.fill_bytes(&mut seed);
            let chunk = encrypt_list(&token, payloads, seed);
            for (label, (offset, len)) in chunk.labels.iter().zip(&chunk.spans) {
                let span = &chunk.buf[*offset as usize..(*offset + *len) as usize];
                dictionary.insert(*label, span.to_vec());
            }
        }
        ReferenceIndex { dictionary }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn sample_db() -> SseDatabase {
        let mut db = SseDatabase::new();
        db.add(b"apple".to_vec(), 1u64.to_le_bytes().to_vec());
        db.add(b"apple".to_vec(), 2u64.to_le_bytes().to_vec());
        db.add(b"apple".to_vec(), 3u64.to_le_bytes().to_vec());
        db.add(b"banana".to_vec(), 9u64.to_le_bytes().to_vec());
        db
    }

    #[test]
    fn roundtrip_search_returns_exactly_the_payloads() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let key = SseScheme::setup(&mut rng);
        let index = SseScheme::build_index(&key, &sample_db(), &mut rng);
        assert_eq!(index.len(), 4);

        let token = SseScheme::trapdoor(&key, b"apple");
        let results = SseScheme::search(&index, &token).unwrap();
        assert_eq!(
            results,
            vec![
                1u64.to_le_bytes().to_vec(),
                2u64.to_le_bytes().to_vec(),
                3u64.to_le_bytes().to_vec()
            ]
        );

        let token = SseScheme::trapdoor(&key, b"banana");
        assert_eq!(SseScheme::search(&index, &token).unwrap().len(), 1);
    }

    #[test]
    fn absent_keyword_returns_nothing() {
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let key = SseScheme::setup(&mut rng);
        let index = SseScheme::build_index(&key, &sample_db(), &mut rng);
        let token = SseScheme::trapdoor(&key, b"cherry");
        assert!(SseScheme::search(&index, &token).unwrap().is_empty());
        assert_eq!(SseScheme::search_count(&index, &token).unwrap(), 0);
    }

    #[test]
    fn trapdoors_are_deterministic_and_keyword_specific() {
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let key = SseScheme::setup(&mut rng);
        assert_eq!(
            SseScheme::trapdoor(&key, b"apple"),
            SseScheme::trapdoor(&key, b"apple")
        );
        assert_ne!(
            SseScheme::trapdoor(&key, b"apple"),
            SseScheme::trapdoor(&key, b"banana")
        );
    }

    #[test]
    fn wrong_key_finds_nothing() {
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let key = SseScheme::setup(&mut rng);
        let other = SseScheme::setup(&mut rng);
        let index = SseScheme::build_index(&key, &sample_db(), &mut rng);
        let token = SseScheme::trapdoor(&other, b"apple");
        assert!(SseScheme::search(&index, &token).unwrap().is_empty());
    }

    #[test]
    fn index_entries_look_unlinkable() {
        // The index must not contain the plaintext payloads anywhere.
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let key = SseScheme::setup(&mut rng);
        let mut db = SseDatabase::new();
        let secret = b"super-secret-payload-value".to_vec();
        db.add(b"w".to_vec(), secret.clone());
        let index = SseScheme::build_index(&key, &db, &mut rng);
        for value in index.ciphertexts() {
            assert!(!value
                .windows(secret.len())
                .any(|window| window == secret.as_slice()));
        }
    }

    #[test]
    fn search_count_matches_search_len() {
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let key = SseScheme::setup(&mut rng);
        let index = SseScheme::build_index(&key, &sample_db(), &mut rng);
        for kw in [
            b"apple".as_slice(),
            b"banana".as_slice(),
            b"none".as_slice(),
        ] {
            let token = SseScheme::trapdoor(&key, kw);
            assert_eq!(
                SseScheme::search_count(&index, &token).unwrap(),
                SseScheme::search(&index, &token).unwrap().len()
            );
        }
    }

    #[test]
    fn storage_accounting_counts_labels_and_ciphertexts() {
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let key = SseScheme::setup(&mut rng);
        let index = SseScheme::build_index(&key, &sample_db(), &mut rng);
        // 4 entries, each: 16-byte label + (16-byte nonce + 8-byte payload).
        assert_eq!(index.storage_bytes(), 4 * (LABEL_LEN + 16 + 8));
    }

    #[test]
    fn key_from_round_trips_master() {
        let master = Key::from_bytes([9u8; KEY_LEN]);
        let key = SseScheme::key_from(master.clone());
        let mut rng = ChaCha20Rng::seed_from_u64(8);
        let index = SseScheme::build_index(&key, &sample_db(), &mut rng);
        // A key reconstructed from the same master must produce working tokens.
        let key2 = SseScheme::key_from(master);
        let token = SseScheme::trapdoor(&key2, b"apple");
        assert_eq!(SseScheme::search(&index, &token).unwrap().len(), 3);
    }

    #[test]
    fn token_lists_build_is_searchable_with_same_tokens() {
        let mut rng = ChaCha20Rng::seed_from_u64(9);
        let seed_a = [1u8; KEY_LEN];
        let seed_b = [2u8; KEY_LEN];
        let ta = SearchToken::derive_from_seed(&seed_a);
        let tb = SearchToken::derive_from_seed(&seed_b);
        let index = SseScheme::build_index_from_token_lists(
            &[
                (ta.clone(), vec![b"x".to_vec(), b"y".to_vec()]),
                (tb.clone(), vec![b"z".to_vec()]),
            ],
            &mut rng,
        );
        assert_eq!(index.len(), 3);
        assert_eq!(
            SseScheme::search(&index, &ta).unwrap(),
            vec![b"x".to_vec(), b"y".to_vec()]
        );
        assert_eq!(SseScheme::search(&index, &tb).unwrap(), vec![b"z".to_vec()]);
        // A token from an unrelated seed finds nothing.
        let tc = SearchToken::derive_from_seed(&[3u8; KEY_LEN]);
        assert!(SseScheme::search(&index, &tc).unwrap().is_empty());
    }

    #[test]
    fn derive_from_seed_is_deterministic() {
        let seed = [7u8; KEY_LEN];
        assert_eq!(
            SearchToken::derive_from_seed(&seed),
            SearchToken::derive_from_seed(&seed)
        );
        assert_ne!(
            SearchToken::derive_from_seed(&seed),
            SearchToken::derive_from_seed(&[8u8; KEY_LEN])
        );
    }

    #[test]
    fn corrupt_entry_is_skipped_not_panicking() {
        // Build an index whose only entry is too short to decrypt (shorter
        // than a nonce) by corrupting the arena directly.
        let mut rng = ChaCha20Rng::seed_from_u64(10);
        let key = SseScheme::setup(&mut rng);
        let mut db = SseDatabase::new();
        db.add(b"w".to_vec(), b"payload".to_vec());
        db.add(b"w".to_vec(), b"payload-2".to_vec());
        let mut index = SseScheme::build_index(&key, &db, &mut rng);
        // Truncate the first entry's span to 3 bytes (< NONCE_LEN).
        let token = SseScheme::trapdoor(&key, b"w");
        let label_prf = Prf::new(&Key::from_bytes(*token.label_key.as_bytes()));
        let first: Label = label_prf.eval_truncated(&0u64.to_le_bytes());
        let span = index.table.get_mut(&first).expect("entry exists");
        span.1 = 3;

        // search skips the corrupt entry, still returning the healthy one.
        let results = SseScheme::search(&index, &token).unwrap();
        assert_eq!(results, vec![b"payload-2".to_vec()]);
        // try_search reports the corrupt position.
        assert_eq!(
            SseScheme::try_search(&index, &token),
            Err(SearchError::Corrupt(CorruptEntry { position: 0 }))
        );
        // search_count is unaffected (it never decrypts).
        assert_eq!(SseScheme::search_count(&index, &token).unwrap(), 2);
    }

    #[test]
    fn label_hasher_uses_label_bytes() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let build: BuildHasherDefault<LabelHasher> = BuildHasherDefault::default();
        let a = build.hash_one([1u8; LABEL_LEN]);
        let b = build.hash_one([1u8; LABEL_LEN]);
        let c = build.hash_one([2u8; LABEL_LEN]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn arbitrary_multimaps_roundtrip(entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..8),
             proptest::collection::vec(any::<u8>(), 0..24)), 0..60),
            seed in any::<u64>())
        {
            let mut rng = ChaCha20Rng::seed_from_u64(seed);
            let key = SseScheme::setup(&mut rng);
            let mut db = SseDatabase::new();
            for (k, v) in &entries {
                db.add(k.clone(), v.clone());
            }
            let index = SseScheme::build_index(&key, &db, &mut rng);
            prop_assert_eq!(index.len(), db.entry_count());
            // Every keyword's payload list is returned exactly (same multiset,
            // Π_bas preserves insertion order per keyword).
            for (keyword, expected) in db.iter() {
                let token = SseScheme::trapdoor(&key, keyword);
                let got = SseScheme::search(&index, &token).unwrap();
                prop_assert_eq!(got, expected.to_vec());
            }
        }

        /// The ISSUE's acceptance property: for arbitrary multimaps, the
        /// arena-backed index stores **byte-identical** (label, ciphertext)
        /// pairs to the reference per-entry dictionary, given the same key
        /// and RNG stream — and searches agree byte-for-byte.
        #[test]
        fn arena_index_is_byte_identical_to_reference(entries in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 1..6),
             proptest::collection::vec(any::<u8>(), 0..40)), 0..50),
            seed in any::<u64>())
        {
            let mut db = SseDatabase::new();
            for (k, v) in &entries {
                db.add(k.clone(), v.clone());
            }
            let key = SseScheme::key_from(Key::from_bytes([0xA5; KEY_LEN]));

            let mut rng_arena = ChaCha20Rng::seed_from_u64(seed);
            let arena = SseScheme::build_index(&key, &db, &mut rng_arena);
            let mut rng_reference = ChaCha20Rng::seed_from_u64(seed);
            let reference = reference::build_index(&key, &db, &mut rng_reference);

            prop_assert_eq!(arena.len(), reference.dictionary.len());
            for (label, ciphertext) in &reference.dictionary {
                prop_assert_eq!(arena.get(label), Some(ciphertext.as_slice()),
                    "label spans must match the reference dictionary");
            }
            for (keyword, expected) in db.iter() {
                let token = SseScheme::trapdoor(&key, keyword);
                prop_assert_eq!(SseScheme::search(&arena, &token).unwrap(), expected.to_vec());
            }
        }
    }
}
