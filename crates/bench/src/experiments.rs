//! One function per table/figure of the paper's evaluation section.
//!
//! Every function builds its own datasets from the workload generators
//! (reproducibly, from `Scale::seed`), runs the measurement, prints an
//! aligned table and writes a CSV under `target/experiments/`. Absolute
//! timings obviously differ from the paper's 2016 Java/i7 testbed; the
//! quantities to compare are the *relative* ones (orderings, ratios,
//! crossovers), which EXPERIMENTS.md tracks.

use crate::report::{mib, millis, secs, Report};
use crate::scale::{DatasetKind, Scale};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use rsse_core::schemes::plain_sse::PlainSseScheme;
use rsse_core::schemes::{AnyScheme, SchemeKind};
use rsse_core::{Dataset, Evaluation, RangeScheme};
use rsse_cover::{Domain, Tdag};
use rsse_updates::{UpdateConfig, UpdateEntry, UpdateManager};
use rsse_workload::{
    gowalla_like, percent_of_domain, random_queries_of_len, usps_like, DatasetProfile,
};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

fn make_dataset(kind: DatasetKind, n: usize, scale: &Scale, rng: &mut ChaCha20Rng) -> Dataset {
    match kind {
        DatasetKind::Gowalla => gowalla_like(n, scale.gowalla_domain, rng),
        DatasetKind::Usps => usps_like(n, scale.usps_domain, rng),
    }
}

/// Dataset used by the Figure 6–7 range-size sweeps: same distributional
/// profile, smaller domain (the Constant schemes' O(R) search makes
/// full-domain sweeps over the Figure-5 domain impractically slow at laptop
/// scale; the trends are domain-size independent).
fn make_sweep_dataset(kind: DatasetKind, scale: &Scale, rng: &mut ChaCha20Rng) -> Dataset {
    match kind {
        DatasetKind::Gowalla => gowalla_like(scale.sweep_n, scale.sweep_domain, rng),
        DatasetKind::Usps => usps_like(scale.sweep_n, scale.sweep_domain, rng),
    }
}

/// The scheme set shown in the index-cost experiments (Figure 5 / Table 2).
const INDEX_SCHEMES: [SchemeKind; 5] = [
    SchemeKind::ConstantBrc,
    SchemeKind::LogarithmicBrc,
    SchemeKind::LogarithmicSrc,
    SchemeKind::LogarithmicSrcI,
    SchemeKind::Pb,
];

/// **Table 1 (measured):** per-scheme query size, search time, storage and
/// false positives on a common workload, next to the paper's asymptotic
/// claims.
pub fn table1(scale: &Scale) -> Report {
    let mut rng = ChaCha20Rng::seed_from_u64(scale.seed);
    let dataset = make_dataset(DatasetKind::Gowalla, scale.gowalla_n, scale, &mut rng);
    let domain = *dataset.domain();
    let queries = random_queries_of_len(
        &domain,
        percent_of_domain(&domain, 1.0),
        scale.queries_per_point,
        &mut rng,
    );

    let mut report = Report::new(
        format!(
            "Table 1 — measured costs ({} n={} m={})",
            DatasetKind::Gowalla.name(),
            dataset.len(),
            domain.size()
        ),
        &[
            "scheme",
            "asymptotic storage",
            "index entries",
            "index MiB",
            "build s",
            "avg tokens",
            "avg query bytes",
            "avg search ms",
            "avg false pos",
        ],
    );

    let asymptotics = |kind: SchemeKind| match kind {
        SchemeKind::Quadratic => "O(n m^2)",
        SchemeKind::ConstantBrc | SchemeKind::ConstantUrc | SchemeKind::PlainSse => "O(n)",
        SchemeKind::LogarithmicBrc
        | SchemeKind::LogarithmicUrc
        | SchemeKind::LogarithmicSrc
        | SchemeKind::LogarithmicSrcI => "O(n log m)",
        SchemeKind::Pb => "O(n log n log m)",
    };

    for kind in SchemeKind::EVALUATED {
        let mut build_rng = ChaCha20Rng::seed_from_u64(scale.seed ^ 0xA5A5);
        let start = Instant::now();
        let scheme = AnyScheme::build(kind, &dataset, &mut build_rng);
        let build_time = start.elapsed();
        let stats = scheme.index_stats();

        let mut total_tokens = 0usize;
        let mut total_bytes = 0usize;
        let mut total_fp = 0usize;
        let mut search_time = Duration::ZERO;
        for query in &queries {
            let start = Instant::now();
            let outcome = scheme.query(*query);
            search_time += start.elapsed();
            total_tokens += outcome.stats.tokens_sent;
            total_bytes += outcome.stats.token_bytes;
            let eval = Evaluation::compare(&outcome.ids, &dataset.matching_ids(*query));
            assert!(eval.is_complete(), "{} missed results", scheme.name());
            total_fp += eval.false_positives;
        }
        let q = queries.len().max(1);
        report.push_row(vec![
            scheme.name().to_string(),
            asymptotics(kind).to_string(),
            stats.entries.to_string(),
            mib(stats.storage_bytes),
            secs(build_time),
            format!("{:.1}", total_tokens as f64 / q as f64),
            format!("{:.0}", total_bytes as f64 / q as f64),
            millis(search_time / q as u32),
            format!("{:.1}", total_fp as f64 / q as f64),
        ]);
    }
    report
}

/// **Figure 5(a)/(b):** index size and construction time as a function of the
/// dataset size, on the Gowalla-like workload.
pub fn fig5_index_costs(scale: &Scale) -> Report {
    let mut report = Report::new(
        format!(
            "Figure 5 — index size (a) and construction time (b), {}",
            DatasetKind::Gowalla.name()
        ),
        &["scheme", "n", "index entries", "index MiB", "build s"],
    );
    for &n in &scale.fig5_sizes {
        let mut rng = ChaCha20Rng::seed_from_u64(scale.seed + n as u64);
        let dataset = make_dataset(DatasetKind::Gowalla, n, scale, &mut rng);
        for kind in INDEX_SCHEMES {
            let start = Instant::now();
            let scheme = AnyScheme::build(kind, &dataset, &mut rng);
            let build_time = start.elapsed();
            let stats = scheme.index_stats();
            report.push_row(vec![
                kind.name().to_string(),
                n.to_string(),
                stats.entries.to_string(),
                mib(stats.storage_bytes),
                secs(build_time),
            ]);
        }
    }
    report
}

/// **Table 2:** index size and construction time on the USPS-like workload.
pub fn table2(scale: &Scale) -> Report {
    let mut rng = ChaCha20Rng::seed_from_u64(scale.seed + 2);
    let dataset = make_dataset(DatasetKind::Usps, scale.usps_n, scale, &mut rng);
    let profile = DatasetProfile::of(&dataset);
    let mut report = Report::new(
        format!(
            "Table 2 — index costs ({} n={} m={} distinct={})",
            DatasetKind::Usps.name(),
            profile.n,
            profile.domain_size,
            profile.distinct_values
        ),
        &["scheme", "index entries", "index MiB", "build s"],
    );
    for kind in INDEX_SCHEMES {
        let start = Instant::now();
        let scheme = AnyScheme::build(kind, &dataset, &mut rng);
        let build_time = start.elapsed();
        let stats = scheme.index_stats();
        report.push_row(vec![
            kind.name().to_string(),
            stats.entries.to_string(),
            mib(stats.storage_bytes),
            secs(build_time),
        ]);
    }
    report
}

/// **Figure 6(a)/(b):** average false-positive rate of Logarithmic-SRC and
/// Logarithmic-SRC-i as a function of the range size (% of the domain).
pub fn fig6_false_positives(kind: DatasetKind, scale: &Scale) -> Report {
    let mut rng = ChaCha20Rng::seed_from_u64(scale.seed + 6);
    let dataset = make_sweep_dataset(kind, scale, &mut rng);
    let domain = *dataset.domain();
    let src = AnyScheme::build(SchemeKind::LogarithmicSrc, &dataset, &mut rng);
    let src_i = AnyScheme::build(SchemeKind::LogarithmicSrcI, &dataset, &mut rng);

    let mut report = Report::new(
        format!(
            "Figure 6 — false positive rate vs range size ({})",
            kind.name()
        ),
        &["range %", "Logarithmic-SRC", "Logarithmic-SRC-i"],
    );
    for &pct in &scale.range_percents {
        let queries = random_queries_of_len(
            &domain,
            percent_of_domain(&domain, pct),
            scale.queries_per_point,
            &mut rng,
        );
        let rate = |scheme: &AnyScheme| {
            let mut total = 0.0;
            for query in &queries {
                let outcome = scheme.query(*query);
                let eval = Evaluation::compare(&outcome.ids, &dataset.matching_ids(*query));
                total += eval.false_positive_rate();
            }
            total / queries.len().max(1) as f64
        };
        let src_rate = rate(&src);
        let src_i_rate = rate(&src_i);
        report.push_row(vec![
            format!("{pct:.0}"),
            format!("{src_rate:.3}"),
            format!("{src_i_rate:.3}"),
        ]);
    }
    report
}

/// **Figure 7(a)/(b):** average server search time as a function of the range
/// size, for every scheme plus the pure-SSE retrieval baseline.
pub fn fig7_search_time(kind: DatasetKind, scale: &Scale) -> Report {
    let mut rng = ChaCha20Rng::seed_from_u64(scale.seed + 7);
    let dataset = make_sweep_dataset(kind, scale, &mut rng);
    let domain = *dataset.domain();
    // Timing sweeps cap the per-point query count: the Constant schemes'
    // O(R) expansion makes each full-domain query individually expensive.
    let queries_per_point = scale.queries_per_point.min(20);

    let schemes: Vec<AnyScheme> = SchemeKind::EVALUATED
        .iter()
        .map(|k| AnyScheme::build(*k, &dataset, &mut rng))
        .collect();
    let (sse_client, sse_server) = PlainSseScheme::build(&dataset, &mut rng);

    let mut columns: Vec<&str> = vec!["range %"];
    columns.extend(SchemeKind::EVALUATED.iter().map(|k| k.name()));
    columns.push("SSE (retrieval only)");
    let mut report = Report::new(
        format!(
            "Figure 7 — search time (ms) vs range size ({})",
            kind.name()
        ),
        &columns,
    );

    for &pct in &scale.range_percents {
        let queries = random_queries_of_len(
            &domain,
            percent_of_domain(&domain, pct),
            queries_per_point,
            &mut rng,
        );
        let mut row = vec![format!("{pct:.0}")];
        for scheme in &schemes {
            let start = Instant::now();
            for query in &queries {
                std::hint::black_box(scheme.query(*query));
            }
            let avg = start.elapsed() / queries.len().max(1) as u32;
            row.push(millis(avg));
        }
        // Pure-SSE baseline: retrieve exactly the distinct values present in
        // each query range (the inherent cost of fetching the r results).
        let start = Instant::now();
        for query in &queries {
            let values: Vec<u64> = dataset
                .records()
                .iter()
                .filter(|r| query.contains(r.value))
                .map(|r| r.value)
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            std::hint::black_box(sse_client.query_values(&sse_server, &values));
        }
        let avg = start.elapsed() / queries.len().max(1) as u32;
        row.push(millis(avg));
        report.push_row(row);
    }
    report
}

/// **Figure 8(a)/(b):** query size in bytes and query (trapdoor) generation
/// time at the owner, as a function of the absolute range size.
pub fn fig8_query_costs(scale: &Scale) -> Report {
    let mut rng = ChaCha20Rng::seed_from_u64(scale.seed + 8);
    // The appendix uses a 2^20 domain and sizes 1–100; the dataset content
    // is irrelevant for owner-side token generation, so a small one is used.
    let domain_size = scale.gowalla_domain;
    let dataset = gowalla_like(1_000.min(scale.gowalla_n), domain_size, &mut rng);

    let kinds = [
        SchemeKind::LogarithmicBrc,
        SchemeKind::LogarithmicUrc,
        SchemeKind::LogarithmicSrc,
        SchemeKind::LogarithmicSrcI,
        SchemeKind::ConstantBrc,
        SchemeKind::ConstantUrc,
        SchemeKind::Pb,
    ];
    let schemes: Vec<AnyScheme> = kinds
        .iter()
        .map(|k| AnyScheme::build(*k, &dataset, &mut rng))
        .collect();

    let mut columns: Vec<String> = vec!["range size".to_string()];
    for k in &kinds {
        columns.push(format!("{} bytes", k.name()));
        columns.push(format!("{} ms", k.name()));
    }
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut report = Report::new(
        format!("Figure 8 — query size (a) and generation time (b), m={domain_size}"),
        &column_refs,
    );

    let domain = Domain::new(domain_size);
    for &len in &scale.fig8_range_sizes {
        let queries =
            random_queries_of_len(&domain, len, scale.queries_per_point.max(20), &mut rng);
        let mut row = vec![len.to_string()];
        for scheme in &schemes {
            let mut bytes = 0usize;
            let start = Instant::now();
            for query in &queries {
                bytes += std::hint::black_box(scheme.trapdoor_cost(*query)).1;
            }
            let elapsed = start.elapsed();
            row.push(format!("{:.0}", bytes as f64 / queries.len() as f64));
            row.push(millis(elapsed / queries.len() as u32));
        }
        report.push_row(row);
    }
    report
}

/// **Ablation (beyond the paper):** BRC vs URC cover sizes and the TDAG
/// single-range-cover inflation factor, as a function of the range size.
pub fn ablation_cover(scale: &Scale) -> Report {
    let mut rng = ChaCha20Rng::seed_from_u64(scale.seed + 9);
    let domain = Domain::new(scale.gowalla_domain);
    let tdag = Tdag::new(domain);
    let mut report = Report::new(
        format!(
            "Cover ablation — BRC/URC node counts and SRC inflation (m={})",
            domain.size()
        ),
        &[
            "range size",
            "avg BRC nodes",
            "avg URC nodes",
            "max URC nodes",
            "avg SRC cover/R",
            "max SRC cover/R",
        ],
    );
    for &len in &scale.fig8_range_sizes {
        let queries =
            random_queries_of_len(&domain, len, scale.queries_per_point.max(50), &mut rng);
        let mut brc_total = 0usize;
        let mut urc_total = 0usize;
        let mut urc_max = 0usize;
        let mut inflation_total = 0.0f64;
        let mut inflation_max = 0.0f64;
        for query in &queries {
            let brc_nodes = rsse_cover::brc(&domain, *query).len();
            let urc_nodes = rsse_cover::urc(&domain, *query).len();
            brc_total += brc_nodes;
            urc_total += urc_nodes;
            urc_max = urc_max.max(urc_nodes);
            let cover = tdag.src_cover(*query);
            let inflation = cover.width() as f64 / query.len() as f64;
            inflation_total += inflation;
            inflation_max = inflation_max.max(inflation);
        }
        let q = queries.len() as f64;
        report.push_row(vec![
            len.to_string(),
            format!("{:.2}", brc_total as f64 / q),
            format!("{:.2}", urc_total as f64 / q),
            urc_max.to_string(),
            format!("{:.2}", inflation_total / q),
            format!("{:.2}", inflation_max),
        ]);
    }
    report
}

/// **Ablation (beyond the paper):** effect of the consolidation step `s` on
/// the number of active indexes, total storage and per-query token cost.
pub fn ablation_updates(scale: &Scale) -> Report {
    use rsse_core::schemes::log_brc_urc::LogScheme;

    let domain = Domain::new(1 << 16);
    let batches = 32usize;
    let batch_size = (scale.gowalla_n / batches).max(16);
    let mut report = Report::new(
        format!(
            "Update ablation — {batches} batches of {batch_size} tuples, Logarithmic-BRC instances"
        ),
        &[
            "consolidation step s",
            "active indexes",
            "consolidations",
            "total entries",
            "total MiB",
            "avg query tokens",
            "avg query ms",
        ],
    );
    for s in [0usize, 2, 4, 8] {
        let mut rng = ChaCha20Rng::seed_from_u64(scale.seed + 100 + s as u64);
        let mut manager: UpdateManager<LogScheme> = UpdateManager::new(
            domain,
            UpdateConfig {
                consolidation_step: s,
                ..UpdateConfig::default()
            },
        );
        let mut next_id = 0u64;
        for b in 0..batches {
            let entries: Vec<UpdateEntry> = (0..batch_size)
                .map(|i| {
                    let id = next_id;
                    next_id += 1;
                    UpdateEntry::insert(id, ((b * 7919 + i * 13) as u64) % domain.size())
                })
                .collect();
            manager.ingest_batch(entries, &mut rng);
        }
        let stats = manager.index_stats();
        let queries = random_queries_of_len(&domain, 1 << 12, 20, &mut rng);
        let mut tokens = 0usize;
        let start = Instant::now();
        for query in &queries {
            tokens += std::hint::black_box(manager.query(*query))
                .stats
                .tokens_sent;
        }
        let avg_time = start.elapsed() / queries.len() as u32;
        report.push_row(vec![
            if s == 0 {
                "none".to_string()
            } else {
                s.to_string()
            },
            manager.active_instances().to_string(),
            manager.consolidations().to_string(),
            stats.entries.to_string(),
            mib(stats.storage_bytes),
            format!("{:.1}", tokens as f64 / queries.len() as f64),
            millis(avg_time),
        ]);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    // The harness itself is exercised at smoke scale so that `cargo test`
    // stays fast; the real sweeps run through the `reproduce` binary.

    #[test]
    fn table1_produces_a_row_per_evaluated_scheme() {
        let report = table1(&Scale::smoke());
        assert_eq!(report.len(), SchemeKind::EVALUATED.len());
    }

    #[test]
    fn fig5_sweeps_sizes_and_schemes() {
        let scale = Scale::smoke();
        let report = fig5_index_costs(&scale);
        assert_eq!(report.len(), scale.fig5_sizes.len() * INDEX_SCHEMES.len());
    }

    #[test]
    fn table2_has_all_index_schemes() {
        let report = table2(&Scale::smoke());
        assert_eq!(report.len(), INDEX_SCHEMES.len());
    }

    #[test]
    fn fig6_rates_are_valid_probabilities() {
        let scale = Scale::smoke();
        for kind in [DatasetKind::Gowalla, DatasetKind::Usps] {
            let report = fig6_false_positives(kind, &scale);
            assert_eq!(report.len(), scale.range_percents.len());
            for line in report.to_csv().lines().skip(1) {
                let cells: Vec<&str> = line.split(',').collect();
                for cell in &cells[1..] {
                    let rate: f64 = cell.parse().unwrap();
                    assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
                }
            }
        }
    }

    #[test]
    fn fig7_and_fig8_render() {
        let scale = Scale::smoke();
        let fig7 = fig7_search_time(DatasetKind::Usps, &scale);
        assert_eq!(fig7.len(), scale.range_percents.len());
        let fig8 = fig8_query_costs(&scale);
        assert_eq!(fig8.len(), scale.fig8_range_sizes.len());
    }

    #[test]
    fn ablations_render() {
        let scale = Scale::smoke();
        assert_eq!(ablation_cover(&scale).len(), scale.fig8_range_sizes.len());
        assert_eq!(ablation_updates(&scale).len(), 4);
    }
}
